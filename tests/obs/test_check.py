"""The invariant oracle: synthetic violations, real Byzantine runs, CLI.

Each synthetic test hand-builds the minimal trace violating exactly one
invariant and asserts the finding names the offending node and sequence
(the oracle's contract: point at the culprit, not at a boolean).  The
integration tests run the actual FabricatingNode attack from
``repro.faults`` against a fault-free twin, and drive the ``python -m
repro.obs check`` gate end to end.
"""

import io

import pytest

from repro.faults.behaviors import ByzantineSpec
from repro.obs import RecordingTracer, check_trace, write_trace
from repro.obs.check import DEFAULT_TAIL_SLACK_S, OracleFinding, OracleReport
from repro.obs.cli import main
from repro.obs.trace import TraceEvent
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.util.errors import ConfigError

SEED = 7
NODES = ("node-0", "node-1", "node-2", "node-3")


def _event(trace_seq, node, name, *, t=0.0, idx=-1, lamport=0, cause="",
           **fields):
    # ``fields`` may itself carry a "seq" key (the BFT sequence number),
    # distinct from the trace's own cluster-wide sequence ``trace_seq``.
    return TraceEvent(seq=trace_seq, t=t, node=node, name=name,
                      fields=tuple(sorted(fields.items())),
                      idx=idx, lamport=lamport, cause=cause)


def _lifecycle(seq0, t0, digest, bft_seq, nodes=NODES):
    """A complete, healthy lifecycle for one payload on every node."""
    events = []
    seq = seq0
    for offset, name in enumerate(("bus.rx", "bft.preprepare",
                                   "bft.commit", "req.logged")):
        for node in nodes:
            fields = {"digest": digest}
            if name != "bus.rx":
                fields["seq"] = bft_seq
            events.append(_event(seq, node, name, t=t0 + 0.01 * offset, **fields))
            seq += 1
    return events


# ---------------------------------------------------------------------------
# Synthetic single-invariant violations
# ---------------------------------------------------------------------------


def test_clean_trace_passes():
    events = _lifecycle(0, 1.0, "aa" * 32, 1)
    report = check_trace(events)
    assert report.ok
    assert report.checked_events == len(events)
    assert report.checked_nodes == 4
    assert report.to_dicts() == []


def test_commit_divergence_names_the_minority_node_and_seq():
    events = _lifecycle(0, 1.0, "aa" * 32, 1)
    # node-3 logs a different digest at the same BFT sequence number (it
    # did receive the payload from its bus, so only agreement is violated).
    events.append(_event(len(events), "node-3", "bus.rx", t=1.04,
                         digest="bb" * 32))
    events.append(_event(len(events), "node-3", "req.logged", t=1.05,
                         digest="bb" * 32, seq=1))
    report = check_trace(events)
    codes = report.by_code()
    assert codes.get("OBS001") == 1
    finding = next(f for f in report.findings if f.code == "OBS001")
    assert finding.node == "node-3"
    assert finding.seq == 1
    assert "bb" * 8 in finding.message
    # The same divergence on a *known-faulty* node is out of scope.
    assert check_trace(events, faulty=["node-3"]).ok


def test_omission_requires_the_victim_to_outlive_the_logging_point():
    digest = "cc" * 32
    events = []
    seq = 0
    for node in ("node-0", "node-1", "node-2"):
        events.append(_event(seq, node, "bus.rx", t=1.0, digest=digest))
        seq += 1
        events.append(_event(seq, node, "req.logged", t=1.1, digest=digest, seq=2))
        seq += 1
    events.append(_event(seq, "node-3", "bus.rx", t=1.0, digest=digest))
    report = check_trace(events)
    # node-3's last event predates the logging point: a run-end tail.
    assert report.ok
    # Keep node-3 demonstrably alive well past t_log + slack: now an omission.
    alive = events + [
        _event(seq + 1, "node-3", "bus.rx", t=1.1 + DEFAULT_TAIL_SLACK_S + 1.0,
               digest="dd" * 32),
    ]
    report = check_trace(alive)
    assert report.by_code() == {"OBS002": 1}
    finding = report.findings[0]
    assert finding.node == "node-3"
    assert finding.seq == 2
    assert finding.digest == digest


def test_provenance_flags_digests_never_received_from_a_bus():
    events = _lifecycle(0, 1.0, "aa" * 32, 1)
    # A digest logged with no bus.rx anywhere: fabricated in consensus.
    events.append(_event(len(events), "node-2", "req.logged", t=1.2,
                         digest="ee" * 32, seq=3))
    report = check_trace(events)
    # Only provenance fires: the other nodes' traces end within the
    # omission check's tail slack, so their silence is not an omission.
    assert report.by_code() == {"OBS003": 1}
    finding = next(f for f in report.findings if f.code == "OBS003")
    assert finding.node == "node-2"
    assert finding.seq == 3
    assert "fabricated" in finding.message


def test_provenance_is_gated_on_reception_instrumentation():
    # A consensus-only trace (no bus.rx at all) must not false-positive.
    events = [
        _event(0, node, "req.logged", t=1.0, digest="aa" * 32, seq=1)
        for node in NODES
    ]
    assert check_trace(events).ok


def test_open_and_overlong_view_changes_are_findings():
    base = _lifecycle(0, 1.0, "aa" * 32, 1)
    seq = len(base)
    open_stall = base + [
        _event(seq, "node-1", "bft.viewchange.start", t=2.0, view=1),
    ]
    report = check_trace(open_stall)
    assert report.by_code() == {"OBS004": 1}
    assert report.findings[0].node == "node-1"
    closed = open_stall + [
        _event(seq + 1, "node-1", "bft.viewchange.end", t=5.0, view=1),
    ]
    assert check_trace(closed).ok
    report = check_trace(closed, vc_bound_s=1.0)
    assert report.by_code() == {"OBS004": 1}
    assert "over the 1.000000s bound" in report.findings[0].message


def test_dag_anomalies_surface_as_findings():
    events = [
        _event(0, "node-0", "bus.rx", t=1.0, idx=0, lamport=5, digest="aa" * 32),
        # Orphan cause: references an event that is not in the trace.
        _event(1, "node-1", "bft.commit", t=1.1, idx=0, lamport=9,
               cause="node-0#7"),
        # Lamport regression: same-node successor fails to advance the clock.
        _event(2, "node-0", "bft.preprepare", t=1.2, idx=1, lamport=5),
    ]
    report = check_trace(events)
    codes = report.by_code()
    assert codes.get("OBS006") == 1
    assert codes.get("OBS008") == 1
    orphan = next(f for f in report.findings if f.code == "OBS006")
    assert orphan.node == "node-1"
    assert "node-0#7" in orphan.message


def test_finding_and_report_shapes():
    finding = OracleFinding(code="OBS001", message="m", node="node-1", seq=4)
    assert finding.to_dict()["seq"] == 4
    report = OracleReport(findings=[finding])
    assert not report.ok
    assert report.by_code() == {"OBS001": 1}


# ---------------------------------------------------------------------------
# The real attack from repro.faults, judged mechanically
# ---------------------------------------------------------------------------


def _traced_run(byzantine=None):
    tracer = RecordingTracer()
    cluster = SimulatedCluster(
        ScenarioConfig(system="zugchain", seed=SEED, byzantine=byzantine or {}),
        tracer=tracer,
    )
    result = cluster.run(duration_s=4.0)
    return cluster, result, tracer


def test_fabrication_attack_is_flagged_and_the_fault_free_twin_passes():
    spec = ByzantineSpec(fabricate_per_cycle=0.5)
    cluster, result, _ = _traced_run(byzantine={"node-1": spec})
    assert cluster.nodes["node-1"].fabricated > 0
    report = cluster.check_invariants()
    assert not report.ok
    assert set(report.by_code()) == {"OBS003"}
    assert all("fabricated" in f.message for f in report.findings)
    # The findings ride the ScenarioResult for sweep/CLI consumers.
    assert result.findings == report.to_dicts()
    # The identical-seed fault-free twin is clean.
    twin_cluster, twin_result, _ = _traced_run()
    assert twin_cluster.check_invariants().ok
    assert twin_result.findings == []


def test_check_invariants_requires_a_recording_tracer():
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain", seed=SEED))
    with pytest.raises(ConfigError):
        cluster.check_invariants()


# ---------------------------------------------------------------------------
# The CLI gate
# ---------------------------------------------------------------------------


def _write(tmp_path, events, name="trace.jsonl"):
    path = tmp_path / name
    write_trace(events, str(path))
    return str(path)


def test_cli_check_passes_clean_trace(tmp_path):
    path = _write(tmp_path, _lifecycle(0, 1.0, "aa" * 32, 1))
    out = io.StringIO()
    assert main(["check", path], out=out) == 0
    text = out.getvalue()
    assert "ok: all invariants hold" in text
    assert "16 events across 4 nodes" in text


def test_cli_check_fails_naming_node_and_seq(tmp_path):
    events = _lifecycle(0, 1.0, "aa" * 32, 1)
    events.append(_event(len(events), "node-3", "bus.rx", t=1.04,
                         digest="bb" * 32))
    events.append(_event(len(events), "node-3", "req.logged", t=1.05,
                         digest="bb" * 32, seq=1))
    path = _write(tmp_path, events)
    out = io.StringIO()
    assert main(["check", path], out=out) == 1
    text = out.getvalue()
    assert "OBS001" in text
    assert "node-3" in text
    assert "seq 1" in text
    assert "FAIL: 1 finding(s) [OBS001=1]" in text
    # Excusing the offender via --faulty flips the verdict.
    out = io.StringIO()
    assert main(["check", path, "--faulty", "node-3"], out=out) == 0
    assert "(faulty: node-3)" in out.getvalue()


def test_cli_check_gates_the_real_fabrication_attack(tmp_path):
    spec = ByzantineSpec(fabricate_per_cycle=0.5)
    _, _, tracer = _traced_run(byzantine={"node-1": spec})
    path = _write(tmp_path, tracer.events)
    out = io.StringIO()
    # Even excusing the known-faulty node, fabricated payloads logged by
    # correct nodes violate provenance: the attack cannot be configured away.
    assert main(["check", path, "--faulty", "node-1"], out=out) == 1
    assert "OBS003" in out.getvalue()


def test_cli_dag_prints_fingerprint_and_json(tmp_path):
    import json

    _, _, tracer = _traced_run()
    path = _write(tmp_path, tracer.events)
    out = io.StringIO()
    assert main(["dag", path], out=out) == 0
    text = out.getvalue()
    assert "message" in text
    assert "fingerprint: " in text
    assert "complete chains across 4 nodes" in text
    out = io.StringIO()
    assert main(["dag", path, "--json", "--no-time"], out=out) == 0
    payload = json.loads(out.getvalue())
    assert set(payload) == {"vertices", "edges", "anomalies"}
    assert payload["anomalies"]["orphans"] == []
