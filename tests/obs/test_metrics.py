"""Metrics registry tests: counters, histogram merges, env-counter folds."""

import pytest

from repro.obs import ClusterMetrics, Histogram, MetricsRegistry
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S, fold_env_counters
from repro.util.errors import ProtocolError


def test_counter_is_monotone():
    registry = MetricsRegistry(node="node-0")
    counter = registry.counter("bft.decided")
    counter.inc()
    counter.inc(4)
    assert registry.counter_values() == {"bft.decided": 5}
    with pytest.raises(ProtocolError):
        counter.inc(-1)


def test_metric_names_are_type_exclusive():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ProtocolError):
        registry.gauge("x")
    with pytest.raises(ProtocolError):
        registry.histogram("x")


def test_histogram_buckets_and_quantile():
    hist = Histogram("lat", bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.02, 0.02, 0.5, 2.0):
        hist.observe(value)
    assert hist.bucket_counts == [1, 2, 1, 1]
    assert hist.count == 5
    assert hist.mean() == pytest.approx((0.005 + 0.02 + 0.02 + 0.5 + 2.0) / 5)
    assert hist.quantile(0.5) == 0.1
    assert hist.quantile(1.0) == 1.0  # overflow reports the last finite bound


def test_histogram_merge_is_elementwise_and_exact():
    a = Histogram("lat", bounds=(0.01, 0.1))
    b = Histogram("lat", bounds=(0.01, 0.1))
    for value in (0.005, 0.05):
        a.observe(value)
    for value in (0.05, 5.0):
        b.observe(value)
    a.merge(b)
    assert a.bucket_counts == [1, 2, 1]
    assert a.count == 4
    assert a.total == pytest.approx(0.005 + 0.05 + 0.05 + 5.0)
    mismatched = Histogram("lat", bounds=(0.01, 0.2))
    with pytest.raises(ProtocolError):
        a.merge(mismatched)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ProtocolError):
        Histogram("bad", bounds=(0.1, 0.1))
    with pytest.raises(ProtocolError):
        Histogram("bad", bounds=())


def test_inc_from_folds_stats_mapping():
    registry = MetricsRegistry()
    registry.inc_from({"decided": 3, "proposed": 5}, prefix="bft.")
    registry.inc_from({"decided": 2}, prefix="bft.")
    assert registry.counter_values() == {"bft.decided": 5, "bft.proposed": 5}


def test_cluster_aggregate_adds_counters_and_maxes_gauges():
    cluster = ClusterMetrics()
    for node_id, height in (("node-0", 7), ("node-1", 5)):
        registry = cluster.node(node_id)
        registry.counter("requests.logged").inc(10)
        registry.gauge("chain.height").set(height)
        registry.histogram("lat", bounds=DEFAULT_LATENCY_BUCKETS_S).observe(0.01)
    merged = cluster.aggregate()
    assert merged.node == "cluster"
    assert merged.counter_values()["requests.logged"] == 20
    assert merged.gauge_values()["chain.height"] == 7  # worst node wins
    assert merged.snapshot()["histograms"]["lat"]["count"] == 2
    assert cluster.node_ids() == ["node-0", "node-1"]


class _FakeCounters:
    def __init__(self, **values):
        self._values = values

    def snapshot(self):
        return dict(self._values)


class _FakeEnv:
    def __init__(self, sends, drops, decode_errors=None):
        self.counters = _FakeCounters(sends=sends, drops=drops)
        if decode_errors is not None:
            self.decode_errors = decode_errors
            self.oversize_frames = 0


def test_fold_env_counters_includes_transport_extras_when_present():
    registry = MetricsRegistry(node="cluster")
    envs = {
        "node-0": _FakeEnv(sends=10, drops=1, decode_errors=2),
        "node-1": _FakeEnv(sends=20, drops=0),  # SimEnv: no decode_errors attr
    }
    fold_env_counters(registry, envs)
    values = registry.counter_values()
    assert values["env.sends"] == 30
    assert values["env.drops"] == 1
    assert values["env.decode_errors"] == 2
    assert values["env.oversize_frames"] == 0


def test_snapshot_is_sorted_and_deterministic():
    registry = MetricsRegistry(node="n")
    registry.counter("z").inc()
    registry.counter("a").inc()
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "z"]
    assert snap == registry.snapshot()
