"""Causal DAG construction, shard merging, and cross-runtime conformance.

Three layers of guarantee, pinned here:

* **Unit**: ``build_dag`` reconstructs program and message edges and
  reports (never raises on) structural anomalies — orphan causes,
  duplicate identities, duplicate deliveries, Lamport regressions.
* **Determinism**: identical-seed simulator runs build byte-identical
  causal DAGs, and ``merge_shards`` is a pure function of shard contents
  (any permutation of the shards yields byte-identical JSONL).
* **Conformance**: one shared battery (clean DAG, strictly increasing
  per-node Lamport clocks, complete request lifecycles) runs unmodified
  over traces from the simulator, the TCP runtime, and the merged
  multiprocess shards.  Timestamps differ across runtimes (documented
  domains); DAG health and lifecycle shape must not.
"""

import random

import pytest

from repro.obs import (
    LIFECYCLE,
    RecordingTracer,
    build_dag,
    check_trace,
    event_id,
    lifecycle_chains,
    lifecycle_shape,
    merge_shards,
)
from repro.obs.sinks import encode_event
from repro.obs.trace import TraceEvent
from repro.scenarios import ScenarioConfig, SimulatedCluster

SEED = 1234


def _jsonl(events):
    """The canonical byte rendering of a trace, for identity assertions."""
    return "".join(encode_event(event) + "\n" for event in events).encode("ascii")


def _event(seq, node, name, *, t=0.0, idx=-1, lamport=0, cause="", **fields):
    return TraceEvent(seq=seq, t=t, node=node, name=name,
                      fields=tuple(sorted(fields.items())),
                      idx=idx, lamport=lamport, cause=cause)


# ---------------------------------------------------------------------------
# build_dag unit behaviour
# ---------------------------------------------------------------------------


def test_dag_builds_program_and_message_edges():
    events = [
        _event(0, "node-0", "bus.rx", t=0.0, idx=0, lamport=1),
        _event(1, "node-0", "bft.preprepare", t=0.1, idx=1, lamport=3),
        _event(2, "node-1", "bft.preprepare", t=0.2, idx=0, lamport=5,
               cause="node-0#1"),
    ]
    dag = build_dag(events)
    assert dag.anomaly_count == 0
    kinds = [(edge.parent, edge.child, edge.kind) for edge in dag.edges]
    assert (0, 1, "program") in kinds
    assert (1, 2, "message") in kinds
    assert dag.roots() == [0]
    hops = dag.hop_latencies()
    assert hops[("node-0", "node-1")].count == 1
    assert hops[("node-0", "node-1")].mean_s == pytest.approx(0.1)


def test_dag_reports_orphan_causes():
    events = [
        _event(0, "node-1", "bft.commit", idx=0, lamport=4, cause="node-9#7"),
    ]
    dag = build_dag(events)
    assert dag.orphans == [(0, "node-9#7")]
    assert dag.message_edges == []
    assert dag.anomaly_count == 1


def test_dag_reports_duplicate_identities():
    events = [
        _event(0, "node-0", "bus.rx", idx=0, lamport=1),
        _event(1, "node-0", "bus.rx", idx=0, lamport=2),  # same node#idx
    ]
    dag = build_dag(events)
    assert dag.duplicate_ids == ["node-0#0"]


def test_dag_reports_duplicate_deliveries():
    events = [
        _event(0, "node-0", "bus.rx", idx=0, lamport=1),
        _event(1, "node-1", "bft.commit", idx=0, lamport=3, cause="node-0#0"),
        _event(2, "node-1", "bft.commit", idx=1, lamport=4, cause="node-0#0"),
    ]
    dag = build_dag(events)
    assert dag.duplicate_edges == [("node-0#0", "node-1", "bft.commit")]


def test_dag_reports_lamport_regressions():
    events = [
        _event(0, "node-0", "bus.rx", idx=0, lamport=9),
        _event(1, "node-1", "bft.commit", idx=0, lamport=9,  # not > parent
               cause="node-0#0"),
    ]
    dag = build_dag(events)
    assert len(dag.clock_regressions) == 1
    assert dag.clock_regressions[0].kind == "message"


def test_event_id_blank_for_unbound_events():
    assert event_id(_event(0, "node-0", "bus.rx")) == ""
    assert event_id(_event(0, "node-0", "bus.rx", idx=3)) == "node-0#3"


# ---------------------------------------------------------------------------
# Shard merging
# ---------------------------------------------------------------------------


def _synthetic_shards():
    shards = {}
    for n, node in enumerate(("node-0", "node-1", "node-2")):
        shards[node] = [
            _event(i, node, "bus.rx", t=0.01 * i, idx=i, lamport=1 + 3 * i + n,
                   digest=f"d{i}")
            for i in range(4)
        ]
    return shards


def test_merge_shards_is_permutation_invariant_bytewise():
    shards = _synthetic_shards()
    orders = [list(shards), list(reversed(list(shards)))]
    random.Random(SEED).shuffle(orders[1])
    merges = []
    for order in orders:
        merged = merge_shards({node: list(shards[node]) for node in order})
        merges.append(_jsonl(merged))
    assert merges[0] == merges[1]
    # Passing the shards as a bare iterable (worker completion order)
    # changes nothing either.
    as_list = merge_shards([shards[node] for node in reversed(list(shards))])
    assert _jsonl(as_list) == merges[0]


def test_merge_shards_renumbers_seq_but_preserves_identity():
    merged = merge_shards(_synthetic_shards())
    assert [event.seq for event in merged] == list(range(len(merged)))
    # Per-node idx — what causal references use — is untouched, so the
    # merged stream still resolves every identity without rewrites.
    assert {event_id(event) for event in merged} == {
        f"{node}#{i}" for node in ("node-0", "node-1", "node-2")
        for i in range(4)
    }
    # Per-node relative order survives the merge (Lamport ticks per event).
    for node in ("node-0", "node-1", "node-2"):
        idxs = [event.idx for event in merged if event.node == node]
        assert idxs == sorted(idxs)


# ---------------------------------------------------------------------------
# Determinism over the real simulator
# ---------------------------------------------------------------------------


def _sim_trace(seed=SEED, duration_s=3.0, **overrides):
    tracer = RecordingTracer()
    cluster = SimulatedCluster(
        ScenarioConfig(system="zugchain", seed=seed, **overrides), tracer=tracer
    )
    result = cluster.run(duration_s=duration_s)
    return cluster, result, tracer.events


def test_identical_seed_sim_runs_build_byte_identical_dags():
    _, _, first = _sim_trace()
    _, _, second = _sim_trace()
    first_dag, second_dag = build_dag(first), build_dag(second)
    assert first_dag.fingerprint() == second_dag.fingerprint()
    assert _jsonl(first) == _jsonl(second)
    # Different seed, different DAG: the fingerprint is not degenerate.
    _, _, other = _sim_trace(seed=SEED + 1)
    assert build_dag(other).fingerprint() != first_dag.fingerprint()


def test_sim_trace_shards_merge_back_byte_identically():
    _, _, events = _sim_trace()
    shards = {}
    for event in events:
        shards.setdefault(event.node, []).append(event)
    merged_a = merge_shards(shards)
    shuffled = list(shards)
    random.Random(SEED).shuffle(shuffled)
    merged_b = merge_shards({node: shards[node] for node in shuffled})
    assert _jsonl(merged_a) == _jsonl(merged_b)
    # The canonical merge is a healthy DAG too: every causal reference
    # still resolves after the reorder-and-renumber.
    dag = build_dag(merged_a)
    assert dag.anomaly_count == 0
    assert lifecycle_chains(merged_a) == lifecycle_chains(events)


def test_scenario_result_surfaces_empty_findings_on_clean_runs():
    _, result, _ = _sim_trace()
    assert result.findings == []


# ---------------------------------------------------------------------------
# The cross-runtime conformance battery
# ---------------------------------------------------------------------------


CONSENSUS_ORDER = ("bft.preprepare", "bft.commit", "req.logged")


def assert_causal_conformance(events, runtime):
    """The battery every runtime's trace must pass unmodified.

    Clean DAG, strictly increasing per-node Lamport clocks, a passing
    oracle, and — in every complete lifecycle chain — the consensus marks
    in protocol order.  ``bus.rx`` is a *local* observation and may float
    within a chain on runtimes that race the bus feed against consensus
    traffic (the multiprocess queue); in-order runtimes pin its position
    in their own tests.
    """
    assert events, f"{runtime}: empty trace"
    dag = build_dag(events)
    assert dag.anomaly_count == 0, (
        f"{runtime}: orphans={dag.orphans} dups={dag.duplicate_ids} "
        f"dup_edges={dag.duplicate_edges} regressions={dag.clock_regressions}"
    )
    assert dag.message_edges, f"{runtime}: no cross-node causality observed"
    last_lamport = {}
    for event in sorted(events, key=lambda e: e.seq):
        if event.idx < 0:
            continue
        assert event.lamport > last_lamport.get(event.node, 0), (
            f"{runtime}: Lamport clock on {event.node} did not advance"
        )
        last_lamport[event.node] = event.lamport
    report = check_trace(events)
    assert report.ok, f"{runtime}: oracle findings {report.by_code()}"
    shape = lifecycle_shape(events)
    assert shape["complete"] > 0, f"{runtime}: no complete lifecycle chains"
    for chain in shape["chain_shapes"]:
        marks = chain.split(",")
        assert set(marks) == set(LIFECYCLE), f"{runtime}: bad chain {chain}"
        consensus = [mark for mark in marks if mark != "bus.rx"]
        assert consensus == list(CONSENSUS_ORDER), (
            f"{runtime}: consensus marks out of protocol order in {chain}"
        )
    return shape


def test_causal_conformance_sim():
    shape = assert_causal_conformance(_sim_trace()[2], "sim")
    assert shape["nodes"] == 4
    # The simulator is fully in-order: bus.rx always leads the chain.
    assert shape["chain_shapes"] == [",".join(LIFECYCLE)]


def test_causal_conformance_tcp():
    from repro.runtime.tcp_scenario import TcpScenarioConfig, run_tcp_scenario

    tracer = RecordingTracer()
    result = run_tcp_scenario(
        TcpScenarioConfig(cycles=5, cycle_time_s=0.02), tracer=tracer
    )
    assert result.completed and result.heads_consistent
    shape = assert_causal_conformance(tracer.events, "tcp")
    assert shape["nodes"] == 4
    # TCP injects the bus reading synchronously on the event loop before
    # any consensus traffic for it can arrive: bus.rx leads here too.
    assert shape["chain_shapes"] == [",".join(LIFECYCLE)]


def test_causal_conformance_multiprocess():
    from repro.runtime.multiprocess import (
        MultiprocessScenarioConfig,
        run_multiprocess_scenario,
    )

    result = run_multiprocess_scenario(
        MultiprocessScenarioConfig(cycles=5, trace=True)
    )
    assert result.completed and result.heads_consistent
    assert not result.errors
    # The mp queue can race the bus feed against consensus traffic, so the
    # battery checks consensus-order invariance, not bus.rx's position.
    shape = assert_causal_conformance(result.trace_events, "mp")
    assert shape["nodes"] == 4
    # Every worker shard contributed causal identities to the merge.
    nodes_with_identity = {
        event.node for event in result.trace_events if event.idx >= 0
    }
    assert len(nodes_with_identity) == 4
