"""Tracing must observe, never perturb: the tentpole's conformance tests.

* A traced fixed-seed Fig. 6 run produces byte-identical block hashes to
  an untraced one (the tracer reads protocol state, it never mutates it).
* Two identical-seed traced runs serialize to byte-identical JSONL.
* The span-pairing phase decomposition sums to the scenario's own
  LatencyRecorder end-to-end latency within 1e-9 s.
"""

import pytest

from repro.obs import RecordingTracer, pair_request_spans, write_trace
from repro.obs.spans import PHASES
from repro.scenarios import ScenarioConfig, SimulatedCluster

SEED = 1234


def _run(tracer=None, cycle_time_s=0.064):
    # The Fig. 6 operating point: per-cycle requests at a fixed bus period.
    cluster = SimulatedCluster(
        ScenarioConfig(system="zugchain", seed=SEED, cycle_time_s=cycle_time_s),
        tracer=tracer,
    )
    result = cluster.run(duration_s=6.0, warmup_s=1.0)
    return cluster, result


def _chain_hashes(cluster):
    return [
        cluster.nodes[node_id].chain.head.block_hash.hex()
        for node_id in cluster.ids
    ]


def test_tracing_does_not_perturb_block_hashes():
    untraced_cluster, untraced = _run(tracer=None)
    traced_cluster, traced = _run(tracer=RecordingTracer())
    assert _chain_hashes(traced_cluster) == _chain_hashes(untraced_cluster)
    assert traced.requests_logged == untraced.requests_logged
    assert traced.mean_latency_s == untraced.mean_latency_s


def test_identical_seed_runs_emit_byte_identical_jsonl(tmp_path):
    paths = []
    for run_index in range(2):
        tracer = RecordingTracer()
        _run(tracer=tracer)
        path = tmp_path / f"run-{run_index}.jsonl"
        count = write_trace(tracer.iter_events(), str(path))
        assert count == len(tracer)
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    assert len(first) > 0


def test_phase_sums_match_latency_recorder_within_1e9():
    tracer = RecordingTracer()
    cluster, result = _run(tracer=tracer)
    primary = cluster.primary_id()
    report = pair_request_spans(tracer.iter_events(), node=primary, since=1.0)
    recorder = cluster.latency_recorder(primary).since(1.0)
    assert report.end_to_end.count == len(recorder)
    assert report.end_to_end.mean == pytest.approx(recorder.mean(), abs=1e-9)
    # The three phases telescope: per-span and in aggregate.
    for span in report.spans:
        assert sum(span.phases().values()) == pytest.approx(
            span.end_to_end, abs=1e-9
        )
    phase_total = sum(report.phase_stats[name].total for name in PHASES)
    assert phase_total == pytest.approx(report.end_to_end.total, abs=1e-9)


def test_scenario_result_carries_metrics_and_phases():
    tracer = RecordingTracer()
    _, result = _run(tracer=tracer)
    assert result.metrics["bft.decided"] > 0
    assert result.metrics["env.messages_emitted"] > 0
    assert set(PHASES) <= set(result.phases)
    assert result.phases["end_to_end"]["count"] == result.requests_logged
    # Untraced runs still aggregate metrics but report no phases.
    _, untraced = _run(tracer=None)
    assert untraced.phases == {}
    assert untraced.metrics["bft.decided"] == result.metrics["bft.decided"]


def test_sim_env_counters_fold_into_aggregate():
    tracer = RecordingTracer()
    cluster, _ = _run(tracer=tracer)
    merged = cluster.aggregate_metrics()
    values = merged.counter_values()
    assert values["env.messages_emitted"] > 0
    assert values["layer.filtered_duplicates"] >= 0
    assert merged.node == "cluster"
