"""Span-pairing tests: out-of-order completion, drops, view changes."""

import pytest

from repro.obs import RecordingTracer, pair_request_spans
from repro.obs.spans import PHASES, pair_view_changes


def _lifecycle(tracer, node, digest, rx, pre, commit, logged, seq=1):
    tracer.emit("bus.rx", rx, node, digest=digest)
    tracer.emit("bft.preprepare", pre, node, digest=digest, view=0, seq=seq)
    tracer.emit("bft.commit", commit, node, digest=digest, view=0, seq=seq)
    tracer.emit("req.logged", logged, node, digest=digest, seq=seq)


def test_single_span_phases_telescope():
    tracer = RecordingTracer()
    _lifecycle(tracer, "node-0", "aa", rx=1.0, pre=1.2, commit=1.5, logged=1.6)
    report = pair_request_spans(tracer.iter_events())
    (span,) = report.spans
    assert span.complete
    assert span.seq == 1
    phases = span.phases()
    assert phases["rx->propose"] == pytest.approx(0.2)
    assert phases["propose->commit"] == pytest.approx(0.3)
    assert phases["commit->log"] == pytest.approx(0.1)
    assert sum(phases.values()) == pytest.approx(span.end_to_end, abs=1e-12)


def test_out_of_order_completion_pairs_by_digest():
    # Request B commits and logs before request A: pairing keys on
    # (node, digest), not on arrival order.
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.0, "node-0", digest="aa")
    tracer.emit("bus.rx", 1.1, "node-0", digest="bb")
    tracer.emit("bft.preprepare", 1.2, "node-0", digest="bb")
    tracer.emit("bft.preprepare", 1.3, "node-0", digest="aa")
    tracer.emit("bft.commit", 1.4, "node-0", digest="bb")
    tracer.emit("req.logged", 1.5, "node-0", digest="bb", seq=1)
    tracer.emit("bft.commit", 1.6, "node-0", digest="aa")
    tracer.emit("req.logged", 1.7, "node-0", digest="aa", seq=2)
    report = pair_request_spans(tracer.iter_events())
    assert len(report.spans) == 2
    by_digest = {span.digest: span for span in report.spans}
    assert by_digest["bb"].end_to_end == pytest.approx(0.4)
    assert by_digest["aa"].end_to_end == pytest.approx(0.7)
    assert report.incomplete_count == 0


def test_dropped_request_is_incomplete_never_raises():
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.0, "node-0", digest="dead")   # never ordered
    _lifecycle(tracer, "node-0", "aa", 2.0, 2.1, 2.2, 2.3)
    report = pair_request_spans(tracer.iter_events())
    assert len(report.spans) == 1
    assert report.incomplete_count == 1
    assert report.incomplete[0].digest == "dead"
    with pytest.raises(ValueError):
        report.incomplete[0].phases()


def test_logged_without_rx_is_incomplete():
    # A backup that missed the bus frame still logs via the quorum: its
    # span lacks rx_t and must land in `incomplete`, not crash.
    tracer = RecordingTracer()
    tracer.emit("bft.commit", 1.0, "node-2", digest="aa")
    tracer.emit("req.logged", 1.1, "node-2", digest="aa", seq=1)
    report = pair_request_spans(tracer.iter_events())
    assert report.spans == []
    assert report.incomplete_count == 1


def test_first_mark_wins_on_viewchange_reproposal():
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.0, "node-0", digest="aa")
    tracer.emit("bft.preprepare", 1.1, "node-0", digest="aa", view=0)
    tracer.emit("bft.preprepare", 2.0, "node-0", digest="aa", view=1)  # re-proposed
    tracer.emit("bft.commit", 2.2, "node-0", digest="aa")
    tracer.emit("req.logged", 2.3, "node-0", digest="aa", seq=1)
    report = pair_request_spans(tracer.iter_events())
    (span,) = report.spans
    assert span.preprepare_t == 1.1
    assert sum(span.phases().values()) == pytest.approx(span.end_to_end, abs=1e-12)


def test_node_filter_and_since_cutoff():
    tracer = RecordingTracer()
    _lifecycle(tracer, "node-0", "aa", 1.0, 1.1, 1.2, 1.3)
    _lifecycle(tracer, "node-1", "aa", 1.0, 1.15, 1.25, 1.35)
    _lifecycle(tracer, "node-0", "bb", 5.0, 5.1, 5.2, 5.3)
    report = pair_request_spans(tracer.iter_events(), node="node-0", since=4.0)
    assert [span.digest for span in report.spans] == ["bb"]
    assert report.end_to_end.count == 1


def test_malformed_digest_is_skipped():
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.0, "node-0", digest=123)  # non-str digest field
    tracer.emit("bus.rx", 1.0, "node-0")              # missing entirely
    report = pair_request_spans(tracer.iter_events())
    assert report.spans == [] and report.incomplete == []


def test_phase_stats_aggregate_all_phases():
    tracer = RecordingTracer()
    _lifecycle(tracer, "node-0", "aa", 1.0, 1.1, 1.2, 1.3)
    _lifecycle(tracer, "node-0", "bb", 2.0, 2.3, 2.4, 2.5)
    report = pair_request_spans(tracer.iter_events())
    assert set(report.phase_stats) == set(PHASES)
    stats = report.phase_stats["rx->propose"]
    assert stats.count == 2
    assert stats.minimum == pytest.approx(0.1)
    assert stats.maximum == pytest.approx(0.3)
    assert stats.snapshot()["mean"] == pytest.approx(0.2)
    assert report.end_to_end.count == 2


def test_view_change_pairing_and_escalation():
    tracer = RecordingTracer()
    tracer.emit("bft.viewchange.start", 1.0, "node-1", new_view=1)
    tracer.emit("bft.viewchange.start", 1.2, "node-1", new_view=2)  # escalation
    tracer.emit("bft.viewchange.end", 1.5, "node-1", view=2)
    tracer.emit("bft.viewchange.start", 3.0, "node-2", new_view=2)  # never ends
    stalls = pair_view_changes(tracer.iter_events())
    assert len(stalls) == 2
    assert stalls[0].node == "node-1"
    assert stalls[0].duration == pytest.approx(0.5)
    assert stalls[1].duration is None
