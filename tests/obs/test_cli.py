"""``python -m repro.obs`` CLI tests."""

import io

from repro.obs import RecordingTracer, pair_request_spans, write_trace
from repro.obs.cli import main


def _trace_file(tmp_path):
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.000, "node-0", digest="aa", link=0)
    tracer.emit("bft.preprepare", 1.002, "node-0", digest="aa", view=0, seq=1)
    tracer.emit("bft.commit", 1.010, "node-0", digest="aa", view=0, seq=1)
    tracer.emit("req.logged", 1.011, "node-0", digest="aa", seq=1)
    tracer.emit("bus.rx", 2.000, "node-0", digest="bb", link=0)  # dropped
    tracer.emit("layer.dedup_drop", 2.001, "node-1", digest="aa", where="rx")
    tracer.emit("bft.viewchange.start", 3.0, "node-1", new_view=1)
    tracer.emit("bft.viewchange.end", 3.4, "node-1", view=1)
    path = str(tmp_path / "trace.jsonl")
    write_trace(tracer.iter_events(), path)
    return path, tracer


def test_summary_prints_phase_drop_and_stall_tables(tmp_path):
    path, tracer = _trace_file(tmp_path)
    out = io.StringIO()
    assert main(["summary", path], out=out) == 0
    text = out.getvalue()
    for expected in ("rx->propose", "propose->commit", "commit->log",
                     "end_to_end", "Dedup/filter drops", "View-change stalls",
                     "incomplete spans: 1"):
        assert expected in text
    # The printed totals come from the same pairing pass the tests use.
    report = pair_request_spans(tracer.iter_events())
    assert f"{report.end_to_end.mean * 1000:.3f} ms" in text


def test_summary_node_filter(tmp_path):
    path, _ = _trace_file(tmp_path)
    out = io.StringIO()
    assert main(["summary", path, "--node", "node-1"], out=out) == 0
    # node-1 paired no request spans: every count column is zero.
    assert "end_to_end" in out.getvalue()


def test_events_counts(tmp_path):
    path, _ = _trace_file(tmp_path)
    out = io.StringIO()
    assert main(["events", path], out=out) == 0
    text = out.getvalue()
    assert "bus.rx" in text and "8 events, 2 nodes" in text


def test_missing_file_exits_2(tmp_path):
    assert main(["summary", str(tmp_path / "nope.jsonl")], out=io.StringIO()) == 2


def test_corrupt_file_exits_2(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not json\n")
    assert main(["summary", str(path)], out=io.StringIO()) == 2
