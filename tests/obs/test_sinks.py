"""Sink tests: canonical JSONL encoding, round-trips, error handling."""

import io

import pytest

from repro.obs import JsonlTraceSink, RecordingTracer, TraceEvent
from repro.obs.sinks import (
    NullSink,
    decode_event,
    encode_event,
    iter_trace,
    read_trace,
    write_trace,
)
from repro.util.errors import CodecError


def test_encode_canonical_key_order():
    event = TraceEvent(seq=3, t=1.5, node="node-0", name="bft.commit",
                       fields=(("digest", "ab"), ("view", 0)))
    line = encode_event(event)
    assert line == ('{"seq":3,"t":1.5,"node":"node-0","name":"bft.commit",'
                    '"f":{"digest":"ab","view":0}}')
    assert " " not in line  # compact separators


def test_encode_decode_round_trip():
    event = TraceEvent(seq=0, t=0.064, node="node-2", name="bus.rx",
                       fields=(("digest", "aabb"), ("link", 1)))
    decoded = decode_event(encode_event(event))
    assert decoded == event


def test_seq_field_does_not_shadow_trace_seq():
    # req.logged carries a BFT `seq` field; the envelope's trace sequence
    # number must survive the round trip independently.
    event = TraceEvent(seq=42, t=2.0, node="node-0", name="req.logged",
                       fields=(("digest", "aa"), ("seq", 7)))
    decoded = decode_event(encode_event(event))
    assert decoded.seq == 42
    assert decoded.get("seq") == 7


def test_decode_rejects_garbage():
    with pytest.raises(CodecError):
        decode_event("not json")
    with pytest.raises(CodecError):
        decode_event('["a","list"]')
    with pytest.raises(CodecError):
        decode_event('{"t":1.0,"node":"n","name":"x"}')  # missing seq


def test_write_and_read_trace_file(tmp_path):
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 0.064, "node-0", digest="aa", link=0)
    tracer.emit("req.logged", 0.077, "node-0", digest="aa", seq=1)
    path = str(tmp_path / "trace.jsonl")
    count = write_trace(tracer.iter_events(), path)
    assert count == 2
    assert read_trace(path) == tracer.events
    assert list(iter_trace(path)) == tracer.events


def test_jsonl_sink_on_stream_and_context_manager():
    buffer = io.StringIO()
    with JsonlTraceSink(buffer) as sink:
        sink.write_event(TraceEvent(seq=0, t=1.0, node="n", name="bus.rx"))
    # Caller-owned streams stay open after close().
    assert buffer.getvalue().endswith("\n")
    assert not buffer.closed


def test_null_sink_discards():
    sink = NullSink()
    sink.write_event(TraceEvent(seq=0, t=1.0, node="n", name="bus.rx"))
    sink.close()


def test_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"seq":0,"t":1.0,"node":"n","name":"bus.rx"}\n\n')
    assert len(read_trace(str(path))) == 1
