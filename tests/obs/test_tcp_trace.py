"""Tracing the asyncio/TCP runtime: ordering guarantees of a real run.

TCP timestamps are debug-grade (per-node relative clocks, wall-clock
paced), so nothing here asserts byte-identical output.  What a trace
must still guarantee: the cluster-wide sequence is strictly increasing,
each node's clock never runs backwards, and causality holds — a
request's ``bus.rx`` is recorded before its ``req.logged`` on the same
node.
"""

import io

import hypothesis  # noqa: F401  (pre-import: see tests/runtime/test_asyncio_runtime.py)
import pytest

from repro.obs import RecordingTracer, write_trace
from repro.obs.cli import main as obs_main
from repro.runtime.tcp_scenario import TcpScenarioConfig, run_tcp_scenario

CYCLES = 5


@pytest.fixture(scope="module")
def traced_run():
    tracer = RecordingTracer()
    config = TcpScenarioConfig(n=4, cycles=CYCLES, cycle_time_s=0.02)
    result = run_tcp_scenario(config, tracer=tracer)
    return result, list(tracer.iter_events())


def test_run_completes_and_chains_agree(traced_run):
    result, _events = traced_run
    assert result.completed
    assert result.requests_logged == CYCLES
    assert result.heads_consistent
    assert set(result.chain_heights.values()) == {CYCLES // 5}


def test_cluster_sequence_is_strictly_increasing(traced_run):
    _result, events = traced_run
    assert events
    seqs = [event.seq for event in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_per_node_timestamps_are_monotonic(traced_run):
    _result, events = traced_run
    last: dict[str, float] = {}
    for event in events:
        assert event.t >= last.get(event.node, 0.0)
        last[event.node] = event.t


def test_bus_rx_precedes_req_logged_per_request(traced_run):
    """Causality per (node, digest): seen on the bus before durably logged."""
    _result, events = traced_run
    rx_seq: dict[tuple, int] = {}
    logged = 0
    for event in events:
        key = (event.node, event.get("digest"))
        if event.name == "bus.rx":
            rx_seq.setdefault(key, event.seq)
        elif event.name == "req.logged":
            assert key in rx_seq, f"req.logged without bus.rx: {key}"
            assert event.seq > rx_seq[key]
            logged += 1
    assert logged >= 4 * CYCLES  # every node logged every request


def test_trace_round_trips_through_obs_summary(tmp_path, traced_run):
    _result, events = traced_run
    path = str(tmp_path / "tcp-trace.jsonl")
    write_trace(iter(events), path)
    out = io.StringIO()
    assert obs_main(["summary", path], out=out) == 0
    assert "end_to_end" in out.getvalue()
