"""Tracer unit tests: scalar-only fields, sequencing, null fast path."""

import pytest

from repro.obs import EVENT_TAXONOMY, NULL_TRACER, NullTracer, RecordingTracer, Tracer
from repro.util.errors import ProtocolError


def test_recording_tracer_orders_by_emission():
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.0, "node-0", digest="aa")
    tracer.emit("bft.commit", 1.5, "node-1", seq=1)
    tracer.emit("req.logged", 2.0, "node-0", digest="aa", seq=1)
    assert [e.seq for e in tracer.events] == [0, 1, 2]
    assert [e.name for e in tracer.events] == ["bus.rx", "bft.commit", "req.logged"]
    assert len(tracer) == 3


def test_fields_are_sorted_regardless_of_keyword_order():
    tracer = RecordingTracer()
    tracer.emit("bft.preprepare", 1.0, "node-0", view=0, digest="ab", seq=3)
    (event,) = tracer.events
    assert event.fields == (("digest", "ab"), ("seq", 3), ("view", 0))
    assert event.get("seq") == 3
    assert event.get("missing", "x") == "x"


def test_non_scalar_fields_are_rejected():
    tracer = RecordingTracer()
    with pytest.raises(ProtocolError):
        tracer.emit("bus.rx", 1.0, "node-0", digest=b"raw-bytes")
    with pytest.raises(ProtocolError):
        tracer.emit("bus.rx", 1.0, "node-0", views={0, 1})


def test_null_tracer_is_disabled_and_silent():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    # No-op emit must accept anything without recording or raising.
    NULL_TRACER.emit("bus.rx", 1.0, "node-0", digest=b"even-bytes")
    assert RecordingTracer.enabled is True
    assert Tracer.enabled is False


def test_empty_recording_tracer_is_falsy_but_still_a_tracer():
    # Components must wire `tracer if tracer is not None else NULL_TRACER`;
    # `tracer or NULL_TRACER` silently discards a fresh recording tracer.
    tracer = RecordingTracer()
    assert not tracer            # __len__ == 0 makes it falsy
    assert tracer.enabled        # yet it must still record
    tracer.emit("bus.rx", 0.0, "node-0")
    assert len(tracer) == 1


def test_events_named_and_clear():
    tracer = RecordingTracer()
    tracer.emit("bus.rx", 1.0, "node-0")
    tracer.emit("bus.rx", 2.0, "node-1")
    tracer.emit("bft.commit", 3.0, "node-0")
    assert len(tracer.events_named("bus.rx")) == 2
    tracer.clear()
    assert len(tracer) == 0


def test_taxonomy_covers_request_lifecycle_and_export():
    for name in ("bus.rx", "bft.preprepare", "bft.commit", "req.logged",
                 "layer.dedup_drop", "bft.viewchange.start", "ckpt.stable",
                 "export.round.start", "chain.pruned"):
        assert name in EVENT_TAXONOMY
