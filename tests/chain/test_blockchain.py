"""Blockchain append/validate/prune tests."""

import pytest

from repro.chain import Blockchain, PruneCertificate, build_block
from repro.chain.block import Block, BlockHeader
from repro.crypto import HmacScheme
from repro.util import ChainError
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


def signed_request(cycle):
    request = Request(payload=b"p%d" % cycle, bus_cycle=cycle, recv_timestamp_us=cycle)
    return SignedRequest.create(request, "node-0", PAIR)


def grow(chain, count, start_sn=1):
    sn = start_sn
    for _ in range(count):
        block = build_block(chain.head.header, [signed_request(sn)],
                            timestamp_us=sn * 1000, last_sn=sn)
        chain.append(block)
        sn += 1
    return chain


def cert_for(chain, height, signers=("dc-a", "dc-b")):
    return PruneCertificate(
        base_height=height,
        base_block_hash=chain.block_at(height).block_hash,
        delete_signatures={name: b"\x01" * 64 for name in signers},
    )


def test_new_chain_has_genesis():
    chain = Blockchain()
    assert chain.height == 0
    assert chain.base_height == 0
    assert len(chain) == 1


def test_append_and_read():
    chain = grow(Blockchain(), 5)
    assert chain.height == 5
    assert chain.block_at(3).height == 3
    assert [b.height for b in chain.blocks_in_range(2, 4)] == [2, 3, 4]
    chain.verify()


def test_append_wrong_height_rejected():
    chain = grow(Blockchain(), 2)
    orphan = build_block(chain.block_at(1).header, [signed_request(99)],
                         timestamp_us=1, last_sn=99)
    with pytest.raises(ChainError):
        chain.append(orphan)


def test_append_broken_link_rejected():
    chain = grow(Blockchain(), 1)
    bad_header = BlockHeader(
        height=2, prev_hash=b"\xde" * 32,
        payload_root=chain.head.header.payload_root,
        timestamp_us=5, request_count=1, last_sn=9,
    )
    with pytest.raises(ChainError):
        chain.append(Block(header=bad_header, requests=chain.head.requests))


def test_append_bad_payload_rejected():
    chain = grow(Blockchain(), 1)
    good = build_block(chain.head.header, [signed_request(7)], timestamp_us=1, last_sn=7)
    forged = Block(header=good.header, requests=(signed_request(8),))
    with pytest.raises(ChainError):
        chain.append(forged)


def test_prune_keeps_base_block():
    chain = grow(Blockchain(), 6)
    removed = chain.prune_below(4, cert_for(chain, 4))
    assert [b.height for b in removed] == [0, 1, 2, 3]
    assert chain.base_height == 4
    assert chain.height == 6
    chain.verify()


def test_prune_requires_matching_certificate():
    chain = grow(Blockchain(), 4)
    bad = PruneCertificate(base_height=2, base_block_hash=b"\x00" * 32,
                           delete_signatures={"dc": b"\x01" * 64})
    with pytest.raises(ChainError):
        chain.prune_below(2, bad)


def test_prune_unknown_height_rejected():
    chain = grow(Blockchain(), 2)
    with pytest.raises(ChainError):
        chain.prune_below(9, cert_for(chain, 2))


def test_pruned_chain_without_certificate_fails_verify():
    chain = grow(Blockchain(), 4)
    chain.prune_below(2, cert_for(chain, 2))
    chain.prune_certificate = None
    assert not chain.is_valid()


def test_append_continues_after_prune():
    chain = grow(Blockchain(), 4)
    chain.prune_below(3, cert_for(chain, 3))
    grow(chain, 2, start_sn=10)
    assert chain.height == 6
    chain.verify()


def test_headers_only_fallback():
    chain = grow(Blockchain(), 5)
    affected = chain.drop_bodies_below(4)
    assert affected == 3  # heights 1..3 (base 0 kept intact)
    assert not chain.body_available(2)
    assert chain.body_available(4)
    chain.verify()  # hash links remain verifiable


def test_total_size_shrinks_with_dropped_bodies():
    chain = grow(Blockchain(), 5)
    before = chain.total_size_bytes()
    chain.drop_bodies_below(5)
    assert chain.total_size_bytes() < before


def test_from_blocks_verifies():
    chain = grow(Blockchain(), 3)
    rebuilt = Blockchain.from_blocks([chain.block_at(h) for h in range(0, 4)])
    assert rebuilt.height == 3


def test_from_blocks_detects_gap():
    chain = grow(Blockchain(), 3)
    with pytest.raises(ChainError):
        Blockchain.from_blocks([chain.block_at(0), chain.block_at(2)])


def test_from_blocks_rejects_empty():
    with pytest.raises(ChainError):
        Blockchain.from_blocks([])


def test_tamper_detection_from_single_surviving_copy():
    # The accident scenario: only one node's chain survives; any later
    # modification of a logged event must be detectable (R3).
    chain = grow(Blockchain(), 5)
    blocks = [chain.block_at(h) for h in range(0, 6)]
    tampered = Block(header=blocks[3].header, requests=(signed_request(1234),))
    blocks[3] = tampered
    with pytest.raises(ChainError):
        Blockchain.from_blocks(blocks)
