"""Block construction and verification tests."""

import pytest

from repro.chain import Block, build_block, genesis_block
from repro.crypto import HmacScheme
from repro.util import ChainError
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


def signed_request(cycle, payload=b"signals"):
    request = Request(payload=payload, bus_cycle=cycle, recv_timestamp_us=cycle * 64000)
    return SignedRequest.create(request, "node-0", PAIR)


def test_genesis_is_deterministic():
    assert genesis_block().block_hash == genesis_block().block_hash
    assert genesis_block("other").block_hash != genesis_block().block_hash


def test_build_block_links_to_previous():
    genesis = genesis_block()
    block = build_block(genesis.header, [signed_request(1)], timestamp_us=100, last_sn=1)
    assert block.height == 1
    assert block.header.prev_hash == genesis.block_hash
    assert block.verify_payload()


def test_build_block_is_deterministic():
    genesis = genesis_block()
    requests = [signed_request(1), signed_request(2)]
    a = build_block(genesis.header, requests, timestamp_us=100, last_sn=2)
    b = build_block(genesis.header, requests, timestamp_us=100, last_sn=2)
    assert a.block_hash == b.block_hash


def test_empty_block_rejected():
    with pytest.raises(ChainError):
        build_block(genesis_block().header, [], timestamp_us=100, last_sn=1)


def test_non_advancing_sequence_rejected():
    genesis = genesis_block()
    first = build_block(genesis.header, [signed_request(1)], timestamp_us=100, last_sn=5)
    with pytest.raises(ChainError):
        build_block(first.header, [signed_request(2)], timestamp_us=200, last_sn=5)


def test_tampered_payload_detected():
    genesis = genesis_block()
    block = build_block(genesis.header, [signed_request(1)], timestamp_us=100, last_sn=1)
    tampered = Block(header=block.header, requests=(signed_request(99),))
    assert not tampered.verify_payload()


def test_request_count_mismatch_detected():
    genesis = genesis_block()
    block = build_block(genesis.header, [signed_request(1), signed_request(2)],
                        timestamp_us=100, last_sn=2)
    truncated = Block(header=block.header, requests=block.requests[:1])
    assert not truncated.verify_payload()


def test_block_roundtrip():
    genesis = genesis_block()
    block = build_block(genesis.header, [signed_request(i) for i in range(1, 4)],
                        timestamp_us=100, last_sn=3)
    decoded = Block.decode(block.encode())
    assert decoded == block
    assert decoded.block_hash == block.block_hash


def test_header_hash_binds_all_fields():
    genesis = genesis_block()
    base = build_block(genesis.header, [signed_request(1)], timestamp_us=100, last_sn=1)
    other_ts = build_block(genesis.header, [signed_request(1)], timestamp_us=101, last_sn=1)
    assert base.block_hash != other_ts.block_hash


def test_merkle_proof_of_inclusion():
    from repro.crypto import verify_merkle_proof

    genesis = genesis_block()
    requests = [signed_request(i) for i in range(1, 6)]
    block = build_block(genesis.header, requests, timestamp_us=100, last_sn=5)
    tree = block.merkle_tree()
    proof = tree.proof(2)
    assert verify_merkle_proof(requests[2].encode(), proof,
                               block.header.payload_root, len(requests))
