"""Disk persistence tests."""

import pytest

from repro.chain import BlockStore, Blockchain, build_block, genesis_block
from repro.crypto import HmacScheme
from repro.util import ChainError
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


def signed_request(cycle):
    request = Request(payload=b"p", bus_cycle=cycle, recv_timestamp_us=cycle)
    return SignedRequest.create(request, "node-0", PAIR)


def small_chain(n=3):
    chain = Blockchain()
    for sn in range(1, n + 1):
        chain.append(build_block(chain.head.header, [signed_request(sn)],
                                 timestamp_us=sn, last_sn=sn))
    return chain


def test_write_read_roundtrip(tmp_path):
    store = BlockStore(tmp_path)
    chain = small_chain()
    for height in range(0, 4):
        store.write(chain.block_at(height))
    assert store.read(2) == chain.block_at(2)
    assert store.heights() == [0, 1, 2, 3]


def test_read_missing_raises(tmp_path):
    with pytest.raises(ChainError):
        BlockStore(tmp_path).read(7)


def test_corrupted_file_rejected(tmp_path):
    store = BlockStore(tmp_path)
    block = genesis_block()
    path = store.write(block)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(Exception):
        store.read(0)


def test_delete(tmp_path):
    store = BlockStore(tmp_path)
    store.write(genesis_block())
    assert store.delete(0)
    assert not store.delete(0)
    assert store.heights() == []


def test_load_all_reconstructs_chain(tmp_path):
    store = BlockStore(tmp_path)
    chain = small_chain()
    for height in range(0, 4):
        store.write(chain.block_at(height))
    rebuilt = Blockchain.from_blocks(store.load_all())
    assert rebuilt.height == 3
