"""Discrete-event kernel tests: ordering, timers, cancellation, determinism."""

import pytest

from repro.sim import Kernel
from repro.util import ProtocolError


def test_events_fire_in_time_order():
    kernel = Kernel()
    fired = []
    kernel.schedule(0.3, lambda: fired.append("c"))
    kernel.schedule(0.1, lambda: fired.append("a"))
    kernel.schedule(0.2, lambda: fired.append("b"))
    kernel.run()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_in_scheduling_order():
    kernel = Kernel()
    fired = []
    for label in "abcde":
        kernel.schedule(1.0, lambda label=label: fired.append(label))
    kernel.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    kernel = Kernel()
    seen = []
    kernel.schedule(2.5, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [2.5]
    assert kernel.now == 2.5


def test_cancelled_timer_does_not_fire():
    kernel = Kernel()
    fired = []
    timer = kernel.schedule(1.0, lambda: fired.append("x"))
    assert timer.active
    timer.cancel()
    assert not timer.active
    kernel.run()
    assert fired == []


def test_run_until_fires_events_at_deadline_and_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append(1))
    kernel.schedule(2.0, lambda: fired.append(2))
    kernel.schedule(3.0, lambda: fired.append(3))
    kernel.run_until(2.0)
    assert fired == [1, 2]
    assert kernel.now == 2.0
    kernel.run_until(5.0)
    assert fired == [1, 2, 3]
    assert kernel.now == 5.0


def test_nested_scheduling_from_callback():
    kernel = Kernel()
    fired = []

    def outer():
        fired.append(("outer", kernel.now))
        kernel.schedule(0.5, lambda: fired.append(("inner", kernel.now)))

    kernel.schedule(1.0, outer)
    kernel.run()
    assert fired == [("outer", 1.0), ("inner", 1.5)]


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(ProtocolError):
        kernel.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(ProtocolError):
        kernel.schedule_at(0.5, lambda: None)


def test_pending_excludes_cancelled():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    timer = kernel.schedule(2.0, lambda: None)
    timer.cancel()
    assert kernel.pending == 1


def test_step_returns_false_when_empty():
    kernel = Kernel()
    assert kernel.step() is False


def test_run_max_events_bounds_execution():
    kernel = Kernel()
    counter = []

    def reschedule():
        counter.append(1)
        kernel.schedule(1.0, reschedule)

    kernel.schedule(1.0, reschedule)
    kernel.run(max_events=10)
    assert len(counter) == 10
