"""Network model tests: delivery, serialization queueing, faults, stats."""

import random

import pytest

from repro.sim import Kernel, LinkSpec, Network
from repro.util import ConfigError


def make_net(default_link=None, seed=1):
    kernel = Kernel()
    net = Network(kernel, random.Random(seed), default_link=default_link)
    return kernel, net


def attach_inbox(net, node_id):
    inbox = []
    net.register(node_id, lambda src, payload, size: inbox.append((src, payload, size)))
    return inbox


def test_basic_delivery():
    kernel, net = make_net(LinkSpec(latency_s=0.001, jitter_s=0.0, bandwidth_bps=100e6))
    inbox = attach_inbox(net, "b")
    attach_inbox(net, "a")
    assert net.send("a", "b", "hello", 1000)
    kernel.run()
    assert inbox == [("a", "hello", 1000)]


def test_delivery_time_includes_transmission_and_latency():
    spec = LinkSpec(latency_s=0.010, jitter_s=0.0, bandwidth_bps=1e6)
    kernel, net = make_net(spec)
    times = []
    net.register("b", lambda src, payload, size: times.append(kernel.now))
    net.register("a", lambda *args: None)
    net.send("a", "b", "x", 1250)  # 1250 B * 8 / 1e6 = 10 ms transmit
    kernel.run()
    assert times[0] == pytest.approx(0.010 + 0.010)


def test_egress_serialization_queues_messages():
    # Two back-to-back sends share the egress: second arrives one
    # transmission time later.
    spec = LinkSpec(latency_s=0.0, jitter_s=0.0, bandwidth_bps=1e6)
    kernel, net = make_net(spec)
    times = []
    net.register("b", lambda src, payload, size: times.append(kernel.now))
    net.register("a", lambda *args: None)
    net.send("a", "b", 1, 1250)
    net.send("a", "b", 2, 1250)
    kernel.run()
    assert times == [pytest.approx(0.010), pytest.approx(0.020)]


def test_broadcast_excludes_self_by_default():
    kernel, net = make_net(LinkSpec(latency_s=0.001, jitter_s=0.0, bandwidth_bps=100e6))
    boxes = {n: attach_inbox(net, n) for n in ("a", "b", "c")}
    sent = net.broadcast("a", "msg", 100)
    kernel.run()
    assert sent == 2
    assert boxes["a"] == []
    assert len(boxes["b"]) == 1 and len(boxes["c"]) == 1


def test_broadcast_include_self():
    kernel, net = make_net(LinkSpec(latency_s=0.001, jitter_s=0.0, bandwidth_bps=100e6))
    boxes = {n: attach_inbox(net, n) for n in ("a", "b")}
    net.broadcast("a", "msg", 100, include_self=True)
    kernel.run()
    assert len(boxes["a"]) == 1


def test_partition_blocks_both_directions():
    kernel, net = make_net()
    box_a = attach_inbox(net, "a")
    box_b = attach_inbox(net, "b")
    net.partition("a", "b")
    assert not net.send("a", "b", "x", 10)
    assert not net.send("b", "a", "x", 10)
    kernel.run()
    assert box_a == [] and box_b == []
    assert net.stats.messages_dropped == 2


def test_heal_restores_traffic():
    kernel, net = make_net()
    box_b = attach_inbox(net, "b")
    attach_inbox(net, "a")
    net.partition("a", "b")
    net.heal("a", "b")
    assert net.send("a", "b", "x", 10)
    kernel.run()
    assert len(box_b) == 1


def test_partition_drops_in_flight_messages():
    # A message already on the wire is lost if the partition forms before
    # arrival — matches cable-cut semantics.
    kernel, net = make_net(LinkSpec(latency_s=0.010, jitter_s=0.0, bandwidth_bps=100e6))
    box_b = attach_inbox(net, "b")
    attach_inbox(net, "a")
    net.send("a", "b", "x", 10)
    net.partition("a", "b")
    kernel.run()
    assert box_b == []


def test_crashed_node_sends_and_receives_nothing():
    kernel, net = make_net()
    box_b = attach_inbox(net, "b")
    attach_inbox(net, "a")
    net.crash("a")
    assert not net.send("a", "b", "x", 10)
    net.recover("a")
    assert net.send("a", "b", "x", 10)
    kernel.run()
    assert len(box_b) == 1


def test_lossy_link_drops_probabilistically():
    kernel, net = make_net(LinkSpec(latency_s=0.0, jitter_s=0.0, bandwidth_bps=100e6, loss_prob=0.5), seed=3)
    box_b = attach_inbox(net, "b")
    attach_inbox(net, "a")
    for _ in range(200):
        net.send("a", "b", "x", 10)
    kernel.run()
    assert 50 < len(box_b) < 150  # ~100 expected


def test_unknown_destination_raises():
    _, net = make_net()
    attach_inbox(net, "a")
    with pytest.raises(ConfigError):
        net.send("a", "ghost", "x", 10)


def test_duplicate_registration_rejected():
    _, net = make_net()
    attach_inbox(net, "a")
    with pytest.raises(ConfigError):
        net.register("a", lambda *args: None)


def test_stats_and_utilization():
    spec = LinkSpec(latency_s=0.0, jitter_s=0.0, bandwidth_bps=100e6)
    kernel, net = make_net(spec)
    attach_inbox(net, "a")
    attach_inbox(net, "b")
    net.send("a", "b", "x", 12500)  # 1 ms of a 100 Mbit/s link
    kernel.run()
    kernel.run_until(1.0)
    assert net.stats.bytes_sent["a"] == 12500
    assert net.stats.bytes_received["b"] == 12500
    assert net.utilization("a") == pytest.approx(0.001)


def test_window_utilization_resets():
    spec = LinkSpec(latency_s=0.0, jitter_s=0.0, bandwidth_bps=100e6)
    kernel, net = make_net(spec)
    attach_inbox(net, "a")
    attach_inbox(net, "b")
    net.send("a", "b", "x", 12500)
    kernel.run()
    kernel.run_until(1.0)
    net.reset_window()
    kernel.run_until(2.0)
    assert net.window_utilization("a") == 0.0


def test_deterministic_with_same_seed():
    def run(seed):
        kernel, net = make_net(LinkSpec(latency_s=0.001, jitter_s=0.001, bandwidth_bps=100e6), seed=seed)
        arrivals = []
        net.register("b", lambda src, p, s: arrivals.append(kernel.now))
        net.register("a", lambda *args: None)
        for _ in range(20):
            net.send("a", "b", "x", 100)
        kernel.run()
        return arrivals

    assert run(5) == run(5)
    assert run(5) != run(6)
