"""TimeSeries and LatencyRecorder tests."""

import pytest

from repro.sim import LatencyRecorder, TimeSeries


def test_timeseries_stats():
    ts = TimeSeries(name="cpu")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
        ts.record(t, v)
    assert ts.mean() == pytest.approx(2.0)
    assert ts.maximum() == 3.0
    assert ts.minimum() == 1.0
    assert ts.last() == 2.0
    assert len(ts) == 3


def test_timeseries_after():
    ts = TimeSeries()
    for t in range(5):
        ts.record(float(t), float(t))
    tail = ts.after(2.0)
    assert tail.times == [2.0, 3.0, 4.0]


def test_empty_stats_are_zero():
    ts = TimeSeries()
    assert ts.mean() == 0.0 and ts.maximum() == 0.0
    rec = LatencyRecorder()
    assert rec.mean() == 0.0 and rec.p99() == 0.0 and rec.maximum() == 0.0


def test_latency_percentiles():
    rec = LatencyRecorder()
    for i in range(1, 101):
        rec.record(float(i), float(i))
    assert rec.median() == pytest.approx(50.5)
    assert rec.percentile(0) == 1.0
    assert rec.percentile(100) == 100.0
    assert rec.p99() == pytest.approx(99.01)
    assert rec.mean() == pytest.approx(50.5)


def test_latency_single_sample():
    rec = LatencyRecorder()
    rec.record(1.0, 0.014)
    assert rec.median() == 0.014
    assert rec.p99() == 0.014


def test_latency_since_and_timeline():
    rec = LatencyRecorder()
    rec.record(1.0, 0.010)
    rec.record(2.0, 0.020)
    rec.record(3.0, 0.030)
    assert rec.timeline() == [(1.0, 0.010), (2.0, 0.020), (3.0, 0.030)]
    tail = rec.since(2.0)
    assert tail.samples == [0.020, 0.030]
