"""TimeSeries and LatencyRecorder tests."""

import pytest

from repro.sim import LatencyRecorder, TimeSeries


def test_timeseries_stats():
    ts = TimeSeries(name="cpu")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
        ts.record(t, v)
    assert ts.mean() == pytest.approx(2.0)
    assert ts.maximum() == 3.0
    assert ts.minimum() == 1.0
    assert ts.last() == 2.0
    assert len(ts) == 3


def test_timeseries_after():
    ts = TimeSeries()
    for t in range(5):
        ts.record(float(t), float(t))
    tail = ts.after(2.0)
    assert tail.times == [2.0, 3.0, 4.0]


def test_empty_stats_are_zero():
    ts = TimeSeries()
    assert ts.mean() == 0.0 and ts.maximum() == 0.0
    rec = LatencyRecorder()
    assert rec.mean() == 0.0 and rec.p99() == 0.0 and rec.maximum() == 0.0


def test_latency_percentiles():
    rec = LatencyRecorder()
    for i in range(1, 101):
        rec.record(float(i), float(i))
    assert rec.median() == pytest.approx(50.5)
    assert rec.percentile(0) == 1.0
    assert rec.percentile(100) == 100.0
    assert rec.p99() == pytest.approx(99.01)
    assert rec.mean() == pytest.approx(50.5)


def test_latency_single_sample():
    rec = LatencyRecorder()
    rec.record(1.0, 0.014)
    assert rec.median() == 0.014
    assert rec.p99() == 0.014


def test_latency_since_and_timeline():
    rec = LatencyRecorder()
    rec.record(1.0, 0.010)
    rec.record(2.0, 0.020)
    rec.record(3.0, 0.030)
    assert rec.timeline() == [(1.0, 0.010), (2.0, 0.020), (3.0, 0.030)]
    tail = rec.since(2.0)
    assert tail.samples == [0.020, 0.030]


def test_after_and_since_bisect_boundaries():
    # Cutoff views use bisect over the monotone time lists; boundary
    # samples (exactly at the cutoff) must be included, like the old scan.
    ts = TimeSeries()
    rec = LatencyRecorder()
    for t in [0.0, 1.0, 1.0, 2.0, 3.0]:
        ts.record(t, t * 10)
        rec.record(t, t / 100)
    assert ts.after(1.0).times == [1.0, 1.0, 2.0, 3.0]
    assert ts.after(1.5).times == [2.0, 3.0]
    assert ts.after(9.0).times == []
    assert ts.after(-1.0).times == ts.times
    assert rec.since(1.0).times == [1.0, 1.0, 2.0, 3.0]
    assert rec.since(9.0).samples == []
    assert rec.since(-1.0).samples == rec.samples


def test_after_matches_linear_scan_reference():
    ts = TimeSeries()
    rec = LatencyRecorder()
    times = [i * 0.37 for i in range(200)]
    for t in times:
        ts.record(t, t)
        rec.record(t, t * 2)
    for cutoff in (0.0, 0.37, 10.0, 36.9, 73.63, 100.0):
        expected = [t for t in times if t >= cutoff]
        assert ts.after(cutoff).times == expected
        tail = rec.since(cutoff)
        assert tail.times == expected
        assert tail.samples == [t * 2 for t in expected]
