"""CPU pipeline and memory accounting tests."""

import pytest

from repro.sim import CostModel, CpuAccount, Kernel, MemoryAccount


def test_cost_model_disk_anchor():
    # Paper §V-B: writing a block of ten 8 kB requests takes 5.03 ms.
    model = CostModel()
    assert model.disk_write_cost(80 * 1024) == pytest.approx(5.03e-3, rel=0.1)


def test_cost_model_monotone_in_size():
    model = CostModel()
    assert model.hash_cost(2000) > model.hash_cost(100)
    assert model.serialize_cost(2000) > model.serialize_cost(100)


def test_pipeline_runs_work_sequentially():
    kernel = Kernel()
    cpu = CpuAccount(kernel, CostModel())
    done = []
    cpu.submit(0.010, lambda: done.append(kernel.now))
    cpu.submit(0.010, lambda: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(0.010), pytest.approx(0.020)]


def test_pipeline_idle_then_busy():
    kernel = Kernel()
    cpu = CpuAccount(kernel, CostModel())
    done = []
    kernel.schedule(1.0, lambda: cpu.submit(0.005, lambda: done.append(kernel.now)))
    kernel.run()
    assert done == [pytest.approx(1.005)]


def test_queue_depth_tracking():
    kernel = Kernel()
    cpu = CpuAccount(kernel, CostModel())
    for _ in range(5):
        cpu.submit(0.010, lambda: None)
    assert cpu.queue_depth == 5
    assert cpu.max_queue_depth == 5
    kernel.run()
    assert cpu.queue_depth == 0


def test_backlog_measures_unfinished_work():
    kernel = Kernel()
    cpu = CpuAccount(kernel, CostModel())
    cpu.submit(0.100, lambda: None)
    assert cpu.pipeline_backlog == pytest.approx(0.100)
    kernel.run()
    assert cpu.pipeline_backlog == 0.0


def test_utilization_counts_all_cores():
    kernel = Kernel()
    cpu = CpuAccount(kernel, CostModel(cores=4))
    cpu.submit(0.100, lambda: None)
    cpu.charge_background(0.100)
    kernel.run()
    kernel.run_until(1.0)
    # 0.2 s of work over 1 s on 4 cores = 5 %.
    assert cpu.utilization() == pytest.approx(0.05)


def test_window_utilization():
    kernel = Kernel()
    cpu = CpuAccount(kernel, CostModel(cores=4))
    cpu.submit(0.2, lambda: None)
    kernel.run()
    kernel.run_until(1.0)
    cpu.reset_window()
    cpu.charge_background(0.4)
    kernel.run_until(2.0)
    assert cpu.window_utilization() == pytest.approx(0.1)


def test_memory_accounting():
    mem = MemoryAccount()
    base = mem.current()
    mem.add("queue", 1000)
    mem.add("queue", 500)
    assert mem.category("queue") == 1500
    assert mem.current() == base + 1500
    mem.release("queue", 700)
    assert mem.current() == base + 800
    assert mem.peak == base + 1500


def test_memory_over_release_rejected():
    mem = MemoryAccount()
    mem.add("queue", 10)
    with pytest.raises(ValueError):
        mem.release("queue", 11)


def test_memory_negative_add_rejected():
    mem = MemoryAccount()
    with pytest.raises(ValueError):
        mem.add("queue", -1)


def test_memory_sampling():
    mem = MemoryAccount()
    mem.add("chain", 100)
    mem.sample(1.0)
    mem.add("chain", 100)
    mem.sample(2.0)
    assert len(mem.series) == 2
    assert mem.series.values[1] > mem.series.values[0]
