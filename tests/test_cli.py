"""CLI tests (driving main() directly)."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_run_zugchain():
    code, output = run_cli("run", "--duration", "6", "--warmup", "1")
    assert code == 0
    assert "zugchain" in output
    assert "chain" in output
    assert "view changes  : 0" in output


def test_run_baseline():
    code, output = run_cli("run", "--system", "baseline", "--duration", "6", "--warmup", "1")
    assert code == 0
    assert "baseline" in output


def test_run_sweep_mode_on_multivalue_axes():
    code, output = run_cli("run", "--cycle-ms", "32", "64", "--payload", "64",
                           "--duration", "3", "--warmup", "0.5", "--jobs", "2")
    assert code == 0
    assert "2 points" in output and "jobs=2" in output
    assert "spec hash" in output
    assert "32 ms" in output and "64 ms" in output


def test_run_sweep_mode_rejects_trace_and_tcp():
    with pytest.raises(SystemExit):
        # --trace needs a PATH value; here we pass one explicitly.
        main(["run", "--cycle-ms", "32", "64", "--runtime", "bogus"])
    code, _ = run_cli("run", "--cycle-ms", "32", "64", "--duration", "3",
                      "--warmup", "0.5", "--trace", "/tmp/t.jsonl")
    assert code == 2
    code, _ = run_cli("run", "--cycle-ms", "32", "64", "--duration", "3",
                      "--warmup", "0.5", "--runtime", "tcp")
    assert code == 2


def test_run_record_bench_writes_artifact(tmp_path):
    path = tmp_path / "BENCH_cli.json"
    code, output = run_cli("run", "--duration", "3", "--warmup", "0.5",
                           "--record-bench", str(path))
    assert code == 0
    assert f"wrote {path}" in output
    payload = json.loads(path.read_text())
    assert payload["schema"] == "zugchain-bench/1"
    entry = payload["suites"]["cli:run:zugchain"]
    assert entry["count"] == 1 and entry["mean_s"] > 0
    assert entry["sim_seconds"] == 3.0


def test_bench_subcommand_writes_artifact_with_speedup(tmp_path):
    path = tmp_path / "BENCH_bench.json"
    code, output = run_cli("bench", "--suite", "cycles", "--duration", "2",
                           "--warmup", "0.5", "--jobs", "2",
                           "--compare-serial", "--out", str(path))
    assert code == 0
    assert "cycles:zugchain" in output and "artifact" in output
    payload = json.loads(path.read_text())
    assert set(payload["suites"]) == {"cycles:zugchain", "cycles:baseline"}
    for name, entry in payload["speedups"].items():
        assert entry["byte_identical"] is True, name
        assert entry["jobs"] == 2


def test_export():
    code, output = run_cli("export", "--blocks", "50")
    assert code == 0
    assert "exported 50 blocks" in output
    assert "read" in output and "verify" in output


def test_reliability_survival():
    code, output = run_cli("reliability", "--destroy-prob", "0.1", "--nodes", "4")
    assert code == 0
    assert "P(total data loss): 1.00e-04" in output


def test_reliability_target():
    code, output = run_cli("reliability", "--destroy-prob", "0.1", "--target", "1e-4")
    assert code == 0
    assert "nodes required" in output and "4" in output


def test_reliability_unreachable_target():
    code, output = run_cli("reliability", "--destroy-prob", "0.1",
                           "--target", "1e-9", "--correlation", "0.01")
    assert code == 1
    assert "unreachable" in output


def test_requirements_pass():
    code, output = run_cli("requirements", "--duration", "8")
    assert code == 0
    assert output.count("[PASS]") == 4


def test_requirements_fail_on_slow_event_rate():
    code, output = run_cli("requirements", "--cycle-ms", "200", "--duration", "8")
    assert code == 1
    assert "[FAIL]" in output


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
