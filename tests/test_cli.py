"""CLI tests (driving main() directly)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_run_zugchain():
    code, output = run_cli("run", "--duration", "6", "--warmup", "1")
    assert code == 0
    assert "zugchain" in output
    assert "chain" in output
    assert "view changes  : 0" in output


def test_run_baseline():
    code, output = run_cli("run", "--system", "baseline", "--duration", "6", "--warmup", "1")
    assert code == 0
    assert "baseline" in output


def test_export():
    code, output = run_cli("export", "--blocks", "50")
    assert code == 0
    assert "exported 50 blocks" in output
    assert "read" in output and "verify" in output


def test_reliability_survival():
    code, output = run_cli("reliability", "--destroy-prob", "0.1", "--nodes", "4")
    assert code == 0
    assert "P(total data loss): 1.00e-04" in output


def test_reliability_target():
    code, output = run_cli("reliability", "--destroy-prob", "0.1", "--target", "1e-4")
    assert code == 0
    assert "nodes required" in output and "4" in output


def test_reliability_unreachable_target():
    code, output = run_cli("reliability", "--destroy-prob", "0.1",
                           "--target", "1e-9", "--correlation", "0.01")
    assert code == 1
    assert "unreachable" in output


def test_requirements_pass():
    code, output = run_cli("requirements", "--duration", "8")
    assert code == 0
    assert output.count("[PASS]") == 4


def test_requirements_fail_on_slow_event_rate():
    code, output = run_cli("requirements", "--cycle-ms", "200", "--duration", "8")
    assert code == 1
    assert "[FAIL]" in output


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
