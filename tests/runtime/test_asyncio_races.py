"""Regression tests for the concurrency hazards ASYNC001/ASYNC004 found.

zuglint's aio stage flagged three real interleavings in the TCP runtime:
``connect_all`` check-then-dial-then-store spanning awaits (two racing
callers could dial a peer twice and leak the loser's socket), a writer
leaked when the hello/drain fails mid-handshake, and
``AsyncioCluster.start`` publishing ``self.peers``/``self.hosted``
incrementally across awaits.  These tests pin the fixed behavior.
"""

import asyncio

import hypothesis  # noqa: F401  (pre-import: see test_asyncio_runtime.py)
import pytest

from repro.runtime.asyncio_runtime import AsyncioCluster, AsyncioEnv


def run(coro):
    return asyncio.run(coro)


async def _start_listener(accepted):
    """A hello-reading server that counts accepted connections."""

    async def on_connect(reader, writer):
        accepted.append(await reader.readline())

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, port


def test_concurrent_connect_all_dials_each_peer_once():
    """The connection lock makes check-then-store atomic per call."""

    async def scenario():
        accepted: list[bytes] = []
        server_a, port_a = await _start_listener(accepted)
        server_b, port_b = await _start_listener(accepted)
        env = AsyncioEnv("node-0", {
            "node-0": ("127.0.0.1", 0),
            "node-1": ("127.0.0.1", port_a),
            "node-2": ("127.0.0.1", port_b),
        })
        try:
            await asyncio.gather(env.connect_all(), env.connect_all())
            await asyncio.sleep(0.05)  # let the listeners count accepts
            assert sorted(env._writers) == ["node-1", "node-2"]
            assert len(accepted) == 2  # one dial per peer, not per caller
        finally:
            await env.close()
            for server in (server_a, server_b):
                server.close()
                await server.wait_closed()

    run(scenario())


class _FailingWriter:
    """StreamWriter stand-in whose drain() fails mid-handshake."""

    def __init__(self):
        self.closed = False

    def write(self, data):
        pass

    async def drain(self):
        raise ConnectionResetError("peer vanished during hello")

    def close(self):
        self.closed = True

    def is_closing(self):
        return self.closed


def test_failed_handshake_closes_writer_and_stores_nothing(monkeypatch):
    async def scenario():
        writer = _FailingWriter()

        async def fake_open_connection(host, port):
            return object(), writer

        monkeypatch.setattr(asyncio, "open_connection", fake_open_connection)
        env = AsyncioEnv("node-0", {"node-1": ("127.0.0.1", 1)})
        with pytest.raises(ConnectionResetError):
            await env.connect_all()
        assert writer.closed
        assert env._writers == {}

    run(scenario())


def test_cluster_start_twice_fails_fast_without_double_bind():
    async def scenario():
        cluster = AsyncioCluster(lambda env: object(), n=2)
        await cluster.start()
        try:
            servers = {node_id: h.server for node_id, h in cluster.hosted.items()}
            with pytest.raises(RuntimeError, match="called twice"):
                await cluster.start()
            # The first fleet is untouched: same servers, same peer map.
            assert {n: h.server for n, h in cluster.hosted.items()} == servers
            assert sorted(cluster.peers) == ["node-0", "node-1"]
        finally:
            await cluster.stop()

    run(scenario())


def test_concurrent_cluster_starts_admit_exactly_one():
    """The check-and-set precedes the first await, so it is loop-atomic."""

    async def scenario():
        cluster = AsyncioCluster(lambda env: object(), n=2)
        results = await asyncio.gather(
            cluster.start(), cluster.start(), return_exceptions=True,
        )
        try:
            failures = [r for r in results if isinstance(r, RuntimeError)]
            assert len(failures) == 1
            assert len(cluster.hosted) == 2
        finally:
            await cluster.stop()

    run(scenario())
