"""SimEnv and NodeHost behaviour tests: queuing, ordering, accounting."""

import random

import pytest

from repro.bft.messages import Prepare
from repro.crypto import HmacScheme
from repro.runtime import NodeHost, SimEnv, wire_size
from repro.sim import CostModel, CpuAccount, Kernel, LinkSpec, Network

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


class StubNode:
    """Minimal hosted node: records handled messages in order."""

    def __init__(self, node_id="node-0"):
        self.id = node_id
        self.handled = []
        self.replica = None  # no lazy-verification hints

    def handle_message(self, src, message):
        self.handled.append((src, message))

    def on_bus_cycle(self, cycle):
        self.handled.append(("bus", cycle))


def make_stack(node_id="node-0"):
    kernel = Kernel()
    model = CostModel()
    network = Network(kernel, random.Random(1),
                      LinkSpec(latency_s=1e-4, jitter_s=0.0, bandwidth_bps=100e6))
    cpu = CpuAccount(kernel, model, name=node_id)
    node = StubNode(node_id)
    host = NodeHost(node, network, cpu, model)
    env = SimEnv(node_id, kernel, network, cpu, model)
    return kernel, network, cpu, node, host, env


def prepare_msg():
    return Prepare(view=0, seq=1, digest=b"\x11" * 32, replica_id="node-1").signed(PAIR)


def test_send_charges_pipeline_before_wire():
    kernel, network, cpu, node, host, env = make_stack()
    network.register("node-1", lambda *a: None)
    env.send("node-1", prepare_msg())
    assert cpu.pipeline_backlog > 0
    kernel.run()
    assert network.stats.bytes_sent["node-0"] == wire_size(prepare_msg())


def test_receive_order_preserved_per_node():
    kernel, network, cpu, node, host, env = make_stack()
    env2 = SimEnv("node-1", kernel, network, cpu, CostModel())
    network.register("node-1", lambda *a: None)
    for i in range(5):
        msg = Prepare(view=0, seq=i + 1, digest=b"\x11" * 32,
                      replica_id="node-1").signed(PAIR)
        network.send("node-1", "node-0", msg, 100)
    kernel.run()
    seqs = [m.seq for _, m in node.handled]
    assert seqs == [1, 2, 3, 4, 5]


def test_inbox_bytes_rises_and_falls():
    kernel, network, cpu, node, host, env = make_stack()
    network.register("node-1", lambda *a: None)
    network.send("node-1", "node-0", prepare_msg(), 150)
    # Deliver the network event but stop before the CPU pipeline finishes.
    while host.inbox_bytes == 0 and kernel.step():
        pass
    assert host.inbox_bytes == 150
    kernel.run()
    assert host.inbox_bytes == 0
    assert node.handled


def test_broadcast_serializes_once_per_copy():
    kernel, network, cpu, node, host, env = make_stack()
    for peer in ("node-1", "node-2", "node-3"):
        network.register(peer, lambda *a: None)
    env.broadcast(prepare_msg())
    kernel.run()
    assert network.stats.messages_sent["node-0"] == 3


def test_timer_from_env_is_cancellable():
    kernel, network, cpu, node, host, env = make_stack()
    fired = []
    timer = env.set_timer(1.0, lambda: fired.append(1))
    timer.cancel()
    kernel.run()
    assert fired == []


def test_now_tracks_kernel():
    kernel, network, cpu, node, host, env = make_stack()
    assert env.node_id == "node-0"
    # Exact virtual-time assertions are sound here: the kernel clock is set
    # from these literal schedule() values, not float arithmetic.
    assert env.now() == 0.0  # zuglint: disable=DET005
    kernel.schedule(2.0, lambda: None)
    kernel.run()
    assert env.now() == 2.0  # zuglint: disable=DET005
