"""Cost-table tests: crypto counts per message type, size accounting."""

import pytest

from repro.bft.client import ClientRequestWrapper, Reply
from repro.bft.messages import Checkpoint, Commit, PrePrepare, Prepare, ViewChange
from repro.core.messages import ZugBroadcast, ZugForward
from repro.crypto import HmacScheme
from repro.runtime import ETHERNET_OVERHEAD_BYTES, recv_cost, send_cost, wire_size
from repro.sim.resources import CostModel
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")
MODEL = CostModel()


def signed_request(payload=b"x" * 100):
    request = Request(payload=payload, bus_cycle=1, recv_timestamp_us=1)
    return SignedRequest.create(request, "node-0", PAIR)


def preprepare(payload=b"x" * 100):
    return PrePrepare(view=0, seq=1, request=signed_request(payload),
                      primary_id="node-0").signed(PAIR)


def prepare():
    return Prepare(view=0, seq=1, digest=b"\x11" * 32, replica_id="node-0").signed(PAIR)


def test_wire_size_includes_framing():
    msg = prepare()
    assert wire_size(msg) == msg.encoded_size() + ETHERNET_OVERHEAD_BYTES


def test_preprepare_costs_two_signatures():
    # A preprepare carries the signed request plus the primary's signature.
    pp_cost = send_cost(preprepare(), MODEL)
    vote_cost = send_cost(prepare(), MODEL)
    assert pp_cost > vote_cost + MODEL.sign_s * 0.9


def test_recv_preprepare_verifies_two_signatures():
    assert recv_cost(preprepare(), MODEL) > recv_cost(prepare(), MODEL) + MODEL.verify_s * 0.9


def test_forward_is_cheaper_than_broadcast_to_emit():
    # A forward relays an existing signature; no new signing.
    signed = signed_request()
    fwd = ZugForward(request=signed, forwarder_id="node-1")
    bc = ZugBroadcast(request=signed)
    assert send_cost(fwd, MODEL) < send_cost(bc, MODEL)


def test_broadcast_copies_scale_serialization_not_signing():
    msg = prepare()
    one = send_cost(msg, MODEL, copies=1)
    three = send_cost(msg, MODEL, copies=3)
    assert three > one
    # The delta is serialization only, much less than a signature each.
    assert three - one < 2 * MODEL.sign_s


def test_payload_hashing_scales_with_size():
    small = recv_cost(preprepare(b"x" * 32), MODEL)
    large = recv_cost(preprepare(b"x" * 8192), MODEL)
    assert large > small + MODEL.hash_per_byte_s * 8000 * 0.9


def test_viewchange_cost_scales_with_prepared_proofs():
    from repro.bft.messages import PreparedProof

    empty = ViewChange(new_view=1, last_stable_seq=0,
                       stable_checkpoint_digest=b"\x00" * 32,
                       prepared=(), replica_id="node-0").signed(PAIR)
    proofs = tuple(
        PreparedProof(view=0, seq=i, digest=b"\x11" * 32, request=signed_request())
        for i in range(5)
    )
    full = ViewChange(new_view=1, last_stable_seq=0,
                      stable_checkpoint_digest=b"\x00" * 32,
                      prepared=proofs, replica_id="node-0").signed(PAIR)
    assert recv_cost(full, MODEL) > recv_cost(empty, MODEL) + 4 * MODEL.verify_s


def test_vote_types_have_symmetric_unit_costs():
    commit = Commit(view=0, seq=1, digest=b"\x11" * 32, replica_id="node-0").signed(PAIR)
    checkpoint = Checkpoint(seq=1, block_height=1, block_hash=b"\x11" * 32,
                            state_digest=b"\x22" * 32, replica_id="node-0").signed(PAIR)
    reply = Reply(seq=1, digest=b"\x11" * 32, client_id="node-0",
                  replica_id="node-0").signed(PAIR)
    for msg in (commit, checkpoint, reply):
        # one verify each on ingest
        assert MODEL.verify_s < recv_cost(msg, MODEL) < MODEL.verify_s + 1e-3


def test_client_wrapper_costs_one_signature():
    wrapper = ClientRequestWrapper(request=signed_request())
    assert MODEL.sign_s < send_cost(wrapper, MODEL) < MODEL.sign_s + 1e-3 + MODEL.hash_cost(100)
