"""Cross-runtime Env conformance: one battery, four transports.

Every :class:`~repro.runtime.base.BaseEnv` adapter — the discrete-event
:class:`~repro.runtime.env.SimEnv`, the :class:`~repro.bft.env.RecordingEnv`
test double, the TCP :class:`~repro.runtime.asyncio_runtime.AsyncioEnv`,
and the process-parallel :class:`~repro.runtime.multiprocess.MultiprocessEnv`
— must exhibit identical semantics: broadcast in sorted order excluding
self, canonical ``send_many`` ordering, fire-once timers, monotonic
clocks, and the same counter accounting.  Each test below runs against
all four via a small driver that abstracts "make an env with these
peers", "what got delivered, in order", and "advance time".

The asyncio driver needs no sockets, and the multiprocess driver needs
no child processes: stub writers/channels capture the framed bytes,
which are decoded back through the wire registry — so the battery
exercises the real encode path while staying deterministic.
"""

import asyncio
import random
import time

import pytest

from repro.bft.env import RecordingEnv
from repro.bft.messages import Prepare
from repro.crypto import HmacScheme
from repro.obs.causal import CausalContext
from repro.runtime.asyncio_runtime import _CAUSAL_FLAG, AsyncioEnv
from repro.runtime.env import SimEnv
from repro.runtime.multiprocess import MultiprocessEnv
from repro.sim import CostModel, CpuAccount, Kernel, LinkSpec, Network
from repro.util.errors import ProtocolError
from repro.wire.registry import decode_message

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-1")

#: Deliberately unsorted; "node-1" is the env's own id.
NODE_ID = "node-1"
PEERS = ("node-2", "node-0", "node-3", "node-1")
OTHERS = ("node-0", "node-2", "node-3")


def message(seq: int = 1) -> Prepare:
    return Prepare(view=0, seq=seq, digest=b"\x11" * 32, replica_id=NODE_ID).signed(PAIR)


class SimDriver:
    """SimEnv on a jitter-free network; peers record deliveries in order."""

    tick = 1.0

    def __init__(self) -> None:
        self.kernel = Kernel()
        self.network = Network(self.kernel, random.Random(1),
                               LinkSpec(latency_s=1e-4, jitter_s=0.0, bandwidth_bps=100e6))
        self.deliveries: list[tuple[str, object]] = []
        self.ctxs: list[object] = []
        for peer in sorted(PEERS):
            self.network.register(peer, self._sink(peer))
        cpu = CpuAccount(self.kernel, CostModel(), name=NODE_ID)
        self.env = SimEnv(NODE_ID, self.kernel, self.network, cpu, CostModel())

    def _sink(self, peer: str):
        def receive(src: str, payload: object, size: int) -> None:
            self.deliveries.append((peer, payload))
            self.ctxs.append(self.network.inbound_context)
        return receive

    def delivered(self) -> list[tuple[str, object]]:
        return self.deliveries

    def contexts(self) -> list[object]:
        return self.ctxs

    def advance(self, dt: float) -> None:
        self.kernel.run_until(self.kernel.now + dt)

    def make_unreachable(self, peer: str) -> None:
        self.network.crash(peer)

    def close(self) -> None:
        pass


class RecordingDriver:
    """RecordingEnv with explicit peers; ``sent`` is the delivery log."""

    tick = 1.0

    def __init__(self) -> None:
        self.env = RecordingEnv(node_id=NODE_ID, peers=PEERS)

    def delivered(self) -> list[tuple[str, object]]:
        return self.env.sent

    def contexts(self) -> list[object]:
        return list(self.env.sent_ctx)

    def advance(self, dt: float) -> None:
        target = self.env.now() + dt
        while True:
            due = sorted(
                (t for t in self.env.active_timers() if t.deadline <= target),
                key=lambda t: t.deadline,
            )
            if not due:
                break
            self.env._now = max(self.env.now(), due[0].deadline)
            due[0].fire()
        self.env._now = target

    def make_unreachable(self, peer: str) -> None:
        self.env.unreachable.add(peer)

    def close(self) -> None:
        pass


class _StubWriter:
    """Captures framed wire bytes and decodes them back into messages.

    Parses the real frame format including the causal-header extension:
    a set high bit on the length prefix means the frame opens with a
    registry-encoded CausalContext before the message body.
    """

    def __init__(self, peer: str, log: list[tuple[str, object]],
                 ctxs: list[object]) -> None:
        self._peer = peer
        self._log = log
        self._ctxs = ctxs
        self.closing = False

    def write(self, data: bytes) -> None:
        length = int.from_bytes(data[:4], "big")
        frame = data[4:]
        ctx = None
        if length & _CAUSAL_FLAG:
            ctx, consumed = decode_message(frame)
            frame = frame[consumed:]
        decoded, _ = decode_message(frame)
        self._log.append((self._peer, decoded))
        self._ctxs.append(ctx)

    def is_closing(self) -> bool:
        return self.closing


class AsyncioDriver:
    """AsyncioEnv on a private event loop with stub writers (no sockets)."""

    tick = 0.02

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.env = AsyncioEnv(
            NODE_ID, {peer: ("127.0.0.1", 0) for peer in PEERS}, loop=self.loop
        )
        self.deliveries: list[tuple[str, object]] = []
        self.ctxs: list[object] = []
        self.writers: dict[str, _StubWriter] = {}
        for peer in PEERS:
            if peer == NODE_ID:
                continue
            writer = _StubWriter(peer, self.deliveries, self.ctxs)
            self.writers[peer] = writer
            self.env._writers[peer] = writer

    def delivered(self) -> list[tuple[str, object]]:
        return self.deliveries

    def contexts(self) -> list[object]:
        return self.ctxs

    def advance(self, dt: float) -> None:
        # Generous real-time margin: timers in these tests use self.tick,
        # and every advance sleeps several ticks past the deadline.
        self.loop.run_until_complete(asyncio.sleep(dt))

    def make_unreachable(self, peer: str) -> None:
        self.writers[peer].closing = True

    def close(self) -> None:
        self.loop.close()


class _StubChannel:
    """Captures (src, frame, ctx) channel puts and decodes the wire bytes."""

    def __init__(self, peer: str, log: list[tuple[str, object]],
                 ctxs: list[object]) -> None:
        self._peer = peer
        self._log = log
        self._ctxs = ctxs
        self.closed = False

    def put(self, item: tuple[str, bytes, bytes]) -> None:
        _, frame, ctx_bytes = item
        decoded, _ = decode_message(frame)
        self._log.append((self._peer, decoded))
        self._ctxs.append(decode_message(ctx_bytes)[0] if ctx_bytes else None)


class MultiprocessDriver:
    """MultiprocessEnv with stub channels (no child processes)."""

    tick = 0.05

    def __init__(self) -> None:
        self.deliveries: list[tuple[str, object]] = []
        self.ctxs: list[object] = []
        self.channels = {
            peer: _StubChannel(peer, self.deliveries, self.ctxs)
            for peer in PEERS if peer != NODE_ID
        }
        self.env = MultiprocessEnv(NODE_ID, self.channels)

    def delivered(self) -> list[tuple[str, object]]:
        return self.deliveries

    def contexts(self) -> list[object]:
        return self.ctxs

    def advance(self, dt: float) -> None:
        # Real-time margin, as for asyncio: timers use self.tick and every
        # advance sleeps several ticks past the deadline.
        time.sleep(dt)

    def make_unreachable(self, peer: str) -> None:
        self.channels[peer].closed = True

    def close(self) -> None:
        self.env.close()


@pytest.fixture(params=[SimDriver, RecordingDriver, AsyncioDriver,
                        MultiprocessDriver],
                ids=["sim", "recording", "asyncio", "multiprocess"])
def driver(request):
    instance = request.param()
    yield instance
    instance.close()


def test_broadcast_targets_are_sorted_and_exclude_self(driver):
    assert driver.env.broadcast_targets() == OTHERS


def test_broadcast_delivers_in_canonical_order(driver):
    driver.env.broadcast(message())
    driver.advance(driver.tick)
    assert [dst for dst, _ in driver.delivered()] == list(OTHERS)
    assert all(msg == message() for _, msg in driver.delivered())


def test_send_many_canonicalizes_recipient_order(driver):
    driver.env.send_many(("node-3", "node-0"), message())
    driver.advance(driver.tick)
    assert [dst for dst, _ in driver.delivered()] == ["node-0", "node-3"]


def test_send_reaches_exactly_one_recipient(driver):
    driver.env.send("node-2", message(7))
    driver.advance(driver.tick)
    assert [dst for dst, _ in driver.delivered()] == ["node-2"]
    assert driver.delivered()[0][1].seq == 7


def test_counter_accounting_is_identical(driver):
    env = driver.env
    env.send("node-0", message())
    env.broadcast(message(2))
    env.send_many(("node-2", "node-3"), message(3))
    driver.advance(driver.tick)
    assert env.counters.snapshot() == {
        "sends": 3,
        "broadcasts": 1,
        "messages_emitted": 6,
        "drops": 0,
        "timers_set": 0,
        "timers_fired": 0,
        "timers_cancelled": 0,
    }


def test_undeliverable_copies_are_counted_as_drops(driver):
    driver.make_unreachable("node-3")
    driver.env.send("node-3", message())
    driver.env.broadcast(message(2))
    driver.advance(driver.tick)
    assert driver.env.counters.drops == 2
    assert [dst for dst, _ in driver.delivered()] == ["node-0", "node-2"]


def test_timer_fires_once_and_goes_inactive(driver):
    fired: list[int] = []
    timer = driver.env.set_timer(driver.tick, lambda: fired.append(1))
    assert timer.active
    driver.advance(driver.tick * 4)
    assert fired == [1]
    assert not timer.active
    timer.fire()  # transports re-firing a handle must be a no-op
    assert fired == [1]
    assert driver.env.counters.timers_fired == 1


def test_cancelled_timer_never_fires(driver):
    fired: list[int] = []
    timer = driver.env.set_timer(driver.tick, lambda: fired.append(1))
    timer.cancel()
    assert not timer.active
    timer.cancel()  # idempotent
    driver.advance(driver.tick * 4)
    assert fired == []
    assert driver.env.counters.timers_cancelled == 1
    assert driver.env.counters.timers_fired == 0


def test_cancel_after_fire_is_a_no_op(driver):
    timer = driver.env.set_timer(driver.tick, lambda: None)
    driver.advance(driver.tick * 4)
    timer.cancel()
    assert driver.env.counters.timers_fired == 1
    assert driver.env.counters.timers_cancelled == 0


def test_negative_delay_is_rejected(driver):
    with pytest.raises(ProtocolError):
        driver.env.set_timer(-0.5, lambda: None)
    assert driver.env.counters.timers_set == 0


def test_clock_is_monotonic_and_deadlines_are_absolute(driver):
    start = driver.env.now()
    timer = driver.env.set_timer(driver.tick * 2, lambda: None)
    assert timer.deadline >= start + driver.tick * 2 - 1e-9
    driver.advance(driver.tick)
    mid = driver.env.now()
    assert mid >= start
    driver.advance(driver.tick)
    assert driver.env.now() >= mid


# -- causal-conformance battery: identical context propagation everywhere ----


def test_every_emission_is_stamped_with_a_fresh_context(driver):
    # One stamp per emission: a broadcast's copies share one context, and
    # the Lamport clock ticks once per _emit, not per copy.
    driver.env.causal.carry = True
    driver.env.broadcast(message())
    driver.env.send("node-2", message(2))
    driver.advance(driver.tick)
    ctxs = driver.contexts()
    assert len(ctxs) == 4
    assert all(isinstance(ctx, CausalContext) for ctx in ctxs)
    assert ctxs[0] == ctxs[1] == ctxs[2]
    assert ctxs[0] == CausalContext(origin=NODE_ID, lamport=1, parent=-1)
    assert ctxs[3] == CausalContext(origin=NODE_ID, lamport=2, parent=-1)


def test_run_inbound_merges_lamport_and_scopes_the_context(driver):
    driver.env.causal.carry = True
    inbound = CausalContext(origin="node-9", lamport=41, parent=7)
    observed: list[object] = []

    def handler() -> None:
        observed.append(driver.env.causal.inbound)
        driver.env.send("node-0", message(3))

    driver.env.run_inbound(inbound, handler)
    driver.advance(driver.tick)
    # The merge takes max(local, remote) + 1 = 42, then the emission's
    # stamp ticks to 43; the inbound scope is restored afterwards.
    assert observed == [inbound]
    assert driver.env.causal.inbound is None
    assert driver.env.causal.lamport == 43
    assert driver.contexts() == [
        CausalContext(origin=NODE_ID, lamport=43, parent=-1)
    ]


def test_untraced_emissions_still_tick_but_carry_is_off_by_default(driver):
    # The clock always ticks (so traced and untraced runs behave
    # identically), but only in-process envelopes expose the context when
    # carry is off: the framing transports must not grow wire bytes.
    assert driver.env.causal.carry is False
    driver.env.send("node-2", message())
    driver.advance(driver.tick)
    assert driver.env.causal.lamport == 1
    in_process = isinstance(driver, (SimDriver, RecordingDriver))
    expected = CausalContext(origin=NODE_ID, lamport=1, parent=-1) if in_process else None
    assert driver.contexts() == [expected]
