"""MultiprocessCluster: real consensus with one OS process per node.

The conformance battery pins MultiprocessEnv's adapter semantics; these
tests pin the cluster built on it — N worker processes, wire-encoded
messages over mp queues, a bus feeder in the parent — actually ordering
requests and staying consistent, i.e. the sans-IO promise ("only the Env
implementation changes") holding across a process boundary.
"""

import pytest

from repro.runtime.multiprocess import (
    MultiprocessScenarioConfig,
    run_multiprocess_scenario,
)


@pytest.fixture(scope="module")
def small_run():
    config = MultiprocessScenarioConfig(
        n=4, cycles=8, cycle_time_s=0.03, block_size=5,
        settle_timeout_s=60.0,
    )
    return config, run_multiprocess_scenario(config)


def test_every_node_logs_every_request(small_run):
    config, result = small_run
    assert result.errors == {}
    assert result.completed
    assert result.requests_logged >= config.cycles


def test_chains_are_consistent_across_processes(small_run):
    _, result = small_run
    assert result.heads_consistent
    heights = set(result.chain_heights.values())
    assert len(heights) == 1 and heights.pop() >= 1


def test_env_counters_travel_back_from_workers(small_run):
    config, result = small_run
    assert sorted(result.env_counters) == [f"node-{i}" for i in range(config.n)]
    for counters in result.env_counters.values():
        # Every node broadcast protocol messages to its three peers.
        assert counters["broadcasts"] > 0
        assert counters["messages_emitted"] >= counters["broadcasts"] * (config.n - 1)
        assert counters["drops"] == 0
