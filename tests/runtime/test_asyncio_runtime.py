"""End-to-end test of the ZugChain stack over real asyncio TCP sockets."""

import asyncio

import hypothesis  # noqa: F401  (pre-import: the pytest plugin imports it lazily
#                   at terminal summary, which on CPython 3.11 can hit the
#                   "AST constructor recursion depth mismatch" bug when first
#                   imported inside a deep teardown stack)
import pytest

from repro.bft import BftConfig
from repro.bus.nsdb import standard_jru_catalog
from repro.core import ZugChainConfig, ZugChainNode
from repro.crypto import HmacScheme, KeyStore
from repro.runtime.asyncio_runtime import AsyncioCluster
from repro.wire import Request

SCHEME = HmacScheme()
IDS = ["node-0", "node-1", "node-2", "node-3"]
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
KEYSTORE = KeyStore(scheme=SCHEME)
for _i, _p in KEYPAIRS.items():
    KEYSTORE.register(_i, _p.public)

BFT_CONFIG = BftConfig(replica_ids=tuple(IDS), checkpoint_interval=5)
ZUG_CONFIG = ZugChainConfig(soft_timeout_s=0.4, hard_timeout_s=0.4,
                            checkpoint_interval=5)


def make_node(env):
    return ZugChainNode(
        env=env,
        bft_config=BFT_CONFIG,
        zug_config=ZUG_CONFIG,
        keypair=KEYPAIRS[env.node_id],
        keystore=KEYSTORE,
        nsdb=standard_jru_catalog(),
    )


def bus_request(cycle):
    return Request(payload=b"tcp-cycle-%d" % cycle, bus_cycle=cycle,
                   recv_timestamp_us=cycle * 20_000)


async def _drive(cluster, cycles, interval_s=0.02):
    for cycle in range(1, cycles + 1):
        request = bus_request(cycle)
        # Every node reads the same bus data locally.
        for node in cluster.nodes().values():
            node.inject_request(request)
        await asyncio.sleep(interval_s)


async def _wait_until(predicate, timeout_s=10.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.05)
    return False


def run(coro):
    # asyncio.run cancels lingering connection-handler tasks at shutdown.
    return asyncio.run(coro)


def test_tcp_cluster_orders_and_chains():
    async def scenario():
        cluster = AsyncioCluster(make_node, n=4)
        await cluster.start()
        try:
            cycles = 15
            await _drive(cluster, cycles)
            done = await _wait_until(
                lambda: all(n.requests_logged >= cycles for n in cluster.nodes().values())
            )
            assert done, "not all nodes logged every request over TCP"
            heights = {n.chain.height for n in cluster.nodes().values()}
            assert heights == {cycles // 5}  # block size 5
            heads = {n.chain.head.block_hash for n in cluster.nodes().values()}
            assert len(heads) == 1
            for node in cluster.nodes().values():
                node.chain.verify()
        finally:
            await cluster.stop()

    run(scenario())


def test_tcp_bad_frames_are_counted_not_fatal():
    """A garbage frame bumps decode_errors; the stream keeps working."""
    async def scenario():
        cluster = AsyncioCluster(make_node, n=4)
        await cluster.start()
        try:
            # Inject a framed-but-undecodable payload from node-1 to node-0
            # on the already-authenticated connection, then real traffic.
            env1 = cluster.hosted["node-1"].env
            junk = b"\xff\xfe\xfd\xfc"
            env1._writers["node-0"].write(len(junk).to_bytes(4, "big") + junk)
            cycles = 5
            await _drive(cluster, cycles)
            done = await _wait_until(
                lambda: all(n.requests_logged >= cycles for n in cluster.nodes().values())
            )
            assert done, "cluster stalled after an undecodable frame"
            env0 = cluster.hosted["node-0"].env
            assert env0.decode_errors == 1
            assert env0.oversize_frames == 0
        finally:
            await cluster.stop()

    run(scenario())


def test_tcp_broadcast_fans_out_in_sorted_order():
    async def scenario():
        cluster = AsyncioCluster(make_node, n=4)
        await cluster.start()
        try:
            for hosted in cluster.hosted.values():
                others = sorted(set(IDS) - {hosted.env.node_id})
                assert hosted.env.broadcast_targets() == tuple(others)
                assert sorted(hosted.env._writers) == others
        finally:
            await cluster.stop()

    run(scenario())


def test_tcp_cluster_filters_duplicates():
    async def scenario():
        cluster = AsyncioCluster(make_node, n=4)
        await cluster.start()
        try:
            request = bus_request(1)
            for _ in range(3):  # bus redelivery of identical data
                for node in cluster.nodes().values():
                    node.inject_request(request)
            await _wait_until(
                lambda: all(n.requests_logged >= 1 for n in cluster.nodes().values())
            )
            await asyncio.sleep(0.3)
            for node in cluster.nodes().values():
                assert node.requests_logged == 1  # one payload, logged once
        finally:
            await cluster.stop()

    run(scenario())


def test_tcp_bad_frame_moves_aggregated_cluster_counter():
    """The cluster-level metrics fold surfaces transport-layer faults.

    Closes the ROADMAP gap "nothing aggregates the env counters": a bad
    frame observed by one node must show up in the single cluster-wide
    registry, alongside the BFT/layer counters, without per-env spelunking.
    """
    async def scenario():
        cluster = AsyncioCluster(make_node, n=4)
        await cluster.start()
        try:
            before = cluster.aggregate_metrics().counter_values()
            assert before.get("env.decode_errors", 0) == 0
            env1 = cluster.hosted["node-1"].env
            junk = b"\x00\x01\x02\x03"
            env1._writers["node-0"].write(len(junk).to_bytes(4, "big") + junk)
            cycles = 5
            await _drive(cluster, cycles)
            done = await _wait_until(
                lambda: all(n.requests_logged >= cycles for n in cluster.nodes().values())
            )
            assert done, "cluster stalled after an undecodable frame"
            after = cluster.aggregate_metrics().counter_values()
            assert after["env.decode_errors"] == 1
            assert after["env.oversize_frames"] == 0
            # The same registry carries the protocol-level counters.
            assert after["bft.decided"] >= cycles
            assert after["layer.logged"] >= cycles * 4
            assert after["env.messages_emitted"] > before.get("env.messages_emitted", 0)
        finally:
            await cluster.stop()

    run(scenario())
