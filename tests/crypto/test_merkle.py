"""Merkle tree and inclusion proof tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import MerkleTree, merkle_root, verify_merkle_proof
from repro.crypto.merkle import EMPTY_ROOT


def test_empty_tree_root():
    assert merkle_root([]) == EMPTY_ROOT


def test_single_leaf():
    tree = MerkleTree([b"event"])
    proof = tree.proof(0)
    assert verify_merkle_proof(b"event", proof, tree.root, 1)


def test_root_changes_with_any_leaf():
    leaves = [b"a", b"b", b"c"]
    base = merkle_root(leaves)
    assert merkle_root([b"a", b"b", b"x"]) != base
    assert merkle_root([b"x", b"b", b"c"]) != base


def test_order_matters():
    assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])


def test_leaf_node_domain_separation():
    # A tree over two leaves must not equal a leaf whose content is the
    # concatenation of their hashes (second-preimage resistance).
    inner = merkle_root([b"a", b"b"])
    assert merkle_root([inner]) != inner


def test_proof_out_of_range():
    tree = MerkleTree([b"a", b"b"])
    with pytest.raises(IndexError):
        tree.proof(2)


def test_wrong_leaf_fails_verification():
    tree = MerkleTree([b"a", b"b", b"c", b"d"])
    proof = tree.proof(2)
    assert verify_merkle_proof(b"c", proof, tree.root, 4)
    assert not verify_merkle_proof(b"x", proof, tree.root, 4)


def test_wrong_index_fails_verification():
    tree = MerkleTree([b"a", b"b", b"c", b"d"])
    proof = tree.proof(2)
    bad = type(proof)(index=1, siblings=proof.siblings)
    assert not verify_merkle_proof(b"c", bad, tree.root, 4)


@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=33))
def test_all_proofs_verify(leaves):
    tree = MerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        assert verify_merkle_proof(leaf, tree.proof(i), tree.root, len(leaves))


@given(st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=17))
def test_proofs_do_not_transfer_between_indices(leaves):
    tree = MerkleTree(leaves)
    proof0 = tree.proof(0)
    # Proof for index 0 must not validate leaf at index 1 (unless equal leaves).
    if leaves[0] != leaves[1]:
        assert not verify_merkle_proof(leaves[1], proof0, tree.root, len(leaves))
