"""RFC 8032 test vectors and behavioural tests for the Ed25519 implementation."""

import pytest

from repro.crypto import ed25519

# RFC 8032 §7.1 test vectors (secret key, public key, message, signature).
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


@pytest.mark.parametrize("secret_hex,public_hex,msg_hex,sig_hex", RFC8032_VECTORS)
def test_rfc8032_public_key_derivation(secret_hex, public_hex, msg_hex, sig_hex):
    assert ed25519.secret_to_public(bytes.fromhex(secret_hex)).hex() == public_hex


@pytest.mark.parametrize("secret_hex,public_hex,msg_hex,sig_hex", RFC8032_VECTORS)
def test_rfc8032_signature(secret_hex, public_hex, msg_hex, sig_hex):
    sig = ed25519.sign(bytes.fromhex(secret_hex), bytes.fromhex(msg_hex))
    assert sig.hex() == sig_hex


@pytest.mark.parametrize("secret_hex,public_hex,msg_hex,sig_hex", RFC8032_VECTORS)
def test_rfc8032_verify(secret_hex, public_hex, msg_hex, sig_hex):
    assert ed25519.verify(
        bytes.fromhex(public_hex), bytes.fromhex(msg_hex), bytes.fromhex(sig_hex)
    )


def test_tampered_message_rejected():
    secret = bytes(range(32))
    public = ed25519.secret_to_public(secret)
    sig = ed25519.sign(secret, b"juridical event")
    assert ed25519.verify(public, b"juridical event", sig)
    assert not ed25519.verify(public, b"juridical Event", sig)


def test_tampered_signature_rejected():
    secret = bytes(range(32))
    public = ed25519.secret_to_public(secret)
    sig = bytearray(ed25519.sign(secret, b"msg"))
    sig[0] ^= 0x01
    assert not ed25519.verify(public, b"msg", bytes(sig))


def test_wrong_key_rejected():
    sig = ed25519.sign(bytes(range(32)), b"msg")
    other_public = ed25519.secret_to_public(bytes(range(1, 33)))
    assert not ed25519.verify(other_public, b"msg", sig)


def test_malformed_inputs_fail_closed():
    assert not ed25519.verify(b"short", b"msg", b"\x00" * 64)
    public = ed25519.secret_to_public(bytes(range(32)))
    assert not ed25519.verify(public, b"msg", b"\x00" * 63)
    # s >= group order must be rejected (malleability check)
    sig = bytearray(ed25519.sign(bytes(range(32)), b"msg"))
    sig[32:] = (ed25519.L).to_bytes(32, "little")
    assert not ed25519.verify(public, b"msg", bytes(sig))
