"""End-to-end consensus with the real Ed25519 scheme.

The large simulations use the fast HMAC scheme; this test proves the whole
protocol stack also runs unchanged on the from-scratch RFC 8032 Ed25519
implementation (slow in pure Python, so the workload is minimal).
"""

from repro.bft import BftConfig, PbftReplica
from repro.bft.env import RecordingEnv
from repro.crypto import Ed25519Scheme, KeyStore
from repro.wire import Request, SignedRequest


def test_pbft_round_with_real_ed25519():
    scheme = Ed25519Scheme()
    ids = ["node-0", "node-1", "node-2", "node-3"]
    config = BftConfig(replica_ids=tuple(ids))
    keystore = KeyStore(scheme=scheme)
    keypairs = {}
    for node_id in ids:
        pair = scheme.derive_keypair(node_id.encode())
        keypairs[node_id] = pair
        keystore.register(node_id, pair.public)

    envs = {i: RecordingEnv(node_id=i) for i in ids}
    decided = {i: [] for i in ids}
    replicas = {
        i: PbftReplica(
            env=envs[i], config=config, keypair=keypairs[i], keystore=keystore,
            on_decide=lambda req, seq, i=i: decided[i].append((seq, req)),
        )
        for i in ids
    }

    request = Request(payload=b"ed25519 round", bus_cycle=1, recv_timestamp_us=1)
    signed = SignedRequest.create(request, "node-0", keypairs["node-0"])
    assert signed.verify(keystore)
    assert replicas["node-0"].propose(signed)

    # Pump until quiescent.
    for _ in range(20):
        deliveries = []
        for src, env in envs.items():
            deliveries += [(src, dst, m) for dst, m in env.sent]
            deliveries += [(src, dst, m) for m in env.broadcasts for dst in ids if dst != src]
            env.clear()
        if not deliveries:
            break
        for src, dst, message in deliveries:
            replicas[dst].on_message(src, message)

    for node_id in ids:
        assert decided[node_id] == [(1, signed)]
        assert replicas[node_id].stats.invalid_signatures == 0
