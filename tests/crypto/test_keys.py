"""Key pair, key store, and scheme interchangeability tests."""

import pytest

from repro.crypto import Ed25519Scheme, HmacScheme, KeyStore, default_scheme
from repro.util import CryptoError


@pytest.fixture(params=["hmac", "ed25519"])
def scheme(request):
    return HmacScheme() if request.param == "hmac" else Ed25519Scheme()


def test_derive_is_deterministic(scheme):
    a = scheme.derive_keypair(b"node-0")
    b = scheme.derive_keypair(b"node-0")
    assert a.secret == b.secret
    assert a.public == b.public


def test_sign_verify_roundtrip(scheme):
    pair = scheme.derive_keypair(b"node-0")
    sig = pair.sign(b"preprepare")
    assert len(sig) == 64
    assert pair.verify(b"preprepare", sig)
    assert not pair.verify(b"prepare", sig)


def test_cross_key_rejection(scheme):
    a = scheme.derive_keypair(b"node-0")
    b = scheme.derive_keypair(b"node-1")
    sig = a.sign(b"msg")
    assert not scheme.verify(b.public, b"msg", sig)


def test_keystore_verify(scheme):
    store = KeyStore(scheme=scheme)
    pair = scheme.derive_keypair(b"node-0")
    store.register("node-0", pair.public)
    assert store.verify("node-0", b"msg", pair.sign(b"msg"))
    assert not store.verify("node-0", b"msg", b"\x00" * 64)


def test_keystore_unknown_participant_fails_closed(scheme):
    store = KeyStore(scheme=scheme)
    pair = scheme.derive_keypair(b"node-0")
    assert not store.verify("ghost", b"msg", pair.sign(b"msg"))
    with pytest.raises(CryptoError):
        store.public_key("ghost")


def test_keystore_conflicting_registration_rejected(scheme):
    store = KeyStore(scheme=scheme)
    a = scheme.derive_keypair(b"node-0")
    b = scheme.derive_keypair(b"node-1")
    store.register("node-0", a.public)
    store.register("node-0", a.public)  # idempotent
    with pytest.raises(CryptoError):
        store.register("node-0", b.public)


def test_keystore_rejects_malformed_key(scheme):
    store = KeyStore(scheme=scheme)
    with pytest.raises(CryptoError):
        store.register("node-0", b"short")


def test_default_scheme_selector():
    assert default_scheme(fast=True).name == "hmac"
    assert default_scheme(fast=False).name == "ed25519"


def test_keystore_participants_sorted(scheme):
    store = KeyStore(scheme=scheme)
    for name in ("node-2", "node-0", "node-1"):
        store.register(name, scheme.derive_keypair(name.encode()).public)
    assert store.participants() == ["node-0", "node-1", "node-2"]
    assert store.known("node-1")
    assert not store.known("node-9")
