"""Domain-separated hashing tests."""

from repro.crypto import DOMAIN_BLOCK, DOMAIN_REQUEST, chain_hash, digest_hex, sha256


def test_deterministic():
    assert sha256(b"a", b"b") == sha256(b"a", b"b")


def test_domain_separation():
    assert sha256(b"x", domain=DOMAIN_BLOCK) != sha256(b"x", domain=DOMAIN_REQUEST)


def test_injective_part_boundaries():
    # Length prefixes must prevent concatenation collisions.
    assert sha256(b"ab", b"c") != sha256(b"a", b"bc")
    assert sha256(b"abc") != sha256(b"ab", b"c")


def test_digest_hex_matches_sha256():
    assert digest_hex(b"x") == sha256(b"x").hex()


def test_chain_hash_binds_every_field():
    base = chain_hash(b"\x00" * 32, b"\x11" * 32, 5, 1_000_000)
    assert chain_hash(b"\x01" * 32, b"\x11" * 32, 5, 1_000_000) != base
    assert chain_hash(b"\x00" * 32, b"\x22" * 32, 5, 1_000_000) != base
    assert chain_hash(b"\x00" * 32, b"\x11" * 32, 6, 1_000_000) != base
    assert chain_hash(b"\x00" * 32, b"\x11" * 32, 5, 1_000_001) != base
