"""JRU requirement checker tests."""

from repro.jru import check_requirements
from repro.scenarios.cluster import ScenarioResult


def make_result(**overrides):
    base = dict(
        system="zugchain",
        cycle_time_s=0.064,
        payload_bytes=1024,
        duration_s=60.0,
        mean_latency_s=0.013,
        p99_latency_s=0.015,
        max_latency_s=0.016,
        requests_logged=937,
        requests_expected=937,
        network_utilization=0.003,
        cpu_utilization=0.05,
        memory_mean_bytes=2.5e6,
        memory_peak_bytes=3.0e6,
        view_changes=0,
    )
    base.update(overrides)
    return ScenarioResult(**base)


def test_passing_run():
    report = check_requirements(make_result())
    assert report.all_passed
    assert len(report.checks) == 4
    assert all("PASS" in line for line in report.lines())


def test_event_rate_requirement():
    # 64 ms cycle = 15.6 events/s >= 10 required.
    report = check_requirements(make_result(cycle_time_s=0.064))
    rate = next(c for c in report.checks if c.name == "event rate")
    assert rate.passed
    # 200 ms cycle = 5 events/s < 10.
    report = check_requirements(make_result(cycle_time_s=0.200))
    rate = next(c for c in report.checks if c.name == "event rate")
    assert not rate.passed


def test_store_deadline_includes_persistence():
    report = check_requirements(make_result(max_latency_s=0.498))
    deadline = next(c for c in report.checks if c.name == "store deadline")
    assert not deadline.passed  # 498 ms + ~5 ms persist > 500 ms


def test_data_loss_detected():
    report = check_requirements(make_result(requests_logged=900, requests_expected=937))
    loss = next(c for c in report.checks if c.name == "no data loss")
    assert not loss.passed


def test_cpu_budget():
    report = check_requirements(make_result(cpu_utilization=0.20))
    cpu = next(c for c in report.checks if c.name == "shared CPU budget")
    assert not cpu.passed
    assert not report.all_passed
