"""Legacy centralized JRU model tests."""

import pytest

from repro.jru import LegacyJru, LegacyJruConfig
from repro.util import ConfigError, ProtocolError
from repro.wire import Request


def request(cycle):
    return Request(payload=b"e%d" % cycle, bus_cycle=cycle, recv_timestamp_us=cycle)


def test_records_and_extracts_in_order():
    jru = LegacyJru()
    for cycle in range(1, 6):
        jru.record(request(cycle))
    extracted = jru.extract("physical-key-1")
    assert [r.bus_cycle for r in extracted] == [1, 2, 3, 4, 5]


def test_ring_overwrites_oldest():
    jru = LegacyJru(LegacyJruConfig(ring_capacity=3))
    for cycle in range(1, 6):
        jru.record(request(cycle))
    extracted = jru.extract("physical-key-1")
    assert len(extracted) == 3
    assert {r.bus_cycle for r in extracted} == {3, 4, 5}
    assert jru.records_overwritten == 2


def test_extraction_requires_physical_key():
    jru = LegacyJru()
    jru.record(request(1))
    with pytest.raises(ProtocolError):
        jru.extract("wrong-key")


def test_destroyed_device_loses_everything():
    # The single-point-of-failure property ZugChain eliminates.
    jru = LegacyJru()
    for cycle in range(1, 10):
        jru.record(request(cycle))
    jru.destroy()
    assert jru.extract("physical-key-1") == []
    jru.record(request(99))  # recording after destruction is silently lost
    assert jru.extract("physical-key-1") == []


def test_tampering_is_undetectable():
    # Contrast with the blockchain: the legacy device's checksums are
    # recomputable by anyone with physical access.
    jru = LegacyJru()
    for cycle in range(1, 4):
        jru.record(request(cycle))
    jru.tamper(1, request(777))
    extracted = jru.extract("physical-key-1")
    assert [r.bus_cycle for r in extracted] == [1, 777, 3]  # forged entry passes


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigError):
        LegacyJru(LegacyJruConfig(ring_capacity=0))
