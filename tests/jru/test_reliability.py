"""Reliability analysis tests (Braband-style)."""

import pytest
from hypothesis import given, strategies as st

from repro.jru import (
    data_loss_probability,
    mtbf_availability,
    required_nodes_for_target,
    survival_probability,
)
from repro.jru.reliability import group_availability
from repro.util import ConfigError


def test_single_node_survival():
    assert survival_probability([0.2]) == pytest.approx(0.8)


def test_independent_nodes_multiply():
    # P(no survivor) = 0.2^3
    assert data_loss_probability(0.2, 3) == pytest.approx(0.2**3)


def test_more_nodes_lower_loss():
    losses = [data_loss_probability(0.3, n) for n in (1, 2, 4, 8)]
    assert losses == sorted(losses, reverse=True)


def test_min_survivors_two():
    # With p_destroy=0.5 and n=2: P(both survive) = 0.25.
    assert survival_probability([0.5, 0.5], min_survivors=2) == pytest.approx(0.25)


def test_common_cause_floor():
    # Even many nodes cannot beat the common-cause event probability.
    loss = data_loss_probability(0.01, 16, correlation=0.001)
    assert loss >= 0.001


def test_heterogeneous_probabilities():
    # A node in the locomotive (high exposure) plus two in the rear.
    p = survival_probability([0.9, 0.1, 0.1])
    assert p == pytest.approx(1 - 0.9 * 0.1 * 0.1)


def test_required_nodes_for_target():
    # Per-node destruction 10%, target loss 1e-4 -> need 4 nodes (0.1^4).
    assert required_nodes_for_target(0.1, 1e-4) == 4
    assert required_nodes_for_target(0.1, 1e-3) == 3


def test_unreachable_target_returns_none():
    assert required_nodes_for_target(0.1, 1e-9, correlation=0.01) is None


def test_mtbf_availability():
    # 20,000 h MTBF (Braband's commodity assumption), 24 h repair.
    a = mtbf_availability(20_000, 24)
    assert 0.998 < a < 1.0


def test_group_availability_quorum():
    # 4 nodes, quorum 3 (2f+1 with f=1).
    a = group_availability(0.999, 4, 3)
    assert a > 0.99999
    assert group_availability(0.999, 4, 3) > group_availability(0.999, 4, 4)


def test_validation_errors():
    with pytest.raises(ConfigError):
        survival_probability([])
    with pytest.raises(ConfigError):
        survival_probability([1.5])
    with pytest.raises(ConfigError):
        survival_probability([0.1], min_survivors=2)
    with pytest.raises(ConfigError):
        survival_probability([0.1], correlation=1.0)
    with pytest.raises(ConfigError):
        required_nodes_for_target(0.1, 0.0)
    with pytest.raises(ConfigError):
        mtbf_availability(0, 1)
    with pytest.raises(ConfigError):
        group_availability(0.5, 4, 5)


@given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=12))
def test_loss_plus_survival_is_one(p, n):
    loss = data_loss_probability(p, n)
    survive = survival_probability([p] * n)
    assert loss + survive == pytest.approx(1.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=8),
)
def test_survival_monotone_in_min_survivors(probs):
    one = survival_probability(probs, min_survivors=1)
    two = survival_probability(probs, min_survivors=2)
    assert one >= two
