"""PBFT normal-case ordering tests."""

import pytest

from repro.bft import BftConfig, Commit, Prepare, PrePrepare
from repro.util import ConfigError

from tests.bft.harness import BftCluster


def test_config_validations():
    # n=3 derives f=0, which is valid; duplicate ids are not:
    with pytest.raises(ConfigError):
        BftConfig(replica_ids=("a", "a", "b", "c"))
    with pytest.raises(ConfigError):
        BftConfig(replica_ids=("a", "b", "c", "d"), f=2)
    with pytest.raises(ConfigError):
        BftConfig(replica_ids=("a", "b", "c", "d"), checkpoint_interval=0)


def test_config_quorums():
    config = BftConfig(replica_ids=("a", "b", "c", "d"))
    assert config.f == 1
    assert config.quorum == 3
    assert config.prepared_quorum == 2
    assert config.primary_of_view(0) == "a"
    assert config.primary_of_view(5) == "b"


def test_single_request_decided_on_all_replicas():
    cluster = BftCluster()
    request = cluster.signed_request(1)
    assert cluster.replicas["node-0"].propose(request)
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.decided[node_id] == [(1, request)]


def test_backup_cannot_propose():
    cluster = BftCluster()
    assert not cluster.replicas["node-1"].propose(cluster.signed_request(1))


def test_sequence_numbers_are_consecutive():
    cluster = BftCluster()
    for cycle in range(1, 6):
        cluster.replicas["node-0"].propose(cluster.signed_request(cycle))
    cluster.pump()
    for node_id in cluster.ids:
        assert [seq for seq, _ in cluster.decided[node_id]] == [1, 2, 3, 4, 5]
    assert cluster.all_decided_consistent()


def test_decisions_survive_one_crashed_backup():
    cluster = BftCluster()
    cluster.delivery_filter = lambda s, d, m: "node-3" not in (s, d)
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    for node_id in ("node-0", "node-1", "node-2"):
        assert len(cluster.decided[node_id]) == 1
    assert cluster.decided["node-3"] == []


def test_no_decision_without_quorum():
    # Two of four replicas unreachable: 2f+1 = 3 commits cannot assemble.
    cluster = BftCluster()
    cluster.delivery_filter = lambda s, d, m: s in ("node-0", "node-1") and d in ("node-0", "node-1")
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.decided[node_id] == []


def test_bad_preprepare_signature_dropped():
    cluster = BftCluster()
    request = cluster.signed_request(1)
    forged = PrePrepare(view=0, seq=1, request=request, primary_id="node-0",
                        signature=b"\x00" * 64)
    cluster.replicas["node-1"].on_message("node-0", forged)
    cluster.pump()
    assert cluster.decided["node-1"] == []
    assert cluster.replicas["node-1"].stats.invalid_signatures == 1


def test_preprepare_from_non_primary_dropped():
    cluster = BftCluster()
    request = cluster.signed_request(1, node_id="node-1")
    forged = PrePrepare(view=0, seq=1, request=request, primary_id="node-1")
    forged = forged.signed(cluster.keypairs["node-1"])
    cluster.replicas["node-2"].on_message("node-1", forged)
    cluster.pump()
    assert cluster.decided["node-2"] == []
    assert cluster.replicas["node-2"].stats.stale_messages >= 1


def test_wrong_view_messages_dropped():
    cluster = BftCluster()
    request = cluster.signed_request(1)
    stale = PrePrepare(view=7, seq=1, request=request, primary_id="node-0")
    stale = stale.signed(cluster.keypairs["node-0"])
    cluster.replicas["node-1"].on_message("node-0", stale)
    assert cluster.decided["node-1"] == []


def test_out_of_watermark_seq_dropped():
    cluster = BftCluster(watermark_window=5)
    request = cluster.signed_request(1)
    beyond = PrePrepare(view=0, seq=99, request=request, primary_id="node-0")
    beyond = beyond.signed(cluster.keypairs["node-0"])
    cluster.replicas["node-1"].on_message("node-0", beyond)
    assert cluster.replicas["node-1"].stats.stale_messages == 1


def test_watermark_window_limits_primary():
    cluster = BftCluster(watermark_window=3)
    # Without checkpoints, only `window` proposals may be outstanding.
    results = [cluster.replicas["node-0"].propose(cluster.signed_request(c))
               for c in range(1, 6)]
    assert results == [True, True, True, False, False]


def test_execution_strictly_in_order():
    # Drive a single replica with commit quorums arriving for seq 2 first.
    cluster = BftCluster()
    replica = cluster.replicas["node-3"]
    reqs = {seq: cluster.signed_request(seq) for seq in (1, 2)}
    for seq in (2, 1):  # deliver seq 2's ordering traffic first
        preprepare = PrePrepare(view=0, seq=seq, request=reqs[seq], primary_id="node-0")
        replica.on_message("node-0", preprepare.signed(cluster.keypairs["node-0"]))
        for peer in ("node-1", "node-2"):
            prepare = Prepare(view=0, seq=seq, digest=reqs[seq].digest, replica_id=peer)
            replica.on_message(peer, prepare.signed(cluster.keypairs[peer]))
        for peer in ("node-0", "node-1"):
            commit = Commit(view=0, seq=seq, digest=reqs[seq].digest, replica_id=peer)
            replica.on_message(peer, commit.signed(cluster.keypairs[peer]))
    assert [seq for seq, _ in cluster.decided["node-3"]] == [1, 2]


def test_duplicate_votes_counted_once():
    cluster = BftCluster()
    replica = cluster.replicas["node-3"]
    request = cluster.signed_request(1)
    preprepare = PrePrepare(view=0, seq=1, request=request, primary_id="node-0")
    replica.on_message("node-0", preprepare.signed(cluster.keypairs["node-0"]))
    # The same prepare from node-1, replayed many times, is one vote.
    prepare = Prepare(view=0, seq=1, digest=request.digest, replica_id="node-1")
    signed_prepare = prepare.signed(cluster.keypairs["node-1"])
    for _ in range(5):
        replica.on_message("node-1", signed_prepare)
    assert cluster.decided["node-3"] == []


def test_log_size_grows_and_shrinks_with_gc():
    cluster = BftCluster(checkpoint_interval=2)
    for cycle in (1, 2):
        cluster.replicas["node-0"].propose(cluster.signed_request(cycle))
    cluster.pump()
    replica = cluster.replicas["node-1"]
    grown = replica.log_size_bytes()
    assert grown > 0
    # Application creates the block checkpoint at seq 2 on every replica.
    digest = b"\x11" * 32
    for node_id in cluster.ids:
        cluster.replicas[node_id].record_checkpoint(2, 1, b"\x22" * 32, digest)
    cluster.pump()
    assert replica.last_stable_seq == 2
    assert replica.log_size_bytes() < grown
