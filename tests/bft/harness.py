"""Synchronous test harness for driving PBFT replicas without the simulator.

Creates ``n`` replicas on :class:`RecordingEnv`s and pumps messages between
them until quiescence.  A delivery filter lets tests drop or reroute
messages (partitions, censoring primaries).  Timers are fired manually.
"""

from __future__ import annotations

from typing import Callable

from repro.bft import BftConfig, PbftReplica
from repro.bft.env import RecordingEnv
from repro.crypto import HmacScheme, KeyStore
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()


class BftCluster:
    def __init__(self, n: int = 4, **config_kwargs) -> None:
        self.ids = [f"node-{i}" for i in range(n)]
        self.config = BftConfig(replica_ids=tuple(self.ids), **config_kwargs)
        self.keystore = KeyStore(scheme=SCHEME)
        self.keypairs = {}
        for node_id in self.ids:
            pair = SCHEME.derive_keypair(node_id.encode())
            self.keypairs[node_id] = pair
            self.keystore.register(node_id, pair.public)

        self.envs: dict[str, RecordingEnv] = {}
        self.replicas: dict[str, PbftReplica] = {}
        self.decided: dict[str, list[tuple[int, SignedRequest]]] = {i: [] for i in self.ids}
        self.new_primaries: dict[str, list[str]] = {i: [] for i in self.ids}
        self.stable_checkpoints: dict[str, list] = {i: [] for i in self.ids}
        # (src, dst, message) -> bool; False drops the message.
        self.delivery_filter: Callable[[str, str, object], bool] = lambda s, d, m: True

        for node_id in self.ids:
            env = RecordingEnv(node_id=node_id)
            self.envs[node_id] = env
            self.replicas[node_id] = PbftReplica(
                env=env,
                config=self.config,
                keypair=self.keypairs[node_id],
                keystore=self.keystore,
                on_decide=self._decide_recorder(node_id),
                on_new_primary=self._primary_recorder(node_id),
                on_stable_checkpoint=self._checkpoint_recorder(node_id),
            )

    def _decide_recorder(self, node_id):
        def record(request, seq):
            self.decided[node_id].append((seq, request))
        return record

    def _primary_recorder(self, node_id):
        def record(pid):
            self.new_primaries[node_id].append(pid)
        return record

    def _checkpoint_recorder(self, node_id):
        def record(cert):
            self.stable_checkpoints[node_id].append(cert)
        return record

    # -- driving -----------------------------------------------------------------

    def signed_request(self, cycle: int, node_id: str = "node-0", payload: bytes = b"signals"):
        request = Request(payload=payload, bus_cycle=cycle, recv_timestamp_us=cycle * 64000)
        return SignedRequest.create(request, node_id, self.keypairs[node_id])

    def pump(self, max_rounds: int = 100) -> int:
        """Deliver queued messages until no replica emits anything new."""
        rounds = 0
        for _ in range(max_rounds):
            deliveries = []
            for src, env in self.envs.items():
                for dst, message in env.sent:
                    deliveries.append((src, dst, message))
                for message in env.broadcasts:
                    for dst in self.ids:
                        if dst != src:
                            deliveries.append((src, dst, message))
                env.clear()
            if not deliveries:
                return rounds
            rounds += 1
            for src, dst, message in deliveries:
                if self.delivery_filter(src, dst, message):
                    self.replicas[dst].on_message(src, message)
        return rounds

    def all_decided_consistent(self) -> bool:
        """Every replica decided the same (seq -> digest) mapping prefix."""
        maps = []
        for node_id in self.ids:
            maps.append({seq: req.digest for seq, req in self.decided[node_id]})
        common = set.intersection(*(set(m) for m in maps)) if maps else set()
        return all(
            len({m[seq] for m in maps}) == 1 for seq in common
        )
