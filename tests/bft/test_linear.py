"""LinearBFT backend tests (normal case, certificates, view change)."""

import pytest

from repro.bft import BftConfig
from repro.bft.env import RecordingEnv
from repro.bft.linear import CommitCert, LinearBftReplica, Vote
from repro.bft.messages import PrePrepare
from repro.crypto import HmacScheme, KeyStore
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()


class LinearCluster:
    """Message-pump harness mirroring tests/bft/harness.BftCluster."""

    def __init__(self, n=4, **config_kwargs):
        self.ids = [f"node-{i}" for i in range(n)]
        self.config = BftConfig(replica_ids=tuple(self.ids), **config_kwargs)
        self.keystore = KeyStore(scheme=SCHEME)
        self.keypairs = {}
        for node_id in self.ids:
            pair = SCHEME.derive_keypair(node_id.encode())
            self.keypairs[node_id] = pair
            self.keystore.register(node_id, pair.public)
        self.envs = {}
        self.replicas = {}
        self.decided = {i: [] for i in self.ids}
        self.delivery_filter = lambda s, d, m: True
        for node_id in self.ids:
            env = RecordingEnv(node_id=node_id)
            self.envs[node_id] = env
            self.replicas[node_id] = LinearBftReplica(
                env=env,
                config=self.config,
                keypair=self.keypairs[node_id],
                keystore=self.keystore,
                on_decide=lambda req, seq, node_id=node_id: self.decided[node_id].append((seq, req)),
            )

    def signed_request(self, cycle, node_id="node-0"):
        request = Request(payload=b"p%d" % cycle, bus_cycle=cycle,
                          recv_timestamp_us=cycle * 64000)
        return SignedRequest.create(request, node_id, self.keypairs[node_id])

    def pump(self, max_rounds=100):
        for _ in range(max_rounds):
            deliveries = []
            for src, env in self.envs.items():
                for dst, message in env.sent:
                    deliveries.append((src, dst, message))
                for message in env.broadcasts:
                    for dst in self.ids:
                        if dst != src:
                            deliveries.append((src, dst, message))
                env.clear()
            if not deliveries:
                return
            for src, dst, message in deliveries:
                if self.delivery_filter(src, dst, message):
                    self.replicas[dst].on_message(src, message)


def test_single_request_decided_on_all():
    cluster = LinearCluster()
    request = cluster.signed_request(1)
    assert cluster.replicas["node-0"].propose(request)
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.decided[node_id] == [(1, request)]


def test_votes_go_only_to_primary():
    cluster = LinearCluster()
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    # Deliver the preprepare broadcast by hand, then inspect backup output:
    # votes are unicast to the primary, never broadcast (O(n) messages).
    preprepare = cluster.envs["node-0"].broadcasts_of_type(PrePrepare)[0]
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].on_message("node-0", preprepare)
        votes = cluster.envs[node_id].sent_of_type(Vote)
        assert len(votes) == 1
        assert votes[0][0] == "node-0"
        assert cluster.envs[node_id].broadcasts_of_type(Vote) == []


def test_sequence_order_and_consistency():
    cluster = LinearCluster()
    for cycle in range(1, 6):
        cluster.replicas["node-0"].propose(cluster.signed_request(cycle))
    cluster.pump()
    for node_id in cluster.ids:
        assert [seq for seq, _ in cluster.decided[node_id]] == [1, 2, 3, 4, 5]
    digests = {tuple(req.digest for _, req in cluster.decided[i]) for i in cluster.ids}
    assert len(digests) == 1


def test_progress_with_one_crashed_backup():
    cluster = LinearCluster()
    cluster.delivery_filter = lambda s, d, m: "node-3" not in (s, d)
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    for node_id in ("node-0", "node-1", "node-2"):
        assert len(cluster.decided[node_id]) == 1


def test_no_progress_without_quorum():
    cluster = LinearCluster()
    cluster.delivery_filter = lambda s, d, m: s in ("node-0", "node-1") and d in ("node-0", "node-1")
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.decided[node_id] == []


def test_forged_commit_cert_rejected():
    cluster = LinearCluster()
    request = cluster.signed_request(1)
    replica = cluster.replicas["node-1"]
    preprepare = PrePrepare(view=0, seq=1, request=request, primary_id="node-0")
    replica.on_message("node-0", preprepare.signed(cluster.keypairs["node-0"]))
    # Certificate with too few / invalid votes must not certify.
    bad_vote = Vote(view=0, seq=1, digest=request.digest, replica_id="node-2")
    forged = CommitCert(view=0, seq=1, digest=request.digest, votes=(bad_vote,))
    replica.on_message("node-0", forged)
    assert cluster.decided["node-1"] == []
    assert replica.stats.invalid_signatures == 1


def test_conflicting_preprepare_triggers_suspicion():
    cluster = LinearCluster()
    replica = cluster.replicas["node-1"]
    a = PrePrepare(view=0, seq=1, request=cluster.signed_request(1),
                   primary_id="node-0").signed(cluster.keypairs["node-0"])
    b = PrePrepare(view=0, seq=1, request=cluster.signed_request(2),
                   primary_id="node-0").signed(cluster.keypairs["node-0"])
    replica.on_message("node-0", a)
    replica.on_message("node-0", b)
    assert replica.stats.conflicting_preprepares == 1
    assert replica.in_view_change


def test_view_change_elects_new_primary():
    cluster = LinearCluster()
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].suspect()
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.replicas[node_id].view == 1
        assert cluster.replicas[node_id].primary_id == "node-1"
    # Ordering works in the new view.
    assert cluster.replicas["node-1"].propose(cluster.signed_request(9, "node-1"))
    cluster.pump()
    assert all(len(cluster.decided[i]) == 1 for i in cluster.ids)


def test_certified_request_survives_view_change():
    cluster = LinearCluster()
    request = cluster.signed_request(1)
    # Block commit certificates: requests get certified on the primary only.
    cluster.delivery_filter = lambda s, d, m: not isinstance(m, CommitCert)
    cluster.replicas["node-0"].propose(request)
    cluster.pump()
    assert all(cluster.decided[i] == [] for i in ("node-1", "node-2", "node-3"))
    cluster.delivery_filter = lambda s, d, m: True
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].suspect()
    cluster.pump()
    for node_id in ("node-1", "node-2", "node-3"):
        assert [req.digest for _, req in cluster.decided[node_id]] == [request.digest]


def test_checkpoint_garbage_collection():
    cluster = LinearCluster(checkpoint_interval=1)
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    for node_id in cluster.ids:
        cluster.replicas[node_id].record_checkpoint(1, 1, b"\x22" * 32, b"\x11" * 32)
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.replicas[node_id].last_stable_seq == 1
        cert = cluster.replicas[node_id].latest_stable_checkpoint()
        assert cert is not None and cert.verify(cluster.keystore, cluster.config)


def test_commit_cert_roundtrip():
    cluster = LinearCluster()
    request = cluster.signed_request(1)
    votes = tuple(
        Vote(view=0, seq=1, digest=request.digest,
             replica_id=i).signed(cluster.keypairs[i])
        for i in ("node-0", "node-1", "node-2")
    )
    cert = CommitCert(view=0, seq=1, digest=request.digest, votes=votes)
    decoded = CommitCert.decode(cert.encode())
    assert decoded == cert
    assert decoded.verify(cluster.keystore, cluster.config)
