"""Execution gap fill: DecideFetch/DecideProof repair and view-change nulls.

Message loss can leave a replica with decided instances *above* a hole it
never learned about (``_pending_exec`` grows, ``_next_exec`` stalls).  The
repair protocol: a stall timer sends a signed ``DecideFetch`` to one peer;
the peer answers with ``DecideProof``s — preprepare plus 2f+1 commits —
which are safe to execute in any view.  Holes that *nobody* can prove are
plugged by the next view change with null requests.
"""

from repro.bft.messages import Commit, DecideFetch, DecideProof, PrePrepare
from repro.wire.messages import is_null_request, null_request

from tests.bft.harness import BftCluster


def isolate_then_heal(cluster, victim="node-3", cycles=(1, 2, 3)):
    """Decide some seqs while ``victim`` is cut off, then reconnect it."""
    cluster.delivery_filter = lambda s, d, m: victim not in (s, d)
    for cycle in cycles:
        cluster.replicas["node-0"].propose(cluster.signed_request(cycle))
    cluster.pump()
    cluster.delivery_filter = lambda s, d, m: True


def test_stalled_replica_sends_decide_fetch():
    cluster = BftCluster()
    isolate_then_heal(cluster)
    # The victim now receives one more instance: seq 4 decides, but seqs
    # 1-3 are a hole — execution cannot advance, the gap timer arms.
    cluster.replicas["node-0"].propose(cluster.signed_request(4))
    cluster.pump()
    victim = cluster.replicas["node-3"]
    assert cluster.decided["node-3"] == []
    assert victim._pending_exec
    env = cluster.envs["node-3"]
    env.clear()
    env.fire_next_timer()  # the gap timer
    fetches = env.sent_of_type(DecideFetch)
    assert len(fetches) == 1
    _, fetch = fetches[0]
    assert fetch.first_seq == 1
    assert fetch.last_seq == 4
    assert fetch.verify(cluster.keystore)
    assert victim.stats.gap_fetches_sent == 1


def test_decide_proofs_fill_the_gap_and_execution_resumes():
    cluster = BftCluster()
    isolate_then_heal(cluster)
    cluster.replicas["node-0"].propose(cluster.signed_request(4))
    cluster.pump()
    env = cluster.envs["node-3"]
    env.clear()
    env.fire_next_timer()
    (peer_id, fetch), = env.sent_of_type(DecideFetch)

    peer_env = cluster.envs[peer_id]
    peer_env.clear()
    cluster.replicas[peer_id].on_message("node-3", fetch)
    proofs = peer_env.sent_of_type(DecideProof)
    assert len(proofs) == 4  # seqs 1..4, all committed at the peer
    assert cluster.replicas[peer_id].stats.gap_proofs_served == 4

    victim = cluster.replicas["node-3"]
    for dst, proof in proofs:
        assert dst == "node-3"
        victim.on_message(peer_id, proof)
    assert victim.stats.gap_seqs_filled >= 3
    assert [seq for seq, _ in cluster.decided["node-3"]] == [1, 2, 3, 4]
    assert cluster.all_decided_consistent()
    # The stall is resolved: the gap timer is disarmed.
    assert victim._gap_timer is None or not victim._gap_timer.active


def test_forged_proof_rejected():
    cluster = BftCluster()
    isolate_then_heal(cluster, cycles=(1,))
    cluster.replicas["node-0"].propose(cluster.signed_request(2))
    cluster.pump()
    victim = cluster.replicas["node-3"]
    peer = cluster.replicas["node-0"]
    instance = peer._instances[1]
    # Quorum of commits but for a request the preprepare does not carry.
    wrong = cluster.signed_request(99, payload=b"forged")
    forged_pp = PrePrepare(view=0, seq=1, request=wrong,
                           primary_id="node-0").signed(cluster.keypairs["node-0"])
    proof = DecideProof(
        replica_id="node-0", preprepare=forged_pp,
        commits=tuple(instance.commits.values()),
    ).signed(cluster.keypairs["node-0"])
    before = dict(victim._pending_exec)
    victim.on_message("node-0", proof)
    # Commit digests do not match the forged preprepare: nothing executes.
    assert victim._pending_exec == before
    assert cluster.decided["node-3"] == []


def test_underquorum_proof_rejected():
    cluster = BftCluster()
    isolate_then_heal(cluster, cycles=(1,))
    cluster.replicas["node-0"].propose(cluster.signed_request(2))
    cluster.pump()
    victim = cluster.replicas["node-3"]
    peer = cluster.replicas["node-0"]
    instance = peer._instances[1]
    commits = tuple(instance.commits.values())[:2]  # quorum is 3
    proof = DecideProof(
        replica_id="node-0", preprepare=instance.preprepare, commits=commits,
    ).signed(cluster.keypairs["node-0"])
    victim.on_message("node-0", proof)
    assert cluster.decided["node-3"] == []


def test_null_request_round_trip_and_digest_uniqueness():
    a, b = null_request(3), null_request(4)
    assert is_null_request(a) and is_null_request(b)
    assert a.digest != b.digest  # the seq is folded into the digest
    assert not is_null_request(
        BftCluster().signed_request(1).request
    )
