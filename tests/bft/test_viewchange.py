"""PBFT view change and checkpoint subprotocol tests."""

import pytest

from repro.bft import Checkpoint, CheckpointCertificate, ViewChange

from tests.bft.harness import BftCluster


def test_suspect_quorum_changes_view():
    cluster = BftCluster()
    # All three backups suspect a censoring primary.
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].suspect()
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.replicas[node_id].view == 1
        assert cluster.replicas[node_id].primary_id == "node-1"
    # Every replica got the NEWPRIMARY upcall.
    for node_id in cluster.ids:
        assert cluster.new_primaries[node_id][-1] == "node-1"


def test_single_faulty_suspicion_does_not_change_view():
    # Fault case (v) of §III-C: one faulty node suspecting the primary is
    # harmless — view changes need f+1 votes before correct nodes join.
    cluster = BftCluster()
    cluster.replicas["node-3"].suspect()
    cluster.pump()
    for node_id in ("node-0", "node-1", "node-2"):
        assert cluster.replicas[node_id].view == 0
    # And ordering still works in view 0.
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    assert len(cluster.decided["node-0"]) == 1


def test_fplus1_join_rule():
    cluster = BftCluster()
    # Two (= f+1) backups suspect; the third must join and the change completes.
    cluster.replicas["node-1"].suspect()
    cluster.replicas["node-2"].suspect()
    cluster.pump()
    assert all(cluster.replicas[i].view == 1 for i in cluster.ids)


def test_prepared_request_survives_view_change():
    cluster = BftCluster()
    request = cluster.signed_request(1)
    # Deliver the full prepare phase but block all commits, so the request is
    # prepared-but-not-committed when the view changes.
    cluster.delivery_filter = (
        lambda s, d, m: m.__class__.__name__ != "Commit"
    )
    cluster.replicas["node-0"].propose(request)
    cluster.pump()
    assert all(cluster.decided[i] == [] for i in cluster.ids)
    cluster.delivery_filter = lambda s, d, m: True
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].suspect()
    cluster.pump()
    # The new primary re-proposed the prepared request; it decides in view 1.
    for node_id in cluster.ids:
        assert [req.digest for _, req in cluster.decided[node_id]] == [request.digest]


def test_ordering_works_after_view_change():
    cluster = BftCluster()
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].suspect()
    cluster.pump()
    request = cluster.signed_request(5, node_id="node-1")
    assert cluster.replicas["node-1"].propose(request)
    cluster.pump()
    for node_id in cluster.ids:
        assert len(cluster.decided[node_id]) == 1


def test_view_change_timer_escalates():
    cluster = BftCluster()
    # Only node-1 and node-2 receive each other; the change to view 1 stalls.
    cluster.delivery_filter = lambda s, d, m: False
    cluster.replicas["node-1"].suspect()
    cluster.pump()
    env = cluster.envs["node-1"]
    assert env.active_timers()
    env.fire_next_timer()
    cluster.pump()
    # Escalated: node-1 has now voted for view 2 as well.
    votes = cluster.replicas["node-1"]._view_changes
    assert 2 in votes and "node-1" in votes[2]


def test_bad_view_change_signature_ignored():
    cluster = BftCluster()
    forged = ViewChange(new_view=1, last_stable_seq=0,
                        stable_checkpoint_digest=b"\x00" * 32,
                        prepared=(), replica_id="node-2", signature=b"\x00" * 64)
    cluster.replicas["node-1"].on_message("node-2", forged)
    assert cluster.replicas["node-1"].stats.invalid_signatures == 1


def test_checkpoint_certificate_verification():
    cluster = BftCluster()
    block_hash, digest = b"\x22" * 32, b"\x11" * 32
    checkpoints = []
    for node_id in ("node-0", "node-1", "node-2"):
        cp = Checkpoint(seq=10, block_height=1, block_hash=block_hash,
                        state_digest=digest, replica_id=node_id)
        checkpoints.append(cp.signed(cluster.keypairs[node_id]))
    cert = CheckpointCertificate(seq=10, block_height=1, block_hash=block_hash,
                                 state_digest=digest, signatures=tuple(checkpoints))
    assert cert.verify(cluster.keystore, cluster.config)


def test_checkpoint_certificate_insufficient_quorum():
    cluster = BftCluster()
    block_hash, digest = b"\x22" * 32, b"\x11" * 32
    checkpoints = tuple(
        Checkpoint(seq=10, block_height=1, block_hash=block_hash,
                   state_digest=digest, replica_id=node_id).signed(cluster.keypairs[node_id])
        for node_id in ("node-0", "node-1")
    )
    cert = CheckpointCertificate(seq=10, block_height=1, block_hash=block_hash,
                                 state_digest=digest, signatures=checkpoints)
    assert not cert.verify(cluster.keystore, cluster.config)


def test_checkpoint_certificate_mismatched_member_rejected():
    cluster = BftCluster()
    block_hash, digest = b"\x22" * 32, b"\x11" * 32
    good = [
        Checkpoint(seq=10, block_height=1, block_hash=block_hash,
                   state_digest=digest, replica_id=node_id).signed(cluster.keypairs[node_id])
        for node_id in ("node-0", "node-1")
    ]
    outsider_pair = cluster.keypairs["node-0"]
    outsider = Checkpoint(seq=10, block_height=1, block_hash=block_hash,
                          state_digest=digest, replica_id="intruder").signed(outsider_pair)
    cert = CheckpointCertificate(seq=10, block_height=1, block_hash=block_hash,
                                 state_digest=digest,
                                 signatures=tuple(good + [outsider]))
    assert not cert.verify(cluster.keystore, cluster.config)


def test_checkpoint_certificate_roundtrip():
    cluster = BftCluster()
    block_hash, digest = b"\x22" * 32, b"\x11" * 32
    checkpoints = tuple(
        Checkpoint(seq=10, block_height=1, block_hash=block_hash,
                   state_digest=digest, replica_id=node_id).signed(cluster.keypairs[node_id])
        for node_id in ("node-0", "node-1", "node-2")
    )
    cert = CheckpointCertificate(seq=10, block_height=1, block_hash=block_hash,
                                 state_digest=digest, signatures=checkpoints)
    decoded = CheckpointCertificate.decode(cert.encode())
    assert decoded == cert
    assert decoded.verify(cluster.keystore, cluster.config)


def test_stable_checkpoint_advances_watermark_and_fires_upcall():
    cluster = BftCluster(checkpoint_interval=1)
    cluster.replicas["node-0"].propose(cluster.signed_request(1))
    cluster.pump()
    digest = b"\x33" * 32
    for node_id in cluster.ids:
        cluster.replicas[node_id].record_checkpoint(1, 1, b"\x44" * 32, digest)
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.replicas[node_id].last_stable_seq == 1
        assert len(cluster.stable_checkpoints[node_id]) == 1
        cert = cluster.stable_checkpoints[node_id][0]
        assert cert.verify(cluster.keystore, cluster.config)


def test_divergent_checkpoint_digests_do_not_stabilize():
    cluster = BftCluster()
    # Nodes disagree on state: no 2f+1 matching digests, nothing stabilizes.
    for index, node_id in enumerate(cluster.ids):
        digest = bytes([index]) * 32
        cluster.replicas[node_id].record_checkpoint(1, 1, b"\x44" * 32, digest)
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.replicas[node_id].last_stable_seq == 0


def test_lone_suspecter_abandons_on_stable_checkpoint():
    # A minority suspecter must not stay wedged: once 2f+1 peers sign a
    # checkpoint past its suspicion point, it abandons the view change and
    # resumes ordering in the view it never managed to leave.
    from repro.obs.trace import RecordingTracer

    cluster = BftCluster()
    victim = cluster.replicas["node-3"]
    tracer = RecordingTracer()
    victim.tracer = tracer
    victim.suspect()
    cluster.pump()
    assert victim.in_view_change
    assert victim.view == 0

    block_hash, digest = b"\x44" * 32, b"\x55" * 32
    for peer in ("node-0", "node-1", "node-2"):
        checkpoint = Checkpoint(seq=10, block_height=1, block_hash=block_hash,
                                state_digest=digest,
                                replica_id=peer).signed(cluster.keypairs[peer])
        victim.on_message(peer, checkpoint)

    assert not victim.in_view_change
    assert victim.stats.view_changes_abandoned == 1
    assert victim._vc_timer is None
    ends = [e for e in tracer.iter_events() if e.name == "bft.viewchange.end"]
    assert len(ends) == 1
    fields = dict(ends[0].fields)
    assert fields["abandoned"] is True
    assert fields["view"] == 0
    # The pairing oracle sees a closed stall, not a permanent one.
    from repro.obs.spans import pair_view_changes
    stalls = pair_view_changes(list(tracer.iter_events()))
    assert len(stalls) == 1 and stalls[0].ended_at is not None


def test_view_change_plugs_unprepared_holes_with_nulls():
    # Classic PBFT gap rule: a seq nobody prepared is filled with a null
    # request so later instances keep their sequence numbers.
    from repro.bft import PrePrepare
    from repro.wire.messages import is_null_request

    cluster = BftCluster()
    # Drop the view-0 preprepare for seq 2 to every backup: seq 2 never
    # prepares anywhere, seqs 1 and 3 decide normally but execution stalls.
    cluster.delivery_filter = (
        lambda s, d, m: not (isinstance(m, PrePrepare) and m.seq == 2 and m.view == 0)
    )
    for cycle in (1, 2, 3):
        cluster.replicas["node-0"].propose(cluster.signed_request(cycle))
    cluster.pump()
    for node_id in ("node-1", "node-2", "node-3"):
        assert [seq for seq, _ in cluster.decided[node_id]] == [1]

    cluster.delivery_filter = lambda s, d, m: True
    for node_id in ("node-1", "node-2", "node-3"):
        cluster.replicas[node_id].suspect()
    cluster.pump()
    for node_id in cluster.ids:
        assert cluster.replicas[node_id].view == 1
        seqs = [seq for seq, _ in cluster.decided[node_id]]
        assert seqs == [1, 2, 3]
        null_decide = dict(cluster.decided[node_id])[2]
        assert is_null_request(null_decide.request)
    assert cluster.all_decided_consistent()
