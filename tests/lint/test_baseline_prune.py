"""--prune-baseline and the stale-entry warning."""

import io
import json
import textwrap

from repro.lint.cli import main

RACY = textwrap.dedent("""
import asyncio

class Registry:
    async def bump(self):
        count = self._count
        await asyncio.sleep(0.1)  # zuglint: disable=DET006
        self._count = count + 1
""")

LIVE_PRINT = "{path}::ASYNC001::repro.svc.racy:Registry.bump._count"
STALE_PRINT = "src/gone.py::DET001::12"


def write_tree(tmp_path):
    target = tmp_path / "src" / "repro" / "svc" / "racy.py"
    target.parent.mkdir(parents=True)
    target.write_text(RACY)
    return target


def write_baseline(tmp_path, entries):
    baseline = tmp_path / "lint-baseline.json"
    baseline.write_text(json.dumps({"tool": "zuglint", "suppressed": entries}))
    return baseline


def test_stale_entries_warn_but_do_not_fail(tmp_path, capsys):
    target = write_tree(tmp_path)
    live = LIVE_PRINT.format(path=str(target))
    baseline = write_baseline(tmp_path, [live, STALE_PRINT])
    stream = io.StringIO()
    code = main(["--baseline", str(baseline), str(target)], stream=stream)
    assert code == 0  # the live finding is absorbed
    err = capsys.readouterr().err
    assert "stale baseline" in err
    assert STALE_PRINT in err


def test_prune_baseline_drops_only_stale_entries(tmp_path):
    target = write_tree(tmp_path)
    live = LIVE_PRINT.format(path=str(target))
    baseline = write_baseline(tmp_path, [live, STALE_PRINT])
    stream = io.StringIO()
    code = main(
        ["--baseline", str(baseline), "--prune-baseline", str(target)],
        stream=stream,
    )
    assert code == 0
    assert "pruned 1 stale entry" in stream.getvalue()
    kept = json.loads(baseline.read_text())["suppressed"]
    assert kept == [live]


def test_prune_with_no_stale_entries_is_a_no_op(tmp_path):
    target = write_tree(tmp_path)
    live = LIVE_PRINT.format(path=str(target))
    baseline = write_baseline(tmp_path, [live])
    before = baseline.read_text()
    stream = io.StringIO()
    code = main(
        ["--baseline", str(baseline), "--prune-baseline", str(target)],
        stream=stream,
    )
    assert code == 0
    assert "pruned 0 stale entries" in stream.getvalue()
    assert baseline.read_text() == before  # file untouched, not rewritten


def test_no_warning_when_baseline_is_fully_live(tmp_path, capsys):
    target = write_tree(tmp_path)
    live = LIVE_PRINT.format(path=str(target))
    baseline = write_baseline(tmp_path, [live])
    code = main(["--baseline", str(baseline), str(target)], stream=io.StringIO())
    assert code == 0
    assert "stale" not in capsys.readouterr().err
