"""DET00x rules: one triggering and one clean fixture per code."""

import textwrap

from repro.lint import lint_sources


def run(source, path="src/repro/sim/fixture.py", select=None):
    return lint_sources({path: textwrap.dedent(source)}, select=select)


def codes(findings):
    return [finding.code for finding in findings]


# --- DET001: wall clock -------------------------------------------------

def test_det001_flags_wall_clock_calls():
    findings = run(
        """
        import time
        from datetime import datetime

        def stamp():
            started = time.time()
            tick = time.monotonic()
            precise = time.perf_counter()
            wall = datetime.now()
            return started, tick, precise, wall
        """,
        select=["DET001"],
    )
    assert codes(findings) == ["DET001"] * 4


def test_det001_clean_inside_runtime_and_for_env_now():
    assert not run(
        """
        import time

        def bridge():
            return time.monotonic()
        """,
        path="src/repro/runtime/bridge.py",
        select=["DET001"],
    )
    assert not run(
        """
        def stamp(env):
            return env.now()
        """,
        select=["DET001"],
    )


# --- DET002: ambient randomness -----------------------------------------

def test_det002_flags_ambient_random():
    findings = run(
        """
        import random

        def jitter():
            a = random.random()
            b = random.randint(0, 10)
            rng = random.Random()
            srng = random.SystemRandom()
            return a, b, rng, srng
        """,
        select=["DET002"],
    )
    assert codes(findings) == ["DET002"] * 4


def test_det002_clean_for_seeded_and_injected_rng():
    assert not run(
        """
        import random

        def build(seed: int, rng: random.Random):
            local = random.Random(seed)
            return local.random() + rng.random()
        """,
        select=["DET002"],
    )
    # The stream factory itself is the one sanctioned construction site.
    assert not run(
        """
        import random

        def stream(seed):
            return random.Random(seed)
        """,
        path="src/repro/util/rng.py",
        select=["DET002"],
    )


# --- DET003: unordered iteration into hashing/encoding/emission ----------

def test_det003_flags_unordered_iteration_feeding_sinks():
    findings = run(
        """
        def digest(entries):
            return sha256(*entries.values())

        def frame(writer, entries):
            writer.put_list([entry.encode() for entry in entries.keys()], enc)

        def emit(env, peers):
            for peer in set(peers):
                env.send(peer, b"hello")
        """,
        select=["DET003"],
    )
    assert codes(findings) == ["DET003"] * 3


def test_det003_clean_when_sorted_or_order_insensitive():
    assert not run(
        """
        def digest(entries):
            return sha256(*sorted(entries.values()))

        def emit(env, peers):
            for peer in sorted(set(peers)):
                env.send(peer, b"hello")

        def total(sizes):
            return sum(size for size in sizes.values())
        """,
        select=["DET003"],
    )


# --- DET004: id()-based ordering ----------------------------------------

def test_det004_flags_id_ordering():
    findings = run(
        """
        def order(nodes, a, b):
            ranked = sorted(nodes, key=id)
            nodes.sort(key=lambda node: id(node))
            return ranked, id(a) < id(b)
        """,
        select=["DET004"],
    )
    assert codes(findings) == ["DET004"] * 3


def test_det004_clean_for_stable_keys_and_identity_checks():
    assert not run(
        """
        def order(nodes, a, b):
            ranked = sorted(nodes, key=lambda node: node.node_id)
            return ranked, id(a) == id(b)
        """,
        select=["DET004"],
    )


# --- DET005: float equality on deadlines ---------------------------------

def test_det005_flags_exact_deadline_equality():
    findings = run(
        """
        def fire(env, timer, expires_at):
            if timer.deadline == env.now():
                return True
            return env.now() != expires_at
        """,
        select=["DET005"],
    )
    assert codes(findings) == ["DET005"] * 2


def test_det005_clean_for_ordering_comparisons():
    assert not run(
        """
        def fire(kernel, timer, count):
            due = kernel.now >= timer.deadline
            return due and count == 5
        """,
        select=["DET005"],
    )


# --- DET006: event-loop clock in protocol code ---------------------------

def test_det006_flags_loop_time_in_protocol_code():
    findings = run(
        """
        def stamp(loop, event_loop):
            a = loop.time()
            b = event_loop.time()
            return a, b
        """,
        path="src/repro/core/layer.py",
        select=["DET006"],
    )
    assert codes(findings) == ["DET006"] * 2


def test_det006_flags_literal_asyncio_sleep_delays():
    findings = run(
        """
        import asyncio
        from asyncio import sleep

        async def settle():
            await asyncio.sleep(0.05)
            await sleep(2)
        """,
        path="src/repro/core/node.py",
        select=["DET006"],
    )
    assert codes(findings) == ["DET006"] * 2


def test_det006_flags_deprecated_get_event_loop_even_in_runtime():
    findings = run(
        """
        import asyncio

        def bind():
            return asyncio.get_event_loop()
        """,
        path="src/repro/runtime/asyncio_runtime.py",
        select=["DET006"],
    )
    assert codes(findings) == ["DET006"]


def test_det006_clean_for_runtime_adapters_and_variable_delays():
    # The runtime adapters are the sanctioned bridge to real time.
    assert not run(
        """
        import asyncio

        async def drive(loop, interval_s):
            loop.time()
            await asyncio.sleep(interval_s)
            await asyncio.sleep(0)
            asyncio.get_running_loop()
        """,
        path="src/repro/runtime/asyncio_runtime.py",
        select=["DET006"],
    )
    # Variable delays and non-loop receivers are fine in protocol code too.
    assert not run(
        """
        import asyncio

        async def drive(env, kernel, interval_s):
            env.now()
            kernel.time()
            await asyncio.sleep(interval_s)
        """,
        path="src/repro/core/layer.py",
        select=["DET006"],
    )


def test_det006_ignores_code_outside_repro():
    assert not run(
        """
        import asyncio

        async def wait(loop):
            loop.time()
            await asyncio.sleep(0.1)
            asyncio.get_event_loop()
        """,
        path="tools/example.py",
        select=["DET006"],
    )


def test_det007_flags_wall_clock_in_trace_emission():
    findings = run(
        """
        import time

        class Node:
            def rx(self, digest):
                self.tracer.emit("bus.rx", time.time(), self.id, digest=digest.hex())
        """,
        path="src/repro/core/node.py",
        select=["DET007"],
    )
    assert codes(findings) == ["DET007"]
    assert "env.now()" in findings[0].message


def test_det007_flags_ambient_formatting_in_trace_fields():
    findings = run(
        """
        class Node:
            def rx(self, env, state):
                self.tracer.emit("bus.rx", env.now(), self.id, keys=f"{state.keys()}")
                self.tracer.emit("bus.rx", env.now(), self.id, views=str({1, 2}))
                self.tracer.emit("bus.rx", env.now(), self.id, env_=repr(vars(self)))
        """,
        path="src/repro/core/node.py",
        select=["DET007"],
    )
    assert codes(findings) == ["DET007"] * 3


def test_det007_flags_wall_clock_in_metric_writes():
    findings = run(
        """
        import time

        def sample(counter, histogram):
            counter.inc(1)
            histogram.observe(time.monotonic())
        """,
        path="src/repro/obs/metrics.py",
        select=["DET007"],
    )
    assert codes(findings) == ["DET007"]


def test_det007_clean_for_scalar_fields_and_virtual_time():
    assert not run(
        """
        class Node:
            def rx(self, env, request, digest):
                self.tracer.emit("bus.rx", env.now(), self.id,
                                 digest=digest.hex(), link=request.source_link)
                self.tracer.emit("req.logged", env.now(), self.id,
                                 digest=digest.hex(), seq=len(self.log))
        """,
        path="src/repro/core/node.py",
        select=["DET007"],
    )


def test_det007_ignores_non_tracer_emit_and_plain_fstrings():
    # `.emit` on a non-tracer receiver and f-strings over opaque scalars
    # (whose rendering the linter cannot judge) are out of scope.
    assert not run(
        """
        import time

        def publish(signal, env):
            signal.emit("tick", time.time())

        class Node:
            def rx(self, env, view):
                self.tracer.emit("bus.rx", env.now(), self.id, label=f"view-{view}")
        """,
        path="src/repro/core/node.py",
        select=["DET007"],
    )


# --- DET008: causal emission funnel --------------------------------------

def test_det008_flags_clock_mutation_and_context_minting():
    findings = run(
        """
        from repro.obs.causal import CausalContext

        class Layer:
            def forge(self, env, origin):
                env.causal.lamport += 10
                env.causal.inbound = None
                self.clock.carry = True
                return CausalContext(origin=origin, lamport=99, parent=-1)
        """,
        path="src/repro/core/layer.py",
        select=["DET008"],
    )
    assert codes(findings) == ["DET008"] * 4


def test_det008_flags_forged_causal_annotations_on_emit():
    findings = run(
        """
        class Node:
            def rx(self, env, digest):
                self.tracer.emit("bus.rx", env.now(), self.id,
                                 digest=digest.hex(), lamport=7, cause="node-0#1")
        """,
        path="src/repro/core/node.py",
        select=["DET008"],
    )
    assert codes(findings) == ["DET008"] * 2


def test_det008_clean_inside_funnel_and_for_unrelated_state():
    # The emission funnel and the causal machinery own the clock.
    assert not run(
        """
        from repro.obs.causal import CausalClock, CausalContext

        class BaseEnv:
            def __init__(self, node_id):
                self.causal = CausalClock(node_id)

            def _emit(self, dsts, message):
                self._transport_emit(dsts, message, self.causal.stamp())

            def run_inbound(self, ctx, fn):
                previous = self.causal.inbound
                self.causal.inbound = ctx
                try:
                    fn()
                finally:
                    self.causal.inbound = previous
        """,
        path="src/repro/runtime/base.py",
        select=["DET008"],
    )
    # Same-named attributes on non-clock receivers are out of scope, as is
    # reading (never assigning) clock state.
    assert not run(
        """
        class Layer:
            def __init__(self):
                self.events = []
                self.inbound = None

            def snapshot(self, env):
                return env.causal.lamport
        """,
        path="src/repro/core/layer.py",
        select=["DET008"],
    )
