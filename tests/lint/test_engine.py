"""Engine mechanics: suppressions, module naming, selection, parse errors."""

import textwrap

import pytest

from repro.lint import LintError, all_rules, lint_paths, lint_sources, rule_for_code
from repro.lint.engine import SYNTAX_ERROR_CODE, module_name_for_path

FLAGGED = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def test_shipped_rule_inventory():
    rule_codes = {rule.code for rule in all_rules()}
    assert {"DET001", "DET002", "DET003", "DET004", "DET005",
            "PROTO001", "PROTO002", "PROTO003", "PROTO004"} <= rule_codes
    det = [code for code in rule_codes if code.startswith("DET")]
    proto = [code for code in rule_codes if code.startswith("PROTO")]
    assert len(det) + len(proto) >= 8
    for rule in all_rules():
        assert rule.description, rule.code


def test_inline_suppression_on_line():
    source = FLAGGED.replace("time.time()", "time.time()  # zuglint: disable=DET001")
    assert not lint_sources({"src/repro/sim/x.py": source})
    # Wrong code on the comment does not suppress.
    wrong = FLAGGED.replace("time.time()", "time.time()  # zuglint: disable=DET002")
    assert [f.code for f in lint_sources({"src/repro/sim/x.py": wrong})] == ["DET001"]


def test_file_level_suppression():
    source = "# zuglint: disable-file=DET001\n" + FLAGGED
    assert not lint_sources({"src/repro/sim/x.py": source})
    everything = "# zuglint: disable-file=all\n" + FLAGGED
    assert not lint_sources({"src/repro/sim/x.py": everything})


def test_select_and_ignore_filter_rules():
    source = FLAGGED + "\ndef enqueue(queue=[]):\n    pass\n"
    both = lint_sources({"src/repro/sim/x.py": source})
    assert {f.code for f in both} == {"DET001", "PROTO004"}
    only_det = lint_sources({"src/repro/sim/x.py": source}, select=["DET001"])
    assert {f.code for f in only_det} == {"DET001"}
    no_det = lint_sources({"src/repro/sim/x.py": source}, ignore=["DET001"])
    assert {f.code for f in no_det} == {"PROTO004"}


def test_unknown_rule_code_raises():
    with pytest.raises(LintError):
        lint_sources({"src/repro/sim/x.py": "x = 1\n"}, select=["NOPE999"])
    with pytest.raises(LintError):
        rule_for_code("NOPE999")


def test_module_name_for_path():
    assert module_name_for_path("src/repro/sim/kernel.py") == "repro.sim.kernel"
    assert module_name_for_path("/abs/repo/src/repro/util/rng.py") == "repro.util.rng"
    assert module_name_for_path("repro/runtime/env.py") == "repro.runtime.env"
    assert module_name_for_path("tests/lint/test_engine.py") == "tests.lint.test_engine"
    assert module_name_for_path("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name_for_path("scratch.py") == "scratch"


def test_findings_carry_location_and_fingerprint():
    findings = lint_sources({"src/repro/sim/x.py": FLAGGED})
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "src/repro/sim/x.py"
    assert finding.line == 5
    assert finding.fingerprint == "src/repro/sim/x.py::DET001::5"
    assert "src/repro/sim/x.py:5" in finding.render()


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    findings = lint_paths([str(tmp_path)])
    assert [f.code for f in findings] == [SYNTAX_ERROR_CODE]


def test_lint_paths_rejects_missing_path():
    with pytest.raises(LintError):
        lint_paths(["no/such/dir"])
