"""Dynamic companion to PROTO001: every registered type must round-trip.

The static rule proves every codec class is *registered*; this test
proves every registered class actually survives
``encode_message``/``decode_message``.  A sample factory per type keeps
the check honest: registering a new message without adding a sample here
fails loudly.
"""

import pytest

import repro.wire.tags  # noqa: F401  (populate the registry)
from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.client import ClientRequestWrapper, Reply
from repro.bft.linear import CommitCert, Vote
from repro.bft.messages import (
    Checkpoint,
    Commit,
    DecideFetch,
    DecideProof,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    ViewChange,
)
from repro.chain.block import Block, BlockHeader, build_block, genesis_block
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.statesync import StateReply, StateRequest
from repro.crypto import HmacScheme
from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
    SessionResume,
)
from repro.obs.causal import CausalContext
from repro.wire import Request, SignedRequest, decode_message, encode_message
from repro.wire.registry import registered_types

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")
DC_PAIR = SCHEME.derive_keypair(b"dc-0")


def _request():
    return Request(payload=b"signals" * 4, bus_cycle=7, recv_timestamp_us=12_500)


def _signed():
    return SignedRequest.create(_request(), "node-0", PAIR)


def _preprepare():
    return PrePrepare(view=0, seq=1, request=_signed(), primary_id="node-0").signed(PAIR)


def _checkpoint():
    return Checkpoint(seq=4, block_height=1, block_hash=b"\x11" * 32,
                      state_digest=b"\x22" * 32, replica_id="node-0").signed(PAIR)


def _certificate():
    return CheckpointCertificate(seq=4, block_height=1, block_hash=b"\x11" * 32,
                                 state_digest=b"\x22" * 32,
                                 signatures=(_checkpoint(),))


def _block():
    return build_block(genesis_block().header, [_signed()], timestamp_us=9, last_sn=1)


def _prepared_proof():
    return PreparedProof(view=0, seq=1, digest=_signed().digest, request=_signed())


def _vote():
    return Vote(view=0, seq=1, digest=b"\x44" * 32, replica_id="node-1").signed(PAIR)


def _viewchange():
    return ViewChange(new_view=1, last_stable_seq=0,
                      stable_checkpoint_digest=b"\x33" * 32,
                      prepared=(_prepared_proof(),), replica_id="node-1").signed(PAIR)


SAMPLES = {
    Request: _request,
    SignedRequest: _signed,
    PrePrepare: _preprepare,
    Prepare: lambda: Prepare(view=0, seq=1, digest=b"\x44" * 32, replica_id="node-1").signed(PAIR),
    Commit: lambda: Commit(view=0, seq=1, digest=b"\x44" * 32, replica_id="node-2").signed(PAIR),
    Checkpoint: _checkpoint,
    PreparedProof: _prepared_proof,
    ViewChange: _viewchange,
    NewView: lambda: NewView(view=1, view_changes=(_viewchange(),),
                             preprepares=(_preprepare(),), primary_id="node-1").signed(PAIR),
    CheckpointCertificate: _certificate,
    Vote: _vote,
    CommitCert: lambda: CommitCert(view=0, seq=1, digest=b"\x44" * 32, votes=(_vote(),)),
    ClientRequestWrapper: lambda: ClientRequestWrapper(request=_signed()),
    Reply: lambda: Reply(seq=1, digest=b"\x55" * 32, client_id="client-0",
                         replica_id="node-0").signed(PAIR),
    ZugBroadcast: lambda: ZugBroadcast(request=_signed()),
    ZugForward: lambda: ZugForward(request=_signed(), forwarder_id="node-3"),
    StateRequest: lambda: StateRequest(requester_id="node-2", have_height=3).signed(PAIR),
    StateReply: lambda: StateReply(replica_id="node-0", checkpoint=_certificate(),
                                   blocks=(_block(),), prune_base_height=0,
                                   prune_base_hash=genesis_block().block_hash,
                                   prune_signatures=(("dc-0", b"\x66" * 64),)).signed(PAIR),
    BlockHeader: lambda: _block().header,
    Block: _block,
    ReadRequest: lambda: ReadRequest(dc_id="dc-0", last_sn=0, full_from="node-0").signed(DC_PAIR),
    ReadReply: lambda: ReadReply(replica_id="node-0", checkpoint=_certificate(),
                                 blocks=(_block(),)).signed(PAIR),
    DcSync: lambda: DcSync(dc_id="dc-0", checkpoint=_certificate(),
                           blocks=(_block(),)).signed(DC_PAIR),
    DeleteRequest: lambda: DeleteRequest(dc_id="dc-0", upto_sn=1, block_height=1,
                                         block_hash=b"\x77" * 32).signed(DC_PAIR),
    DeleteAck: lambda: DeleteAck(replica_id="node-0", block_height=1,
                                 block_hash=b"\x77" * 32).signed(PAIR),
    BlockFetch: lambda: BlockFetch(dc_id="dc-0", first_height=1, last_height=2).signed(DC_PAIR),
    BlockFetchReply: lambda: BlockFetchReply(replica_id="node-0", blocks=(_block(),)).signed(PAIR),
    SessionResume: lambda: SessionResume(replica_id="node-0", chain_height=2,
                                         head_hash=b"\x88" * 32, incarnation=1).signed(PAIR),
    DecideFetch: lambda: DecideFetch(requester_id="node-2", first_seq=3,
                                     last_seq=7).signed(PAIR),
    DecideProof: lambda: DecideProof(
        replica_id="node-0", preprepare=_preprepare(),
        commits=(Commit(view=0, seq=1, digest=_signed().digest,
                        replica_id="node-2").signed(PAIR),),
    ).signed(PAIR),
    CausalContext: lambda: CausalContext(origin="node-0", lamport=3, parent=-1),
}


def test_every_registered_type_has_a_sample():
    missing = [cls.__name__ for cls in registered_types().values() if cls not in SAMPLES]
    assert not missing, (
        f"registered message types without round-trip samples: {missing}; "
        "add a factory to SAMPLES in this file"
    )


@pytest.mark.parametrize(
    "tag,cls",
    sorted(registered_types().items()),
    ids=lambda value: value.__name__ if isinstance(value, type) else str(value),
)
def test_registered_type_roundtrips_through_envelope(tag, cls):
    message = SAMPLES[cls]()
    assert isinstance(message, cls)
    encoded = encode_message(message)
    decoded, consumed = decode_message(encoded)
    assert consumed == len(encoded)
    assert type(decoded) is cls
    assert decoded == message
    assert decoded.encode() == message.encode()


def test_registered_tags_match_canonical_table():
    assert registered_types() == repro.wire.tags.WIRE_TAGS
