"""FLOW002: verify-before-mutate over dispatcher-fed handlers."""

import textwrap

from repro.lint import lint_sources


def run(sources, select=("FLOW002",)):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=list(select),
    )


# The seeded evasion crate: a backend whose dispatcher routes untrusted
# messages into handlers; one handler writes the log before verifying.
BACKEND = """
class Ping:
    pass

class Pong:
    pass

class Backend:
    def on_message(self, src, message):
        if isinstance(message, Ping):
            self._on_ping(src, message)
        elif isinstance(message, Pong):
            self._on_pong(src, message)

    def _on_ping(self, src, message):
        self._seen[message.seq] = message
        if not message.verify(self.keystore):
            return

    def _on_pong(self, src, message):
        if not message.verify(self.keystore):
            self.rejected += 1
            return
        self._seen[message.seq] = message
"""


def test_mutate_before_verify_handler_is_flagged():
    findings = run({"src/repro/bft/crate.py": BACKEND})
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "FLOW002"
    assert "_on_ping" in finding.message
    assert "self._seen" in finding.message
    assert finding.anchor == "repro.bft.crate:Backend._on_ping#self._seen"


def test_rejection_bookkeeping_in_guard_branch_is_allowed():
    # _on_pong increments self.rejected inside the verify-failure branch;
    # a guard in the if-test marks both branches verified.
    findings = run({"src/repro/bft/crate.py": BACKEND})
    assert all("_on_pong" not in finding.message for finding in findings)


def test_same_crate_out_of_scope_in_sim_module():
    assert run({"src/repro/sim/crate.py": BACKEND}) == []


def test_unresolved_mutating_method_before_guard():
    crate = {
        "src/repro/core/queuebackend.py": """
        class Note:
            pass

        class Other:
            pass

        class Keeper:
            def handle_message(self, src, message):
                if isinstance(message, Note):
                    self._on_note(src, message)
                elif isinstance(message, Other):
                    self._on_other(src, message)

            def _on_note(self, src, message):
                self._queue.append(message)
                if not message.verify(self.keystore):
                    return

            def _on_other(self, src, message):
                if not message.verify(self.keystore):
                    return
                self._queue.append(message)
        """,
    }
    findings = run(crate)
    assert len(findings) == 1
    assert "self._queue.append" in findings[0].message
    assert "_on_note" in findings[0].message


def test_verify_through_resolved_callee_counts_as_guard():
    crate = {
        "src/repro/bft/admit.py": """
        class Ask:
            pass

        class Tell:
            pass

        class Gate:
            def on_message(self, src, message):
                if isinstance(message, Ask):
                    self._on_ask(src, message)
                elif isinstance(message, Tell):
                    self._on_ask(src, message)

            def _on_ask(self, src, message):
                if not self._admit(message):
                    return
                self._seen[message.seq] = message

            def _admit(self, message):
                return message.verify(self.keystore)
        """,
    }
    assert run(crate) == []
