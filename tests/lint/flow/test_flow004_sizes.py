"""FLOW004: symbolic encoded_size checking (PROTO005's interprocedural dual).

PROTO005 only sees literal arithmetic *inside* encoded_size(); spreading
the formula across helper methods evades it.  These crates prove the
helper-composed forms are caught once the layout and size expression are
evaluated symbolically.
"""

import textwrap

from repro.lint import lint_sources


def run(sources, select=("FLOW004",)):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=list(select),
    )


def one(source):
    return run({"src/repro/wire/crate.py": source})


# The seeded evasion crate: every operand of the size formula lives in a
# helper or a module constant, so PROTO005's literal-arithmetic check
# inside encoded_size() sees nothing.
EVADER = """
DIGEST_SIZE = 32

class Evader:
    def encode(self):
        writer = Writer()
        writer.put_uint(self.seq)
        writer.put_fixed(self.digest, DIGEST_SIZE)
        return writer.getvalue()

    def _header_size(self):
        return 8

    def encoded_size(self):
        return self._header_size() + DIGEST_SIZE
"""


def test_helper_composed_constant_vs_variable_layout():
    findings = one(EVADER)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "FLOW004"
    assert "variable-width" in finding.message
    assert "40" in finding.message  # 8 + 32, fully evaluated
    assert finding.anchor == "repro.wire.crate.Evader.encoded_size"


def test_evader_is_invisible_to_proto005():
    # The whole point of FLOW004: the same crate passes the file-local rule.
    assert run({"src/repro/wire/crate.py": EVADER}, select=("PROTO005",)) == []


def test_constant_drift_against_all_constant_layout():
    findings = one("""
    class Drifted:
        def encode(self):
            writer = Writer()
            writer.put_fixed(self.digest, 16)
            writer.put_bool(self.flag)
            return writer.getvalue()

        def _base(self):
            return 16

        def encoded_size(self):
            return self._base() + 2
    """)
    assert len(findings) == 1
    assert "exactly 17 bytes" in findings[0].message
    assert "18" in findings[0].message


def test_matching_constant_size_is_clean():
    assert one("""
    class Exact:
        def encode(self):
            writer = Writer()
            writer.put_fixed(self.digest, 16)
            writer.put_bool(self.flag)
            return writer.getvalue()

        def _base(self):
            return 16

        def encoded_size(self):
            return self._base() + 1
    """) == []


def test_codec_derived_size_is_always_clean():
    assert one("""
    class Clean:
        def encode(self):
            writer = Writer()
            writer.put_uint(self.seq)
            return writer.getvalue()

        def encoded_size(self):
            return len(self.encode())
    """) == []


def test_literal_arithmetic_with_unevaluable_call():
    findings = one("""
    class Mystery:
        def encode(self):
            writer = Writer()
            writer.put_fixed(self.digest, 8)
            return writer.getvalue()

        def encoded_size(self):
            return self.mystery() + 4
    """)
    assert len(findings) == 1
    assert "integer-literal arithmetic" in findings[0].message


def test_variable_size_tracking_variable_layout_is_clean():
    assert one("""
    class Tracking:
        def encode(self):
            writer = Writer()
            writer.put_bytes(self.payload)
            return writer.getvalue()

        def encoded_size(self):
            return varint_size(len(self.payload)) + len(self.payload)
    """) == []
