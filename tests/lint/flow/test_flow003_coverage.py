"""FLOW003: wire-registry vs dispatch-set coverage (PROTO001's dual)."""

import textwrap

from repro.lint import lint_sources


def run(sources, select=("FLOW003",)):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=list(select),
    )


MESSAGES = """
class Ping:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        return cls()

class Pong:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        return cls()

class Loose:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        return cls()
"""

REGISTRY = """
from repro.wire.registry import register_message_type
from repro.core.cratemsgs import Ping, Pong

WIRE_TAGS = {
    1: Ping,
    2: Pong,
}

for _tag, _cls in WIRE_TAGS.items():
    register_message_type(_tag, _cls)
"""

HANDLER = """
from repro.core.cratemsgs import Ping, Pong, Loose

class Backend:
    def handle_message(self, src, message):
        if isinstance(message, Ping):
            return 1
        if isinstance(message, Loose):
            return 2
"""


def crate(handler=HANDLER, registry=REGISTRY, messages=MESSAGES):
    return {
        "src/repro/core/cratemsgs.py": messages,
        "src/repro/wire/cratetags.py": registry,
        "src/repro/core/cratebackend.py": handler,
    }


def test_dispatched_but_unregistered_and_dead_tag_are_both_found():
    findings = run(crate())
    assert len(findings) == 2
    by_anchor = {finding.anchor: finding for finding in findings}
    unregistered = by_anchor["dispatched-unregistered:repro.core.cratemsgs.Loose"]
    assert "never registered" in unregistered.message
    dead = by_anchor["registered-unreachable:Pong"]
    assert "tag 2" in dead.message
    assert "dead tag" in dead.message


def test_decode_closure_justifies_registered_tag():
    # Pong is constructed inside Ping.decode: its tag is reachable even
    # though no dispatcher tests isinstance(message, Pong).
    messages = MESSAGES.replace(
        """class Ping:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        return cls()""",
        """class Ping:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        inner = Pong.decode(data)
        return cls()""",
    )
    findings = run(crate(messages=messages))
    assert [finding.anchor for finding in findings] == [
        "dispatched-unregistered:repro.core.cratemsgs.Loose"
    ]


def test_decode_closure_chases_same_class_helpers():
    # The SignedRequest.decode -> cls.read_from -> Request.decode shape:
    # the nested decode lives in a helper, not in decode itself.
    messages = MESSAGES.replace(
        """class Ping:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        return cls()""",
        """class Ping:
    def encode(self):
        return b""

    @classmethod
    def decode(cls, data):
        return cls.read_from(data)

    @classmethod
    def read_from(cls, data):
        inner = Pong.decode(data)
        return cls()""",
    )
    findings = run(crate(messages=messages))
    assert [finding.anchor for finding in findings] == [
        "dispatched-unregistered:repro.core.cratemsgs.Loose"
    ]


def test_message_types_tuple_counts_as_dispatch_evidence():
    handler = """
    from repro.core.cratemsgs import Ping, Pong

    class Backend:
        MESSAGE_TYPES = (Ping, Pong)

        def handle_message(self, src, message):
            if isinstance(message, self.MESSAGE_TYPES):
                return 1
    """
    findings = run(crate(handler=handler))
    assert findings == []


def test_dynamic_range_registration_covers_dispatched_classes():
    # Computed tag ranges: the registry enumerates a class sequence and
    # derives each tag at runtime.  Ping/Pong count as registered (with
    # unknown tags), so only the truly unregistered Loose is flagged, and
    # the dead-tag finding renders "a wire tag" instead of a number.
    registry = """
    from repro.wire.registry import register_message_type
    from repro.core.cratemsgs import Ping, Pong

    BASE_TAG = 0x10

    _WIRE_CLASSES = [Ping, Pong]

    for _offset, _cls in enumerate(_WIRE_CLASSES):
        register_message_type(BASE_TAG + _offset, _cls)
    """
    findings = run(crate(registry=registry))
    by_anchor = {finding.anchor: finding for finding in findings}
    assert sorted(by_anchor) == [
        "dispatched-unregistered:repro.core.cratemsgs.Loose",
        "registered-unreachable:Pong",
    ]
    assert "a wire tag" in by_anchor["registered-unreachable:Pong"].message


def test_silent_without_registrations_in_view():
    sources = crate()
    del sources["src/repro/wire/cratetags.py"]
    assert run(sources) == []
