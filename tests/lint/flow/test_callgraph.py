"""Call-graph construction: name resolution, typing, and method lookup."""

import ast
import textwrap

from repro.lint.engine import FileContext, Project
from repro.lint.flow.callgraph import build_call_graph


def graph_of(sources):
    contexts = [
        FileContext.parse(path, textwrap.dedent(text))
        for path, text in sources.items()
    ]
    return build_call_graph(Project(files=contexts))


CRATE = {
    "src/repro/core/things.py": """
    HEADER = 4

    class Base:
        def shared(self):
            return 1

    class Thing(Base):
        def encode(self):
            return self.helper()

        def helper(self):
            return 2

    def top():
        return Thing()
    """,
    "src/repro/core/user.py": """
    from repro.core.things import HEADER, Thing

    def use(t: Thing):
        return t.helper()
    """,
}


def first_call(fn):
    return next(node for node in ast.walk(fn.node) if isinstance(node, ast.Call))


def test_functions_and_methods_are_keyed_by_module_and_qualname():
    graph = graph_of(CRATE)
    assert "repro.core.things:top" in graph.functions
    assert "repro.core.things:Thing.encode" in graph.functions
    assert "repro.core.user:use" in graph.functions


def test_resolve_class_follows_imports():
    graph = graph_of(CRATE)
    key = graph.resolve_class("repro.core.user", "Thing")
    assert key is not None
    assert graph.classes[key].name == "Thing"
    assert graph.classes[key].module == "repro.core.things"


def test_resolve_int_constant_follows_imports():
    graph = graph_of(CRATE)
    assert graph.resolve_int_constant("repro.core.things", "HEADER") == 4
    assert graph.resolve_int_constant("repro.core.user", "HEADER") == 4
    assert graph.resolve_int_constant("repro.core.user", "MISSING") is None


def test_method_on_walks_base_classes():
    graph = graph_of(CRATE)
    thing = graph.resolve_class("repro.core.things", "Thing")
    shared = graph.method_on(thing, "shared")
    assert shared is not None
    assert shared.key == "repro.core.things:Base.shared"
    assert graph.method_on(thing, "nope") is None


def test_resolve_call_through_self():
    graph = graph_of(CRATE)
    fn = graph.functions["repro.core.things:Thing.encode"]
    callee = graph.resolve_call(fn, first_call(fn), graph.local_types(fn))
    assert callee is not None
    assert callee.key == "repro.core.things:Thing.helper"


def test_resolve_call_through_annotated_parameter():
    graph = graph_of(CRATE)
    fn = graph.functions["repro.core.user:use"]
    callee = graph.resolve_call(fn, first_call(fn), graph.local_types(fn))
    assert callee is not None
    assert callee.key == "repro.core.things:Thing.helper"
