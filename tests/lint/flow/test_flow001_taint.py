"""FLOW001: interprocedural nondeterminism taint (DET001–004 closure).

The crates here are *evasions* of the intraprocedural DET rules: the
nondeterministic source and the protocol sink live in different
functions, so only call-graph propagation can connect them.
"""

import textwrap

from repro.lint import lint_sources


def run(sources, select=("FLOW001",)):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=list(select),
    )


# A wall-clock read laundered through two helper calls before hitting a
# codec writer — invisible to DET001, which only sees one body at a time.
CLOCK_CRATE = {
    "src/repro/core/stamp.py": """
    import time

    def _now_us():
        return int(time.time() * 1e6)

    def _freshness():
        return _now_us() + 1

    class Stamp:
        def encode(self, writer):
            writer.put_uint(_freshness())
            return writer.getvalue()
    """,
}


def test_cross_function_clock_taint_reaches_codec_sink():
    findings = run(CLOCK_CRATE)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "FLOW001"
    assert "wall clock time.time()" in finding.message
    assert "put_uint" in finding.message
    assert finding.anchor is not None
    assert finding.anchor.startswith("src/repro/core/stamp.py") is False
    assert "Stamp.encode" in finding.anchor


def test_same_crate_clean_in_runtime_exempt_module():
    # repro.runtime* owns the sanctioned wall-clock bridge; the identical
    # code there must not be flagged.
    exempt = {
        path.replace("src/repro/core/", "src/repro/runtime/"): text
        for path, text in CLOCK_CRATE.items()
    }
    assert run(exempt) == []


# Taint entering replica state through a helper's parameter: the write
# happens in _store, the nondeterministic value originates in rearm.
STATE_CRATE = {
    "src/repro/bft/backoff.py": """
    import time

    class Backoff:
        def _store(self, value):
            self._delay = value

        def rearm(self):
            self._store(time.monotonic())
    """,
}


def test_taint_through_parameter_into_state_write():
    findings = run(STATE_CRATE)
    assert len(findings) == 1
    assert "wall clock time.monotonic()" in findings[0].message
    assert "state write self._delay" in findings[0].message
    assert "_store" in findings[0].message


# Set-iteration order returned from a helper and fed to an ordered sink.
ORDER_CRATE = {
    "src/repro/core/members.py": """
    def _active(ids):
        return set(ids)

    class Roster:
        def encode(self, writer, ids):
            writer.put_list(list(_active(ids)))
            return writer.getvalue()
    """,
}


def test_order_taint_propagates_through_helper_return():
    findings = run(ORDER_CRATE)
    assert len(findings) == 1
    assert "iteration-order" in findings[0].message
    assert "put_list" in findings[0].message


def test_sorted_launders_order_taint():
    clean = {
        "src/repro/core/members.py": ORDER_CRATE[
            "src/repro/core/members.py"
        ].replace("list(_active(ids))", "sorted(_active(ids))"),
    }
    assert run(clean) == []


def test_suppression_comment_silences_flow_finding():
    crate = {
        "src/repro/core/stamp.py": CLOCK_CRATE["src/repro/core/stamp.py"].replace(
            "writer.put_uint(_freshness())",
            "writer.put_uint(_freshness())  # zuglint: disable=FLOW001",
        ),
    }
    assert run(crate) == []
