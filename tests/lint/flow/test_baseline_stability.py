"""Baseline round-tripping of flow findings.

Flow findings carry structural anchors (function keys, class names), so
their fingerprints must survive the two edits that invalidate
line-number fingerprints: inserting unrelated lines above the finding
and reordering the files of the run.
"""

import textwrap

from repro.lint import lint_sources
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline

CRATE = {
    "src/repro/core/stamp.py": """
    import time

    def _now_us():
        return int(time.time() * 1e6)

    class Stamp:
        def encode(self, writer):
            writer.put_uint(_now_us())
            return writer.getvalue()
    """,
    "src/repro/bft/crate.py": """
    class Ping:
        pass

    class Pong:
        pass

    class Backend:
        def on_message(self, src, message):
            if isinstance(message, Ping):
                self._on_ping(src, message)
            elif isinstance(message, Pong):
                self._on_ping(src, message)

        def _on_ping(self, src, message):
            self._seen[message.seq] = message
            if not message.verify(self.keystore):
                return
    """,
    "src/repro/wire/sized.py": """
    class Evader:
        def encode(self):
            writer = Writer()
            writer.put_uint(self.seq)
            return writer.getvalue()

        def _header_size(self):
            return 8

        def encoded_size(self):
            return self._header_size() + 4
    """,
}

SELECT = ["FLOW001", "FLOW002", "FLOW004"]


def run(sources):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=SELECT,
    )


def fingerprints(sources):
    return sorted(finding.fingerprint for finding in run(sources))


def test_crate_produces_one_finding_per_flow_rule():
    codes = sorted({finding.code for finding in run(CRATE)})
    assert codes == SELECT


def test_fingerprints_survive_unrelated_line_insertion():
    baseline = fingerprints(CRATE)
    padded = {
        path: "# padding\n# more padding\n\n" + textwrap.dedent(text)
        for path, text in CRATE.items()
    }
    shifted = sorted(
        finding.fingerprint
        for finding in lint_sources(padded, select=SELECT)
    )
    assert shifted == baseline
    # The raw line numbers DID move — the anchors are doing the work.
    assert {f.line for f in run(CRATE)} != {
        f.line for f in lint_sources(padded, select=SELECT)
    }


def test_fingerprints_survive_file_reordering():
    items = [(path, textwrap.dedent(text)) for path, text in CRATE.items()]
    forward = sorted(f.fingerprint for f in lint_sources(items, select=SELECT))
    backward = sorted(
        f.fingerprint for f in lint_sources(items[::-1], select=SELECT)
    )
    assert forward == backward


def test_flow_findings_round_trip_through_baseline_file(tmp_path):
    findings = run(CRATE)
    assert findings
    baseline_path = str(tmp_path / "lint-baseline.json")
    write_baseline(baseline_path, findings)
    suppressed = load_baseline(baseline_path)
    assert suppressed == {finding.fingerprint for finding in findings}
    assert apply_baseline(findings, suppressed) == []
    # A fresh run over the padded crate is also fully absorbed.
    padded = {
        path: "# padding\n" + textwrap.dedent(text)
        for path, text in CRATE.items()
    }
    assert apply_baseline(lint_sources(padded, select=SELECT), suppressed) == []
