"""ASYNC002 (fire-and-forget tasks) and ASYNC005 (unawaited coroutines)."""

import textwrap

from repro.lint import lint_sources


def run(text, select, path="src/repro/svc/tasks.py"):
    return lint_sources({path: textwrap.dedent(text)}, select=list(select))


# -- ASYNC002 ---------------------------------------------------------------


def test_discarded_create_task_is_flagged():
    findings = run("""
    import asyncio

    async def main(worker):
        asyncio.create_task(worker())
    """, ["ASYNC002"])
    assert [f.code for f in findings] == ["ASYNC002"]


def test_task_bound_to_underscore_is_flagged():
    findings = run("""
    import asyncio

    async def main(worker):
        _ = asyncio.create_task(worker())
    """, ["ASYNC002"])
    assert [f.code for f in findings] == ["ASYNC002"]


def test_task_bound_but_never_used_is_flagged():
    findings = run("""
    import asyncio

    async def main(worker):
        task = asyncio.create_task(worker())
        return None
    """, ["ASYNC002"])
    assert [f.code for f in findings] == ["ASYNC002"]
    assert "task" in findings[0].message


def test_stored_and_awaited_tasks_are_clean():
    findings = run("""
    import asyncio

    class Owner:
        async def main(self, worker):
            self._task = asyncio.create_task(worker())
            kept = asyncio.create_task(worker())
            await kept
            watched = asyncio.create_task(worker())
            watched.add_done_callback(print)
    """, ["ASYNC002"])
    assert findings == []


def test_task_group_children_are_not_flagged():
    findings = run("""
    async def main(tg, worker):
        tg.create_task(worker())
    """, ["ASYNC002"])
    assert findings == []


def test_ensure_future_is_covered():
    findings = run("""
    import asyncio

    async def main(worker):
        asyncio.ensure_future(worker())
    """, ["ASYNC002"])
    assert [f.code for f in findings] == ["ASYNC002"]


# -- ASYNC005 ---------------------------------------------------------------


def test_bare_call_to_project_coroutine_is_flagged():
    findings = run("""
    class Node:
        async def flush(self):
            return 1

        def tick(self):
            self.flush()
    """, ["ASYNC005"])
    assert [f.code for f in findings] == ["ASYNC005"]
    assert "flush" in findings[0].message


def test_unawaited_asyncio_sleep_is_flagged():
    findings = run("""
    import asyncio

    async def main():
        asyncio.sleep(1)
    """, ["ASYNC005"])
    assert [f.code for f in findings] == ["ASYNC005"]


def test_awaited_calls_are_clean():
    findings = run("""
    import asyncio

    class Node:
        async def flush(self):
            return 1

        async def tick(self):
            await self.flush()
            await asyncio.sleep(0)
    """, ["ASYNC005"])
    assert findings == []


def test_bare_sync_call_is_clean():
    findings = run("""
    class Node:
        def flush(self):
            return 1

        def tick(self):
            self.flush()
    """, ["ASYNC005"])
    assert findings == []
