"""Stage plumbing: --stage filtering and the shared per-run call graph."""

import io
import textwrap

import pytest

from repro.lint import lint_sources
from repro.lint.aio import aio_analysis
from repro.lint.cli import main
from repro.lint.engine import (
    STAGES,
    FileContext,
    LintError,
    Project,
    all_rules,
    lint_contexts,
)
from repro.lint.flow.summaries import flow_analysis

RACY = {
    "src/repro/svc/mixed.py": """
    import time
    import asyncio

    def now_us():
        return int(time.time() * 1e6)

    class Registry:
        async def bump(self):
            count = self._count
            await asyncio.sleep(0.1)
            self._count = count + 1
    """,
}


def run(sources, stages=None):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        stages=stages,
    )


def test_every_rule_declares_a_known_stage():
    for rule in all_rules():
        assert rule.stage in STAGES, rule.code


def test_stage_aio_runs_only_async_rules():
    findings = run(RACY, stages=["aio"])
    assert findings
    assert all(f.code.startswith("ASYNC") for f in findings)


def test_stage_ast_excludes_async_rules():
    findings = run(RACY, stages=["ast"])
    assert findings  # DET001 wall clock
    assert all(not f.code.startswith(("ASYNC", "FLOW")) for f in findings)


def test_all_stages_is_the_default():
    codes = {f.code for f in run(RACY)}
    assert any(code.startswith("ASYNC") for code in codes)
    assert any(code.startswith("DET") for code in codes)


def test_unknown_stage_is_a_usage_error():
    with pytest.raises(LintError, match="unknown stage"):
        run(RACY, stages=["asink"])


def test_cli_stage_flag(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "svc" / "mixed.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(RACY["src/repro/svc/mixed.py"]))
    stream = io.StringIO()
    assert main(["--stage", "aio", str(target)], stream=stream) == 1
    assert "ASYNC001" in stream.getvalue()
    assert "DET001" not in stream.getvalue()

    stream = io.StringIO()
    assert main(["--stage", "ast,flow", str(target)], stream=stream) == 1
    assert "ASYNC001" not in stream.getvalue()
    assert "DET001" in stream.getvalue()


def test_cli_rejects_unknown_stage(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("X = 1\n")
    assert main(["--stage", "nope", str(target)], stream=io.StringIO()) == 2
    assert "unknown stage" in capsys.readouterr().err


def test_flow_and_aio_share_one_call_graph():
    """Both analyses resolve through the same cached CallGraph instance."""
    contexts = [
        FileContext.parse(path, textwrap.dedent(text))
        for path, text in RACY.items()
    ]
    project = Project(files=contexts)
    flow = flow_analysis(project)
    aio = aio_analysis(project)
    assert aio.graph is flow.graph
    assert aio.graph is project.cache["flow.callgraph"]


def test_one_lint_run_builds_one_graph(monkeypatch):
    from repro.lint.flow import callgraph as callgraph_mod

    built = []
    real_init = callgraph_mod.CallGraph.__init__

    def counting_init(self, project):
        built.append(1)
        real_init(self, project)

    monkeypatch.setattr(callgraph_mod.CallGraph, "__init__", counting_init)
    contexts = [
        FileContext.parse(path, textwrap.dedent(text))
        for path, text in RACY.items()
    ]
    lint_contexts(contexts)  # all three stages
    assert len(built) == 1
