"""ASYNC001: read-modify-write of shared state spanning a suspension point.

The acceptance bar for the rule is interprocedurality: an ``await`` whose
suspension point lives two calls away must still make the caller's
read-modify-write a finding, and a callee that never truly suspends must
not.
"""

import textwrap

from repro.lint import lint_sources


def run(sources, select=("ASYNC001",)):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=list(select),
    )


def codes(sources):
    return [finding.code for finding in run(sources)]


def test_direct_rmw_across_await_is_flagged():
    findings = run({
        "src/repro/svc/a.py": """
        import asyncio

        class Registry:
            async def bump(self):
                count = self._count
                await asyncio.sleep(0.1)
                self._count = count + 1
        """,
    })
    assert [f.code for f in findings] == ["ASYNC001"]
    assert "self._count" in findings[0].message
    assert findings[0].line == 8


def test_two_hop_interprocedural_await_counts():
    """The suspension is inside a callee two hops away — still a finding."""
    findings = run({
        "src/repro/svc/b.py": """
        import asyncio

        class Registry:
            async def bump(self):
                count = self._count
                await self._hop_one()
                self._count = count + 1

            async def _hop_one(self):
                await self._hop_two()

            async def _hop_two(self):
                await asyncio.sleep(0.1)
        """,
    })
    assert [(f.code, f.line) for f in findings] == [("ASYNC001", 8)]


def test_awaiting_a_non_suspending_callee_is_not_a_suspension():
    """A coroutine that never reaches a suspension primitive runs atomically."""
    findings = run({
        "src/repro/svc/c.py": """
        class Registry:
            async def bump(self):
                count = self._count
                await self._pure()
                self._count = count + 1

            async def _pure(self):
                return 7
        """,
    })
    assert findings == []


def test_lock_protected_rmw_is_clean():
    findings = run({
        "src/repro/svc/d.py": """
        import asyncio

        class Registry:
            def __init__(self):
                self._lock = asyncio.Lock()
                self._count = 0

            async def bump(self):
                async with self._lock:
                    count = self._count
                    await asyncio.sleep(0.1)
                    self._count = count + 1
        """,
    })
    assert findings == []


def test_lock_on_read_but_not_write_still_flags():
    findings = run({
        "src/repro/svc/e.py": """
        import asyncio

        class Registry:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def bump(self):
                async with self._lock:
                    count = self._count
                await asyncio.sleep(0.1)
                self._count = count + 1
        """,
    })
    assert [f.code for f in findings] == ["ASYNC001"]


def test_augassign_rmw_across_await_is_flagged():
    findings = run({
        "src/repro/svc/f.py": """
        import asyncio

        class Counter:
            async def add(self):
                self._total += await self._fetch()

            async def _fetch(self):
                await asyncio.sleep(0.1)
                return 1
        """,
    })
    assert [f.code for f in findings] == ["ASYNC001"]


def test_mutating_method_call_counts_as_write():
    findings = run({
        "src/repro/svc/g.py": """
        import asyncio

        class Pool:
            async def evict(self, key):
                if key in self._items:
                    await asyncio.sleep(0.1)
                    self._items.pop(key)
        """,
    })
    assert [f.code for f in findings] == ["ASYNC001"]


def test_exclusive_branches_do_not_combine():
    """A read in one branch and a write in the sibling never co-execute."""
    findings = run({
        "src/repro/svc/h.py": """
        import asyncio

        class Pool:
            async def step(self, flag):
                if flag:
                    snapshot = self._items
                    del snapshot
                else:
                    await asyncio.sleep(0.1)
                    self._items = {}
        """,
    })
    assert findings == []


def test_loop_carried_read_is_stale_for_next_iteration():
    findings = run({
        "src/repro/svc/i.py": """
        import asyncio

        class Pool:
            async def drain(self):
                while True:
                    item = self._queue_head
                    await asyncio.sleep(0.1)
                    self._queue_head = item
        """,
    })
    assert [f.code for f in findings] == ["ASYNC001"]


def test_write_only_update_after_await_is_clean():
    """Publishing into shared state without a prior read is not an RMW."""
    findings = run({
        "src/repro/svc/j.py": """
        import asyncio

        class Cluster:
            async def start(self):
                built = {}
                built["x"] = await asyncio.sleep(0.1)
                self.peers = built
        """,
    })
    assert findings == []


def test_observability_attrs_are_exempt():
    findings = run({
        "src/repro/svc/k.py": """
        import asyncio

        class Node:
            async def tick(self):
                count = self.stats
                await asyncio.sleep(0.1)
                self.stats = count
        """,
    })
    assert findings == []


def test_nested_handler_closure_is_analyzed():
    """Nested async defs are invisible to the call graph but not to aio."""
    findings = run({
        "src/repro/svc/m.py": """
        import asyncio

        class Server:
            def handler(self):
                async def handle(reader, writer):
                    backlog = self._backlog
                    await asyncio.sleep(0.1)
                    self._backlog = backlog + 1
                return handle
        """,
    })
    assert [f.code for f in findings] == ["ASYNC001"]


def test_finding_has_structural_anchor():
    findings = run({
        "src/repro/svc/n.py": """
        import asyncio

        class Registry:
            async def bump(self):
                count = self._count
                await asyncio.sleep(0.1)
                self._count = count + 1
        """,
    })
    assert findings[0].fingerprint.endswith(
        "::ASYNC001::repro.svc.n:Registry.bump._count"
    )
