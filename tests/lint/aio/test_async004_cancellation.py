"""ASYNC004: resources acquired then awaited without guaranteed release."""

import textwrap

from repro.lint import lint_sources


def run(text, path="src/repro/svc/conn.py"):
    return lint_sources({path: textwrap.dedent(text)}, select=["ASYNC004"])


def test_writer_awaited_without_protection_is_flagged():
    findings = run("""
    import asyncio

    async def dial(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"hello")
        await writer.drain()
        return writer
    """)
    assert [f.code for f in findings] == ["ASYNC004"]
    assert "'writer'" in findings[0].message
    assert findings[0].line == 5


def test_try_finally_release_is_clean():
    findings = run("""
    import asyncio

    async def dial(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(b"hello")
            await writer.drain()
        finally:
            writer.close()
    """)
    assert findings == []


def test_except_close_and_reraise_is_clean():
    findings = run("""
    import asyncio

    async def dial(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(b"hello")
            await writer.drain()
        except BaseException:
            writer.close()
            raise
        return writer
    """)
    assert findings == []


def test_ownership_transfer_before_later_awaits_is_clean():
    """Once stored on self, later awaits are the owner's problem."""
    findings = run("""
    import asyncio

    class Pool:
        async def dial(self, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            self._writers[host] = writer
            await asyncio.sleep(0.1)
    """)
    assert findings == []


def test_no_awaits_after_acquisition_is_clean():
    findings = run("""
    import asyncio

    async def dial(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"hello")
        return writer
    """)
    assert findings == []


def test_lock_acquire_without_finally_is_flagged():
    findings = run("""
    import asyncio

    class Guard:
        def __init__(self):
            self._lock = asyncio.Lock()

        async def critical(self):
            ok = await self._lock.acquire()
            await asyncio.sleep(0.1)
            self._lock.release()
    """)
    assert [f.code for f in findings] == ["ASYNC004"]
    assert "lock" in findings[0].message
