"""ASYNC006: unbounded asyncio queues in ingest paths."""

import textwrap

from repro.lint import lint_sources


def run(text, path="src/repro/svc/ingest.py"):
    return lint_sources({path: textwrap.dedent(text)}, select=["ASYNC006"])


def test_default_queue_is_flagged():
    findings = run("""
    import asyncio

    class Ingest:
        def __init__(self):
            self._inbox = asyncio.Queue()
    """)
    assert [f.code for f in findings] == ["ASYNC006"]
    assert "maxsize" in findings[0].message


def test_explicit_zero_maxsize_is_flagged():
    findings = run("""
    import asyncio

    def make():
        return asyncio.Queue(maxsize=0), asyncio.PriorityQueue(0)
    """)
    assert [f.code for f in findings] == ["ASYNC006", "ASYNC006"]


def test_bounded_queue_is_clean():
    findings = run("""
    import asyncio

    def make(limit):
        return asyncio.Queue(maxsize=256), asyncio.Queue(limit)
    """)
    assert findings == []


def test_from_import_alias_is_resolved():
    findings = run("""
    from asyncio import Queue

    def make():
        return Queue()
    """)
    assert [f.code for f in findings] == ["ASYNC006"]


def test_non_asyncio_queue_is_clean():
    findings = run("""
    from queue import Queue

    def make():
        return Queue()
    """)
    assert findings == []
