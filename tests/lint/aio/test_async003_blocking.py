"""ASYNC003: event-loop-blocking calls reachable from async functions."""

import textwrap

from repro.lint import lint_sources


def run(sources):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=["ASYNC003"],
    )


def test_direct_time_sleep_in_async_is_flagged():
    findings = run({
        "src/repro/svc/block.py": """
        import time

        async def pause():
            time.sleep(1)
        """,
    })
    assert [f.code for f in findings] == ["ASYNC003"]
    assert "time.sleep" in findings[0].message


def test_time_sleep_in_sync_function_is_not_flagged():
    findings = run({
        "src/repro/svc/block.py": """
        import time

        def pause():
            time.sleep(1)
        """,
    })
    assert findings == []


def test_blocking_reached_through_sync_helper_is_flagged():
    """Interprocedural: the sleep is one sync hop below the async frame."""
    findings = run({
        "src/repro/svc/block.py": """
        import time

        def backoff():
            time.sleep(1)

        async def retry():
            backoff()
        """,
    })
    assert [(f.code, f.line) for f in findings] == [("ASYNC003", 8)]
    assert "backoff" in findings[0].message


def test_blocking_two_sync_hops_down_names_the_via_path():
    findings = run({
        "src/repro/svc/block.py": """
        import time

        def inner():
            time.sleep(1)

        def outer():
            inner()

        async def retry():
            outer()
        """,
    })
    assert [(f.code, f.line) for f in findings] == [("ASYNC003", 11)]
    assert "via inner" in findings[0].message


def test_async_callee_is_flagged_at_its_own_site_not_the_caller():
    findings = run({
        "src/repro/svc/block.py": """
        import time

        async def lower():
            time.sleep(1)

        async def upper():
            await lower()
        """,
    })
    assert [(f.code, f.line) for f in findings] == [("ASYNC003", 5)]


def test_open_is_flagged_only_in_async_frames():
    findings = run({
        "src/repro/svc/block.py": """
        def read_config(path):
            with open(path) as handle:
                return handle.read()

        async def load(path):
            with open(path) as handle:
                return handle.read()
        """,
    })
    assert [(f.code, f.line) for f in findings] == [("ASYNC003", 7)]


def test_subprocess_and_sync_http_are_covered():
    findings = run({
        "src/repro/svc/block.py": """
        import subprocess
        import urllib.request

        async def shell():
            subprocess.run(["ls"])

        async def fetch(url):
            urllib.request.urlopen(url)
        """,
    })
    assert sorted(f.line for f in findings) == [6, 9]
