"""SARIF coverage for the ASYNC rules: golden shape, fingerprint
stability under line insertion, and a three-stage end-to-end run."""

import io
import json
import textwrap

from repro.lint import lint_sources
from repro.lint.cli import main
from repro.lint.reporters import report_sarif

RACY = {
    "src/repro/svc/conn.py": """
    import asyncio

    class Pool:
        async def bump(self):
            count = self._count
            await asyncio.sleep(0.1)
            self._count = count + 1

        async def spawn(self, worker):
            asyncio.create_task(worker())

        def __init__(self):
            self._inbox = asyncio.Queue()
    """,
}

#: The same module with unrelated lines inserted above every finding.
RACY_SHIFTED = {
    "src/repro/svc/conn.py": """
    import asyncio

    BANNER = "zugchain"
    VERSION = 3

    class Pool:
        async def bump(self):
            count = self._count
            await asyncio.sleep(0.1)
            self._count = count + 1

        async def spawn(self, worker):
            asyncio.create_task(worker())

        def __init__(self):
            self._inbox = asyncio.Queue()
    """,
}


def sarif_for(sources, select=None, stages=None):
    findings = lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=select,
        stages=stages,
    )
    buffer = io.StringIO()
    report_sarif(findings, buffer)
    return findings, json.loads(buffer.getvalue())


def test_async_rules_appear_in_sarif_driver_metadata():
    _findings, doc = sarif_for(RACY)
    driver = doc["runs"][0]["tool"]["driver"]
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {f"ASYNC00{n}" for n in range(1, 7)} <= rule_ids


def test_golden_sarif_results_for_async_findings():
    findings, doc = sarif_for(RACY, select=["ASYNC001", "ASYNC002", "ASYNC006"])
    assert sorted(f.code for f in findings) == ["ASYNC001", "ASYNC002", "ASYNC006"]
    results = doc["runs"][0]["results"]
    golden = [
        (
            "ASYNC001",
            "src/repro/svc/conn.py",
            "src/repro/svc/conn.py::ASYNC001::repro.svc.conn:Pool.bump._count",
        ),
        (
            "ASYNC002",
            "src/repro/svc/conn.py",
            "src/repro/svc/conn.py::ASYNC002::repro.svc.conn:spawn.spawn",
        ),
        (
            "ASYNC006",
            "src/repro/svc/conn.py",
            "src/repro/svc/conn.py::ASYNC006::repro.svc.conn:__init__.queue",
        ),
    ]
    rendered = sorted(
        (
            result["ruleId"],
            result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            result["partialFingerprints"]["zuglint/fingerprint"],
        )
        for result in results
    )
    assert rendered == golden


def test_partial_fingerprints_survive_line_insertion():
    """Anchored fingerprints identify the same logical findings after edits."""
    _f1, doc1 = sarif_for(RACY, stages=["aio"])
    _f2, doc2 = sarif_for(RACY_SHIFTED, stages=["aio"])

    def prints(doc):
        return sorted(
            result["partialFingerprints"]["zuglint/fingerprint"]
            for result in doc["runs"][0]["results"]
        )

    assert prints(doc1) == prints(doc2)
    lines1 = [r["locations"][0]["physicalLocation"]["region"]["startLine"]
              for r in doc1["runs"][0]["results"]]
    lines2 = [r["locations"][0]["physicalLocation"]["region"]["startLine"]
              for r in doc2["runs"][0]["results"]]
    assert lines1 != lines2  # the physical locations did move


def test_end_to_end_three_stage_sarif_run(tmp_path):
    """--format sarif over a tree with ast, flow, and aio findings."""
    target = tmp_path / "src" / "repro" / "svc" / "mixed.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent("""
    import time
    import asyncio

    def now_us():
        return int(time.time() * 1e6)

    class Stamp:
        def encode(self, writer):
            writer.put_uint(now_us())
            return writer.getvalue()

    class Registry:
        async def bump(self):
            count = self._count
            await asyncio.sleep(0.1)
            self._count = count + 1
    """))
    out_path = tmp_path / "lint.sarif"
    code = main(
        ["--format", "sarif", "--output", str(out_path), str(target)],
        stream=io.StringIO(),
    )
    assert code == 1
    doc = json.loads(out_path.read_text())
    codes = {result["ruleId"] for result in doc["runs"][0]["results"]}
    assert any(c.startswith("DET") for c in codes)      # ast stage
    assert any(c.startswith("FLOW") for c in codes)     # flow stage
    assert "ASYNC001" in codes                          # aio stage
