"""PROTO00x rules: one triggering and one clean fixture per code."""

import textwrap

from repro.lint import lint_sources


def run(sources, select=None):
    return lint_sources(
        {path: textwrap.dedent(source) for path, source in sources.items()},
        select=select,
    )


def codes(findings):
    return [finding.code for finding in findings]


MESSAGE_MODULE = "src/repro/export/messages.py"
TAG_TABLE = "src/repro/wire/tags.py"


# --- PROTO001: codec class never registered ------------------------------

def test_proto001_flags_unregistered_codec_class():
    findings = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()

            class _Scaffold:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            WIRE_TAGS = {1: Pong}

            for _tag, _cls in WIRE_TAGS.items():
                register_message_type(_tag, _cls)
            """,
        },
        select=["PROTO001"],
    )
    # Ping is flagged; the private _Scaffold helper is not.
    assert codes(findings) == ["PROTO001"]
    assert "Ping" in findings[0].message


def test_proto001_clean_when_registered_and_without_registry_in_view():
    registered = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            WIRE_TAGS = {1: Ping}
            register_message_type(1, Ping)
            """,
        },
        select=["PROTO001"],
    )
    assert not registered
    # Single-file run without the tag table in scope: rule stays silent
    # instead of flagging every message class.
    partial = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """
        },
        select=["PROTO001"],
    )
    assert not partial


def test_proto001_understands_loop_driven_registration_tables():
    # The driven idiom with a non-canonical table name: the loop feeding
    # register_message_type makes every table entry a registration fact.
    findings = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()

            class Orphan:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            _TABLE = {1: Ping}

            for _tag, _cls in _TABLE.items():
                register_message_type(_tag, _cls)
            """,
        },
        select=["PROTO001"],
    )
    assert codes(findings) == ["PROTO001"]
    assert "Orphan" in findings[0].message


def test_proto001_understands_comprehension_driven_registration():
    findings = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            _TABLE = {1: Ping}

            [register_message_type(tag, cls) for tag, cls in _TABLE.items()]
            """,
        },
        select=["PROTO001"],
    )
    assert not findings


def test_proto001_ignores_tables_never_fed_to_the_registrar():
    # A dict of classes that is NOT consumed by a registration loop must
    # not count as registrations (it would silence real findings).
    findings = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()

            class Pong:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            _DISPLAY_NAMES = {1: Pong}

            register_message_type(1, Ping)
            """,
        },
        select=["PROTO001"],
    )
    assert codes(findings) == ["PROTO001"]
    assert "Pong" in findings[0].message


def test_proto001_understands_enumerate_driven_computed_tags():
    # Dynamic wire-type registration: tags computed from a range base over
    # a plain class sequence.  The tags are unknowable statically, but the
    # classes are registered and must not be flagged.
    findings = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()

            class Pong:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()

            class Orphan:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            BASE_TAG = 0x40

            MESSAGE_TYPES = [Ping, Pong]

            for _offset, _cls in enumerate(MESSAGE_TYPES):
                register_message_type(BASE_TAG + _offset, _cls)
            """,
        },
        select=["PROTO001"],
    )
    assert codes(findings) == ["PROTO001"]
    assert "Orphan" in findings[0].message


def test_proto001_understands_zip_driven_registration():
    findings = run(
        {
            MESSAGE_MODULE: """
            class Ping:
                def encode(self):
                    return b""

                @classmethod
                def decode(cls, data):
                    return cls()
            """,
            TAG_TABLE: """
            _TAGS = [0x41]
            _CLASSES = (Ping,)

            [register_message_type(tag, cls)
             for tag, cls in zip(_TAGS, _CLASSES)]
            """,
        },
        select=["PROTO001"],
    )
    assert not findings


def test_registrations_yield_none_tags_for_computed_ranges():
    import textwrap as _textwrap

    from repro.lint.engine import FileContext
    from repro.lint.rules.protocol import _registrations

    ctx = FileContext.parse(TAG_TABLE, _textwrap.dedent("""
        MESSAGE_TYPES = (Ping, Pong)

        for offset, cls in enumerate(MESSAGE_TYPES, start=0x20):
            register_message_type(offset, cls)
    """))
    facts = list(_registrations(ctx))
    assert sorted(name for _tag, name, _line in facts) == ["Ping", "Pong"]
    assert all(tag is None for tag, _name, _line in facts)


def test_registrations_yield_table_facts_not_loop_variables():
    import textwrap as _textwrap

    from repro.lint.engine import FileContext
    from repro.lint.rules.protocol import _registrations

    ctx = FileContext.parse(TAG_TABLE, _textwrap.dedent("""
        _TABLE = {1: Ping, 2: Pong}

        for _tag, _cls in _TABLE.items():
            register_message_type(_tag, _cls)
    """))
    facts = list(_registrations(ctx))
    assert sorted(name for _tag, name, _line in facts) == ["Ping", "Pong"]
    assert sorted(tag for tag, _name, _line in facts) == [1, 2]


# --- PROTO002: duplicate wire tags ---------------------------------------

def test_proto002_flags_same_tag_for_two_classes():
    within_table = run(
        {TAG_TABLE: "WIRE_TAGS = {1: Ping, 1: Pong}\n"},
        select=["PROTO002"],
    )
    assert codes(within_table) == ["PROTO002"]
    assert "tag 1" in within_table[0].message

    across_files = run(
        {
            "src/repro/wire/tags.py": "register_message_type(5, Ping)\n",
            "src/repro/export/extra_tags.py": "register_message_type(5, Pong)\n",
        },
        select=["PROTO002"],
    )
    assert codes(across_files) == ["PROTO002"]


def test_proto002_clean_for_unique_and_idempotent_tags():
    assert not run(
        {
            "src/repro/wire/tags.py": "WIRE_TAGS = {1: Ping, 2: Pong}\n",
            "src/repro/export/extra_tags.py": "register_message_type(1, Ping)\n",
        },
        select=["PROTO002"],
    )


# --- PROTO003: swallowed exceptions --------------------------------------

def test_proto003_flags_bare_except_and_silent_handler():
    findings = run(
        {
            "src/repro/core/node.py": """
            def on_request(node, raw):
                try:
                    node.deliver(raw)
                except Exception:
                    pass

            def probe(node):
                try:
                    node.poke()
                except:
                    return None
            """
        },
        select=["PROTO003"],
    )
    assert codes(findings) == ["PROTO003", "PROTO003"]
    assert "on_request" in findings[0].message


def test_proto003_clean_for_narrow_or_handled_exceptions():
    assert not run(
        {
            "src/repro/core/node.py": """
            def on_request(node, raw):
                try:
                    node.deliver(raw)
                except ValueError:
                    pass

            def probe(node, log):
                try:
                    node.poke()
                except Exception as exc:
                    log.warning("poke failed: %s", exc)
                    raise
            """
        },
        select=["PROTO003"],
    )


# --- PROTO004: mutable default arguments ---------------------------------

def test_proto004_flags_mutable_defaults():
    findings = run(
        {
            "src/repro/core/layer.py": """
            def enqueue(item, queue=[], index={}, seen=set()):
                queue.append(item)
            """
        },
        select=["PROTO004"],
    )
    assert codes(findings) == ["PROTO004"] * 3


def test_proto004_clean_for_immutable_defaults():
    assert not run(
        {
            "src/repro/core/layer.py": """
            def enqueue(item, queue=None, links=(), name="mvb0"):
                if queue is None:
                    queue = []
                queue.append(item)
            """
        },
        select=["PROTO004"],
    )


# --- PROTO005: encoded_size drift ----------------------------------------

def test_proto005_flags_literal_arithmetic_in_encoded_size():
    findings = run(
        {
            "src/repro/core/messages.py": """
            class Wrapper:
                def encode(self):
                    return self.request.encode()

                def decode(self):
                    return self

                def encoded_size(self):
                    return self.request.encoded_size() + 1
            """
        },
        select=["PROTO005"],
    )
    assert codes(findings) == ["PROTO005"]


def test_proto005_clean_when_derived_from_the_codec():
    assert not run(
        {
            "src/repro/core/messages.py": """
            class Wrapper:
                def encode(self):
                    return self.request.encode()

                def decode(self):
                    return self

                def encoded_size(self):
                    return len(self.encode())
            """
        },
        select=["PROTO005"],
    )


def test_proto005_ignores_classes_without_a_codec():
    # Hand arithmetic is fine when there is no encode() to drift from.
    assert not run(
        {
            "src/repro/sim/resources.py": """
            class Budget:
                def encoded_size(self):
                    return self.base + 1
            """
        },
        select=["PROTO005"],
    )
