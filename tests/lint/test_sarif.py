"""SARIF 2.1.0 reporter: structural validity and CLI --output wiring."""

import io
import json
import textwrap

from repro.lint import lint_sources
from repro.lint.cli import main
from repro.lint.reporters import report_sarif

CRATE = {
    "src/repro/core/stamp.py": """
    import time

    def _now_us():
        return int(time.time() * 1e6)

    class Stamp:
        def encode(self, writer):
            writer.put_uint(_now_us())
            return writer.getvalue()
    """,
}


def sarif_for(sources, select=None):
    findings = lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=select,
    )
    buffer = io.StringIO()
    report_sarif(findings, buffer)
    return findings, json.loads(buffer.getvalue())


def test_sarif_document_shape():
    findings, doc = sarif_for(CRATE, select=["FLOW001"])
    assert findings
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    assert len(doc["runs"]) == 1
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "zuglint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert len(rule_ids) == len(set(rule_ids))
    assert {"FLOW001", "FLOW002", "FLOW003", "FLOW004"} <= set(rule_ids)
    for rule in driver["rules"]:
        assert rule["name"]
        assert rule["shortDescription"]["text"]


def test_sarif_results_carry_locations_and_fingerprints():
    findings, doc = sarif_for(CRATE, select=["FLOW001"])
    results = doc["runs"][0]["results"]
    assert len(results) == len(findings)
    rule_ids = {rule["id"] for rule in doc["runs"][0]["tool"]["driver"]["rules"]}
    expected_fingerprints = {finding.fingerprint for finding in findings}
    for result in results:
        assert result["ruleId"] in rule_ids
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/stamp.py"
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1
        assert result["partialFingerprints"]["zuglint/fingerprint"] in expected_fingerprints


def test_sarif_empty_run_is_valid():
    _findings, doc = sarif_for({"src/repro/core/empty.py": "X = 1\n"})
    assert doc["runs"][0]["results"] == []


def test_cli_output_writes_sarif_file(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "clock.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\n\n\ndef now():\n    return time.time()\n")
    out_path = tmp_path / "lint.sarif"
    stream = io.StringIO()
    code = main(
        ["--format", "sarif", "--output", str(out_path), str(target)],
        stream=stream,
    )
    assert code == 1  # findings were reported even though stdout got none
    assert str(out_path) in stream.getvalue()
    doc = json.loads(out_path.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]


def test_cli_output_clean_file_exits_zero(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("X = 1\n")
    out_path = tmp_path / "lint.sarif"
    code = main(
        ["--format", "sarif", "--output", str(out_path), str(target)],
        stream=io.StringIO(),
    )
    assert code == 0
    assert json.loads(out_path.read_text())["runs"][0]["results"] == []
