"""CLI contract: exit codes 0/1/2, formats, baseline handling."""

import io
import json
import textwrap

import pytest

from repro.lint import all_rules
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, build_parser, main

CLEAN = "def stamp(env):\n    return env.now()\n"
DIRTY = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, stream=out)
    return code, out.getvalue()


def test_exit_zero_on_clean_tree(tmp_path):
    (tmp_path / "clean.py").write_text(CLEAN, encoding="utf-8")
    code, output = run_cli([str(tmp_path)])
    assert code == EXIT_CLEAN
    assert "clean" in output


def test_exit_one_on_findings(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    code, output = run_cli([str(tmp_path)])
    assert code == EXIT_FINDINGS
    assert "DET001" in output


def test_exit_two_on_usage_errors(tmp_path):
    assert run_cli([])[0] == EXIT_USAGE
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    assert run_cli(["--select", "NOPE999", str(tmp_path)])[0] == EXIT_USAGE
    assert run_cli(["does/not/exist.py"])[0] == EXIT_USAGE


def test_json_format(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    code, output = run_cli(["--format", "json", str(tmp_path)])
    assert code == EXIT_FINDINGS
    payload = json.loads(output)
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "DET001"
    assert payload["findings"][0]["fingerprint"].endswith("::DET001::5")


def test_baseline_roundtrip(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    baseline = tmp_path / "baseline.json"

    code, _ = run_cli(["--baseline", str(baseline), "--write-baseline", str(tmp_path)])
    assert code == EXIT_CLEAN
    assert json.loads(baseline.read_text())["suppressed"]

    # Absorbed by the baseline → clean; without it → findings again.
    assert run_cli(["--baseline", str(baseline), str(tmp_path)])[0] == EXIT_CLEAN
    assert run_cli([str(tmp_path)])[0] == EXIT_FINDINGS


def test_malformed_baseline_is_usage_error(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("[]", encoding="utf-8")
    assert run_cli(["--baseline", str(baseline), str(tmp_path)])[0] == EXIT_USAGE


def test_list_rules_names_every_code():
    code, output = run_cli(["--list-rules"])
    assert code == EXIT_CLEAN
    for rule in all_rules():
        assert rule.code in output


def test_help_documents_usage_contract():
    """`--help` text and README agree on the invocation and exit codes."""
    parser = build_parser()
    text = " ".join(parser.format_help().split())  # undo argparse line wrapping
    assert "repro-lint" in text
    assert "zuglint" in text
    assert "0 clean" in text and "1 findings" in text and "2 usage error" in text
    assert "zuglint: disable=CODE" in text.replace("disable- file", "disable-file")


def test_help_flag_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    capsys.readouterr()
