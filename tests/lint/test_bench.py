"""repro.lint.bench: per-stage timing behind ``repro bench --suite lint``."""

import textwrap

from repro.lint.bench import measure_lint_stages
from repro.lint.engine import STAGES


def test_measures_every_stage_twice(tmp_path):
    crate = tmp_path / "src" / "repro" / "core"
    crate.mkdir(parents=True)
    (crate / "crate.py").write_text(textwrap.dedent("""
        def handle(node, message):
            return node.deliver(message)
    """))
    (tmp_path / "broken.py").write_text("def nope(:\n")

    ticks = iter(range(1000))
    report = measure_lint_stages([str(tmp_path)], timer=lambda: float(next(ticks)))

    assert report["files"] == 1  # the syntax error is skipped, not fatal
    assert report["parse_s"] >= 0
    assert list(report["stages"]) == list(STAGES)
    for times in report["stages"].values():
        assert times["standalone_s"] >= 0
        assert times["shared_s"] >= 0
        assert times["findings"] >= 0
