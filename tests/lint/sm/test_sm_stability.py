"""SM fingerprint stability and the four-stage SARIF end-to-end run.

SM findings anchor to structural identities (function key + the
gate/attr/exception involved), so their fingerprints must survive the
two edits that invalidate line-number fingerprints: inserting unrelated
lines above the finding and reordering the files of the run.
"""

import io
import json
import textwrap

from repro.lint import lint_sources
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main

CRATE = {
    "src/repro/bft/crate.py": """
    class Vote:
        pass

    class Commit:
        pass

    class Replica:
        def on_message(self, src, message):
            if isinstance(message, Vote):
                self._on_vote(message)
            elif isinstance(message, Commit):
                self._on_commit(message)

        def _on_vote(self, message):
            self.votes[message.replica_id] = message
            if len(self.votes) >= 3:
                self._decide()

        def _on_commit(self, message):
            if not message.verify(self.keystore):
                return
            instance = self.instances[message.seq]
            instance.prepared = True

        def _decide(self):
            pass
    """,
    "src/repro/core/crate.py": """
    class ChainError(Exception):
        pass

    class Submit:
        pass

    class Query:
        pass

    class Node:
        def handle_message(self, src, message):
            if isinstance(message, Submit):
                self._on_submit(message)
            elif isinstance(message, Query):
                self._on_query(message)

        def _on_submit(self, message):
            if message.height != self.height + 1:
                raise ChainError("height gap")
            self.height = message.height

        def _on_query(self, message):
            self.served += 1
    """,
}

SELECT = ["SM001", "SM003", "SM006"]


def run(sources, select=SELECT):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=select,
    )


def fingerprints(sources):
    return sorted(finding.fingerprint for finding in run(sources))


def test_crate_produces_one_finding_per_selected_sm_rule():
    codes = sorted(finding.code for finding in run(CRATE))
    assert codes == SELECT


def test_sm_fingerprints_survive_unrelated_line_insertion():
    baseline = fingerprints(CRATE)
    padded = {
        path: "# padding\n# more padding\n\n" + textwrap.dedent(text)
        for path, text in CRATE.items()
    }
    shifted = sorted(
        finding.fingerprint
        for finding in lint_sources(padded, select=SELECT)
    )
    assert shifted == baseline
    # The raw line numbers DID move — the anchors are doing the work.
    assert {f.line for f in run(CRATE)} != {
        f.line for f in lint_sources(padded, select=SELECT)
    }


def test_sm_fingerprints_survive_file_reordering():
    items = [(path, textwrap.dedent(text)) for path, text in CRATE.items()]
    forward = sorted(f.fingerprint for f in lint_sources(items, select=SELECT))
    backward = sorted(
        f.fingerprint for f in lint_sources(items[::-1], select=SELECT)
    )
    assert forward == backward


def test_sm_findings_round_trip_through_baseline_file(tmp_path):
    findings = run(CRATE)
    assert findings
    baseline_path = str(tmp_path / "lint-baseline.json")
    write_baseline(baseline_path, findings)
    suppressed = load_baseline(baseline_path)
    assert suppressed == {finding.fingerprint for finding in findings}
    assert apply_baseline(findings, suppressed) == []
    padded = {
        path: "# padding\n" + textwrap.dedent(text)
        for path, text in CRATE.items()
    }
    assert apply_baseline(lint_sources(padded, select=SELECT), suppressed) == []


def test_end_to_end_four_stage_sarif_run(tmp_path):
    """--format sarif over a tree with ast, flow, aio, and sm findings."""
    target = tmp_path / "src" / "repro" / "bft" / "mixed.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent("""
    import time
    import asyncio

    def now_us():
        return int(time.time() * 1e6)

    class Stamp:
        def encode(self, writer):
            writer.put_uint(now_us())
            return writer.getvalue()

    class Registry:
        async def bump(self):
            count = self._count
            await asyncio.sleep(0.1)
            self._count = count + 1

    class Ping:
        pass

    class Pong:
        pass

    class Counter:
        def on_message(self, src, message):
            if isinstance(message, Ping):
                self._on_ping(message)
            elif isinstance(message, Pong):
                self._on_pong(message)

        def _on_ping(self, message):
            self.votes[message.replica_id] = message
            if len(self.votes) >= 3:
                self.decided = len(self.votes)

        def _on_pong(self, message):
            self.pongs += 1
    """))
    out_path = tmp_path / "lint.sarif"
    code = main(
        ["--format", "sarif", "--output", str(out_path), str(target)],
        stream=io.StringIO(),
    )
    assert code == 1
    doc = json.loads(out_path.read_text())
    codes = {result["ruleId"] for result in doc["runs"][0]["results"]}
    assert any(c.startswith("DET") for c in codes)      # ast stage
    assert any(c.startswith("FLOW") for c in codes)     # flow stage
    assert "ASYNC001" in codes                          # aio stage
    assert "SM001" in codes                             # sm stage
    # Every SM result carries an anchored partial fingerprint.
    sm_results = [r for r in doc["runs"][0]["results"]
                  if r["ruleId"].startswith("SM")]
    assert sm_results
    for result in sm_results:
        assert "::SM" in result["partialFingerprints"]["zuglint/fingerprint"]
