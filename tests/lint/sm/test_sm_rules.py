"""SM001–SM006: positive and negative crates for every rule.

Each crate is a small replica-shaped module lint_sources maps into the
``repro.bft`` namespace; per the ISSUE, the suite includes a deliberately
broken quorum (``>= self.config.f``) and a duplicate-signer count
(``len`` over a ``tuple`` of votes) that the stage must flag.
"""

import textwrap

from repro.lint import lint_sources


def run(sources, select):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()},
        select=list(select),
    )


def codes_and_anchors(findings):
    return sorted((f.code, f.anchor) for f in findings)


# -- SM001: quorum-threshold provenance ----------------------------------------

QUORUM_CRATE = """
class Vote:
    pass

class Commit:
    pass

class Checkpoint:
    pass

class Replica:
    def on_message(self, src, message):
        if isinstance(message, Vote):
            self._on_vote(message)
        elif isinstance(message, Commit):
            self._on_commit(message)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(message)

    def _on_vote(self, message):
        self.votes[message.replica_id] = message
        if len(self.votes) >= 3:
            self._decide()

    def _on_commit(self, message):
        self.commits[message.replica_id] = message
        if len(self.commits) >= self.config.f:
            self._decide()

    def _on_checkpoint(self, message):
        quorum = 2 * self.config.f + 1
        self.checkpoints[message.replica_id] = message
        if len(self.checkpoints) >= quorum:
            self._decide()

    def _decide(self):
        pass
"""

SAFE_QUORUM_CRATE = """
class Vote:
    pass

class Reply:
    pass

class Replica:
    def on_message(self, src, message):
        if isinstance(message, Vote):
            self._on_vote(message)
        elif isinstance(message, Reply):
            self._on_reply(message)

    def _on_vote(self, message):
        self.votes[message.replica_id] = message
        if len(self.votes) >= self.config.quorum:
            self._decide()

    def _on_reply(self, message):
        self.replies[message.replica_id] = message
        if len(self.replies) >= self.config.f + 1:
            self._decide()
        if len(self.replies) > self.config.f:
            self._note()

    def _decide(self):
        pass

    def _note(self):
        pass
"""


def test_sm001_flags_literal_bare_f_and_rederived_thresholds():
    findings = run({"src/repro/bft/crate.py": QUORUM_CRATE}, ["SM001"])
    anchors = sorted(f.anchor for f in findings)
    assert anchors == [
        "repro.bft.crate:Replica._on_checkpoint#checkpoints>=quorum",
        "repro.bft.crate:Replica._on_commit#commits>=self.config.f",
        "repro.bft.crate:Replica._on_vote#votes>=3",
    ]
    by_anchor = {f.anchor: f.message for f in findings}
    assert "raw integer literal" in by_anchor[
        "repro.bft.crate:Replica._on_vote#votes>=3"]
    assert "off-by-one" in by_anchor[
        "repro.bft.crate:Replica._on_commit#commits>=self.config.f"]
    assert "re-derived" in by_anchor[
        "repro.bft.crate:Replica._on_checkpoint#checkpoints>=quorum"]


def test_sm001_accepts_config_derived_thresholds():
    findings = run({"src/repro/bft/crate.py": SAFE_QUORUM_CRATE}, ["SM001"])
    assert findings == []


def test_sm001_ignores_non_protocol_modules():
    findings = run({"src/repro/sim/crate.py": QUORUM_CRATE}, ["SM001"])
    assert findings == []


# -- SM002: signer-set dedup ----------------------------------------------------

DEDUP_CRATE = """
class Vote:
    pass

class CommitCert:
    votes: tuple[Vote, ...] = ()

    def verify(self, keystore, config):
        for vote in self.votes:
            if not vote.verify(keystore):
                return False
        return len(self.votes) >= config.quorum

class SafeCert:
    votes: tuple[Vote, ...] = ()

    def verify(self, keystore, config):
        signers = set()
        for vote in self.votes:
            if not vote.verify(keystore):
                return False
            signers.add(vote.replica_id)
        return len(signers) >= config.quorum
"""


def test_sm002_flags_duplicate_admitting_vote_tuple():
    findings = run({"src/repro/bft/crate.py": DEDUP_CRATE}, ["SM002"])
    assert codes_and_anchors(findings) == [
        ("SM002", "repro.bft.crate:CommitCert.verify#dedup:votes"),
    ]
    assert "duplicate votes" in findings[0].message


def test_sm002_accepts_distinct_signer_sets():
    findings = run({"src/repro/bft/crate.py": DEDUP_CRATE}, ["SM002"])
    assert all("SafeCert" not in f.anchor for f in findings)


def test_sm002_accepts_per_sender_dict_counts():
    crate = """
    class Vote:
        pass

    class Tally:
        def __init__(self):
            self.votes = {}

        def decided(self, config):
            return len(self.votes) >= config.quorum
    """
    assert run({"src/repro/bft/crate.py": crate}, ["SM002"]) == []


# -- SM003: phase-transition safety ---------------------------------------------

PHASE_CRATE = """
class Prepare:
    pass

class Commit:
    pass

class Cert:
    pass

class Replica:
    def on_message(self, src, message):
        if isinstance(message, Prepare):
            self._on_prepare(message)
        elif isinstance(message, Commit):
            self._on_commit(message)
        elif isinstance(message, Cert):
            self._on_cert(message)

    def _on_prepare(self, message):
        if not message.verify(self.keystore):
            return
        instance = self.instances[message.seq]
        instance.prepares[message.replica_id] = message
        instance.prepared = True

    def _on_commit(self, message):
        if not message.verify(self.keystore):
            return
        instance = self.instances[message.seq]
        instance.commits[message.replica_id] = message
        if len(instance.commits.values()) >= self.config.quorum:
            instance.committed = True

    def _on_cert(self, cert):
        if not self._cert_ok(cert):
            return
        self._apply(cert)

    def _cert_ok(self, cert):
        signers = {vote.replica_id for vote in cert.votes}
        return len(signers) >= self.config.quorum

    def _apply(self, cert):
        instance = self.instances[cert.seq]
        instance.certified = True
"""


def test_sm003_flags_phase_flip_behind_signature_check_only():
    # A verify() guard is NOT quorum evidence: _on_prepare flips .prepared
    # after only a signature check, with no quorum comparison anywhere.
    findings = run({"src/repro/bft/crate.py": PHASE_CRATE}, ["SM003"])
    assert codes_and_anchors(findings) == [
        ("SM003", "repro.bft.crate:Replica._on_prepare#phase:prepared"),
    ]
    assert "quorum check" in findings[0].message


def test_sm003_accepts_in_function_quorum_guard():
    findings = run({"src/repro/bft/crate.py": PHASE_CRATE}, ["SM003"])
    assert all("committed" not in f.anchor for f in findings)


def test_sm003_telescopes_through_quorum_checking_helpers():
    # _apply flips .certified unguarded, but its only call site sits behind
    # _cert_ok, which performs the quorum comparison.
    findings = run({"src/repro/bft/crate.py": PHASE_CRATE}, ["SM003"])
    assert all("certified" not in f.anchor for f in findings)


def test_sm003_stays_silent_with_opaque_callers():
    crate = """
    class Snapshot:
        pass

    class Installer:
        def _install(self, snapshot):
            snapshot.certified = True
    """
    assert run({"src/repro/bft/crate.py": crate}, ["SM003"]) == []


# -- SM004: view/seq monotonicity -----------------------------------------------

MONO_CRATE = """
class StatusMsg:
    pass

class ProbeMsg:
    pass

class Node:
    def on_message(self, src, message):
        if isinstance(message, StatusMsg):
            self._on_status(message)
        elif isinstance(message, ProbeMsg):
            self._on_probe(message)

    def _on_status(self, message):
        self.view = message.view
        if message.seq > self.next_seq:
            self.next_seq = message.seq
        self.high_seq = max(self.high_seq, message.seq)

    def _on_probe(self, message):
        self.next_seq += 1

    def enter_view(self, view):
        self.view = view
"""


def test_sm004_flags_unproved_view_assignment():
    findings = run({"src/repro/bft/crate.py": MONO_CRATE}, ["SM004"])
    assert codes_and_anchors(findings) == [
        ("SM004", "repro.bft.crate:Node._on_status#mono:view"),
    ]
    assert "not provably" in findings[0].message


def test_sm004_accepts_compare_guard_max_and_increment():
    findings = run({"src/repro/bft/crate.py": MONO_CRATE}, ["SM004"])
    anchors = {f.anchor for f in findings}
    assert not any("next_seq" in a or "high_seq" in a for a in anchors)


def test_sm004_sanctions_view_change_paths():
    findings = run({"src/repro/bft/crate.py": MONO_CRATE}, ["SM004"])
    assert all("enter_view" not in f.anchor for f in findings)


# -- SM005: integer-kind confusion ----------------------------------------------

KIND_CRATE = """
class SeqMsg:
    pass

class ViewMsg:
    pass

class Tracker:
    def on_message(self, src, message):
        if isinstance(message, SeqMsg):
            self._on_seq(message)
        elif isinstance(message, ViewMsg):
            self._on_view(message)

    def _on_seq(self, message):
        if message.seq == self.view:
            self.hits += 1

    def _on_view(self, message):
        if message.view >= self.view:
            self.view = message.view
        offset = message.seq - self.last_seq
        self.spread = offset
"""


def test_sm005_flags_seq_vs_view_comparison():
    findings = run({"src/repro/bft/crate.py": KIND_CRATE}, ["SM005"])
    assert codes_and_anchors(findings) == [
        ("SM005", "repro.bft.crate:Tracker._on_seq#kind:message.seq:self.view"),
    ]
    assert "seq" in findings[0].message and "view" in findings[0].message


def test_sm005_accepts_same_kind_compare_and_arithmetic():
    findings = run({"src/repro/bft/crate.py": KIND_CRATE}, ["SM005"])
    assert all("_on_view" not in f.anchor for f in findings)


# -- SM006: handler exception-escape --------------------------------------------

ESCAPE_CRATE = """
class ChainError(Exception):
    pass

class Submit:
    pass

class Query:
    pass

class Node:
    def handle_message(self, src, message):
        if isinstance(message, Submit):
            self._on_submit(message)
        elif isinstance(message, Query):
            self._on_query(message)

    def _on_submit(self, message):
        if not message.verify(self.keystore):
            raise ChainError("bad signature")
        self._append(message)

    def _append(self, message):
        if message.height != self.height + 1:
            raise ChainError("height gap")
        self.height = message.height

    def _on_query(self, message):
        try:
            self._append(message)
        except ChainError:
            self.rejected += 1
"""

SAFE_ESCAPE_CRATE = """
class ChainError(Exception):
    pass

class Submit:
    pass

class Query:
    pass

class Node:
    def handle_message(self, src, message):
        try:
            if isinstance(message, Submit):
                self._on_submit(message)
            elif isinstance(message, Query):
                self._on_query(message)
        except ChainError:
            self.rejected += 1

    def _on_submit(self, message):
        if not message.verify(self.keystore):
            raise ChainError("bad signature")

    def _on_query(self, message):
        raise ChainError("queries unsupported")
"""


def test_sm006_flags_raises_escaping_the_dispatch_path():
    findings = run({"src/repro/bft/crate.py": ESCAPE_CRATE}, ["SM006"])
    anchors = sorted(f.anchor for f in findings)
    assert anchors == [
        "repro.bft.crate:Node.handle_message"
        "#ChainError@repro.bft.crate:Node._append",
        "repro.bft.crate:Node.handle_message"
        "#ChainError@repro.bft.crate:Node._on_submit",
    ]
    assert all("crashes the node" in f.message for f in findings)


def test_sm006_accepts_catch_at_the_dispatch_boundary():
    findings = run({"src/repro/bft/crate.py": SAFE_ESCAPE_CRATE}, ["SM006"])
    assert findings == []


def test_sm006_local_catch_discharges_that_path():
    # _on_query wraps its _append call; only the _on_submit path leaks the
    # _append raise, so exactly one fact per (exception, origin) survives.
    findings = run({"src/repro/bft/crate.py": ESCAPE_CRATE}, ["SM006"])
    origins = [f.anchor.rsplit("@", 1)[1] for f in findings]
    assert origins.count("repro.bft.crate:Node._append") == 1
