"""State synchronization: a recovered node catches up (§III-D scenario ii, live)."""

import pytest

from repro.scenarios import ScenarioConfig, SimulatedCluster


def crash_and_recover(recover_at=20.0, crash_at=6.0, duration=45.0, retention=0.0):
    cluster = SimulatedCluster(ScenarioConfig(
        system="zugchain",
        retention_s=retention,
    ))
    cluster.kernel.schedule(crash_at, lambda: cluster.crash_node("node-3"))
    cluster.kernel.schedule(recover_at, lambda: cluster.recover_node("node-3"))
    result = cluster.run(duration_s=duration, warmup_s=0.0)
    return cluster, result


def test_recovered_node_catches_up_via_state_sync():
    cluster, result = crash_and_recover()
    lagging = cluster.nodes["node-3"]
    healthy = cluster.nodes["node-0"]
    assert lagging.statesync.syncs_completed >= 1
    # The recovered chain reaches (close to) the healthy chain's height and
    # verifies end to end.
    assert lagging.chain.height >= healthy.chain.height - 2
    lagging.chain.verify()
    # Hash agreement at a common height.
    common = min(lagging.chain.height, healthy.chain.height)
    assert lagging.chain.block_at(common).block_hash == healthy.chain.block_at(common).block_hash


def test_recovered_node_resumes_participation():
    cluster, result = crash_and_recover()
    lagging = cluster.nodes["node-3"].replica
    # After syncing, the replica's watermark moved to the checkpoint and it
    # decides new requests again.
    assert lagging.last_stable_seq > 0
    assert lagging.stats.decided > 0


def test_state_sync_across_pruned_chain():
    # The healthy nodes pruned (export); the recovering node receives the
    # pruned chain plus the delete certificate justifying its base.
    cluster, result = crash_and_recover(retention=10.0)
    lagging = cluster.nodes["node-3"]
    assert lagging.statesync.syncs_completed >= 1
    assert lagging.chain.base_height > 0
    assert lagging.chain.prune_certificate is not None
    lagging.chain.verify()


def test_no_spurious_sync_without_lag():
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"))
    cluster.run(duration_s=15.0, warmup_s=0.0)
    for node_id in cluster.ids:
        assert cluster.nodes[node_id].statesync.syncs_completed == 0


def test_single_liar_cannot_trigger_sync():
    from repro.bft.messages import Checkpoint
    from repro.crypto import HmacScheme

    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"))
    cluster.run(duration_s=5.0, warmup_s=0.0)
    node = cluster.nodes["node-1"]
    # One Byzantine peer claims an absurdly advanced checkpoint.
    pair = HmacScheme().derive_keypair(b"node-3")
    lie = Checkpoint(seq=10_000, block_height=1_000, block_hash=b"\x66" * 32,
                     state_digest=b"\x66" * 32, replica_id="node-3").signed(pair)
    node.statesync.observe_checkpoint("node-3", lie)
    node.statesync.observe_checkpoint("node-3", lie)  # same liar twice
    assert node.statesync._sync_in_flight is False  # needs f+1 distinct vouchers
