"""Full-stack integration of the LinearBFT backend."""

import pytest

from repro.faults import ByzantineSpec
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.util import ConfigError


def run_cluster(duration=12.0, **kwargs):
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain",
                                              bft_backend="linear", **kwargs))
    result = cluster.run(duration_s=duration, warmup_s=2.0)
    return cluster, result


def test_linear_backend_logs_every_cycle():
    cluster, result = run_cluster()
    assert result.requests_logged >= result.requests_expected - 1
    assert result.view_changes == 0
    heads = {cluster.nodes[i].chain.head.block_hash for i in cluster.ids}
    assert len(heads) == 1


def test_linear_backend_meets_jru_deadline():
    _, result = run_cluster()
    assert result.max_latency_s < 0.5
    assert result.cpu_utilization < 0.15


def test_linear_backend_survives_primary_crash():
    cluster, result = run_cluster(
        duration=20.0,
        byzantine={"node-0": ByzantineSpec(crash_at_s=8.0)},
    )
    assert result.view_changes >= 1
    survivors = [i for i in cluster.ids if i != "node-0"]
    assert max(len(cluster.nodes[i].latency.since(15.0)) for i in survivors) > 0
    heads = {cluster.nodes[i].chain.head.block_hash for i in survivors}
    assert len(heads) == 1


def test_linear_backend_checkpoints_support_export_path():
    cluster, _ = run_cluster()
    cert = cluster.nodes["node-1"].replica.latest_stable_checkpoint()
    assert cert is not None
    assert cert.verify(cluster.keystore, cluster.bft_config)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigError):
        ScenarioConfig(bft_backend="raft")
