"""Regressions for the verify-before-mutate fixes surfaced by the FLOW rules.

Each test pins one protocol-state write that used to happen before the
corresponding signature/membership check: a forged message must leave
the state exactly as it found it.
"""

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.linear import CommitCert, Vote
from repro.bft.messages import Checkpoint, PrePrepare
from repro.core.statesync import StateReply
from repro.crypto import HmacScheme
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()


def fresh_cluster(**overrides):
    return SimulatedCluster(ScenarioConfig(system="zugchain", **overrides))


def test_forged_preprepare_does_not_cancel_soft_timer():
    # The soft timeout is the §III-C liveness backstop: a request the
    # primary never orders gets broadcast after soft_timeout_s.  A forged
    # preprepare must not be able to suppress that forwarding.
    cluster = fresh_cluster()
    node = cluster.nodes["node-1"]
    request = Request(payload=b"signal" * 4, bus_cycle=1, recv_timestamp_us=10)
    node.inject_request(request)
    entry = node.layer._queue[request.digest]
    assert entry.soft_timer is not None

    outsider = SCHEME.derive_keypair(b"not-a-member")
    forged = PrePrepare(
        view=0, seq=1,
        request=SignedRequest.create(request, "node-0", outsider),
        primary_id="node-0",
    ).signed(outsider)
    node.handle_message("node-0", forged)
    assert entry.soft_timer is not None

    primary_pair = SCHEME.derive_keypair(b"node-0")
    genuine = PrePrepare(
        view=0, seq=1,
        request=SignedRequest.create(request, "node-0", primary_pair),
        primary_id="node-0",
    ).signed(primary_pair)
    node.handle_message("node-0", genuine)
    assert entry.soft_timer is None


def _bogus_reply():
    certificate = CheckpointCertificate(
        seq=4, block_height=100, block_hash=b"\x11" * 32,
        state_digest=b"\x22" * 32, signatures=(),
    )
    return StateReply(
        replica_id="node-0", checkpoint=certificate, blocks=(),
        prune_base_height=0, prune_base_hash=b"", prune_signatures=(),
    )


def test_forged_state_reply_does_not_clear_sync_latch():
    cluster = fresh_cluster()
    node = cluster.nodes["node-1"]
    node.statesync._sync_in_flight = True
    rejected_before = node.statesync.syncs_rejected

    node.handle_message("node-0", _bogus_reply())  # unsigned: outer verify fails
    assert node.statesync._sync_in_flight is True
    assert node.statesync.syncs_rejected == rejected_before + 1


def test_state_reply_with_invalid_certificate_does_not_clear_sync_latch():
    # Outer signature genuine, inner checkpoint certificate empty: the
    # latch (and the block builder) must still be untouched.
    cluster = fresh_cluster()
    node = cluster.nodes["node-1"]
    node.statesync._sync_in_flight = True
    pending_before = len(node.builder._pending)

    signed = _bogus_reply().signed(SCHEME.derive_keypair(b"node-0"))
    node.handle_message("node-0", signed)
    assert node.statesync._sync_in_flight is True
    assert node.statesync.syncs_completed == 0
    assert len(node.builder._pending) == pending_before


def test_non_member_checkpoint_cannot_vouch_for_sync():
    cluster = fresh_cluster()
    node = cluster.nodes["node-1"]
    outsider = SCHEME.derive_keypair(b"intruder-1")
    lie = Checkpoint(
        seq=10_000, block_height=1_000, block_hash=b"\x66" * 32,
        state_digest=b"\x66" * 32, replica_id="intruder-1",
    ).signed(outsider)
    node.statesync.observe_checkpoint("intruder-1", lie)
    assert "intruder-1" not in node.statesync._observed_ahead
    assert node.statesync._sync_in_flight is False


def test_forged_member_checkpoint_cannot_vouch_for_sync():
    cluster = fresh_cluster()
    node = cluster.nodes["node-1"]
    wrong_key = SCHEME.derive_keypair(b"someone-else")
    forged = Checkpoint(
        seq=10_000, block_height=1_000, block_hash=b"\x66" * 32,
        state_digest=b"\x66" * 32, replica_id="node-3",
    ).signed(wrong_key)
    node.statesync.observe_checkpoint("node-3", forged)
    assert "node-3" not in node.statesync._observed_ahead


def test_unverified_commit_cert_allocates_no_log_state():
    cluster = fresh_cluster(bft_backend="linear")
    replica = cluster.nodes["node-1"].replica
    outsider = SCHEME.derive_keypair(b"evil")
    vote = Vote(
        view=0, seq=7, digest=b"\x99" * 32, replica_id="node-0",
    ).signed(outsider)
    cert = CommitCert(view=0, seq=7, digest=b"\x99" * 32, votes=(vote,))
    replica.on_message("node-0", cert)
    assert 7 not in replica._instances


def test_linear_bft_messages_have_wire_tags():
    from repro.wire.tags import WIRE_TAGS

    assert WIRE_TAGS[18] is Vote
    assert WIRE_TAGS[19] is CommitCert
