"""Byzantine behaviour integration tests (Fig. 9 scenarios)."""

import pytest

from repro.faults import ByzantineSpec
from repro.scenarios import ScenarioConfig, SimulatedCluster


def run_cluster(duration=12.0, warmup=2.0, **kwargs):
    cluster = SimulatedCluster(ScenarioConfig(**kwargs))
    result = cluster.run(duration_s=duration, warmup_s=warmup)
    return cluster, result


def test_fabricating_backup_increases_load_but_stays_live():
    _, clean = run_cluster(system="zugchain")
    cluster, attacked = run_cluster(
        system="zugchain",
        byzantine={"node-3": ByzantineSpec(fabricate_per_cycle=1.0)},
    )
    # Fabricated requests are ordered (they carry the faulty node's id) and
    # increase latency/CPU, but the system keeps logging within bounds.
    assert attacked.mean_latency_s > clean.mean_latency_s
    assert attacked.cpu_utilization > clean.cpu_utilization
    assert attacked.max_latency_s < 0.5  # still within JRU bounds
    # Extra (fabricated) data is logged on top of the bus data.
    assert cluster.nodes["node-0"].requests_logged > attacked.requests_expected
    assert cluster.nodes["node-3"].fabricated > 0


def test_fabricated_requests_carry_faulty_node_id():
    cluster, _ = run_cluster(
        system="zugchain",
        byzantine={"node-3": ByzantineSpec(fabricate_per_cycle=0.5)},
    )
    chain = cluster.nodes["node-0"].chain
    origins = set()
    for height in range(chain.base_height + 1, chain.height + 1):
        for signed in chain.block_at(height).requests:
            if signed.request.source_link == "fabricated":
                origins.add(signed.node_id)
    assert origins == {"node-3"}


def test_rate_limiting_bounds_fabrication_impact():
    # With rate limiting the fabricator cannot blow the system up even at
    # 100 % of cycles — correct nodes drop the excess (§III-C iii).
    cluster, result = run_cluster(
        system="zugchain",
        byzantine={"node-3": ByzantineSpec(fabricate_per_cycle=1.0)},
        max_open_per_node=4,
    )
    limited = cluster.nodes["node-0"].layer.stats.broadcasts_rate_limited
    assert result.max_latency_s < 0.5
    assert result.view_changes == 0


def test_delaying_primary_stalls_until_soft_timeouts():
    _, clean = run_cluster(system="zugchain")
    cluster, delayed = run_cluster(
        system="zugchain",
        duration=15.0,
        byzantine={"node-0": ByzantineSpec(preprepare_delay_s=0.260)},
    )
    # Latency rises with the delay, but the soft timeout keeps requests
    # flowing without view changes (delayed decide still beats the hard
    # timeout).
    assert delayed.mean_latency_s > 3 * clean.mean_latency_s
    assert delayed.view_changes == 0
    assert delayed.requests_logged >= delayed.requests_expected - 2
    soft_timeouts = sum(cluster.nodes[i].layer.stats.soft_timeouts for i in cluster.ids)
    assert soft_timeouts > 0  # the delay exceeded the soft timeout


def test_duplicate_proposing_primary_is_deposed():
    cluster, result = run_cluster(
        system="zugchain",
        duration=15.0,
        byzantine={"node-0": ByzantineSpec(propose_duplicates=True)},
    )
    # Note: a duplicate only arises when the same payload is re-proposed;
    # the faulty layer skips filtering, so any bus redelivery/duplication
    # triggers ln. 17 suspicion. With a clean bus there may be none, so we
    # assert that the log itself never contains a payload twice.
    for node_id in ("node-1", "node-2", "node-3"):
        chain = cluster.nodes[node_id].chain
        digests = []
        for height in range(chain.base_height + 1, chain.height + 1):
            digests.extend(s.digest for s in chain.block_at(height).requests)
        assert len(digests) == len(set(digests))


def test_soft_timeout_ablation_under_delaying_primary():
    # Without the preprepare-cancel optimization the soft timeouts fire and
    # cause broadcasts; the system still works, with more network traffic.
    _, optimized = run_cluster(
        system="zugchain",
        byzantine={"node-0": ByzantineSpec(preprepare_delay_s=0.245)},
        duration=15.0,
    )
    _, unoptimized = run_cluster(
        system="zugchain",
        byzantine={"node-0": ByzantineSpec(preprepare_delay_s=0.245)},
        preprepare_cancels_soft=False,
        duration=15.0,
    )
    # 245 ms < soft timeout: with the optimization the arriving preprepare
    # cancels the soft timer just in time; without it, timeouts always fire.
    assert unoptimized.network_utilization >= optimized.network_utilization
    assert unoptimized.requests_logged >= unoptimized.requests_expected - 2
