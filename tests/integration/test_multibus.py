"""Multiple input sources (§III-C): two buses feeding the same group."""

import pytest

from repro.bus import BusConfig, GeneratorConfig, MvbMaster, TrainDynamicsGenerator
from repro.bus.nsdb import standard_jru_catalog
from repro.scenarios import ScenarioConfig, SimulatedCluster


def build_dual_bus_cluster(duration=12.0):
    """The standard cluster plus a second, slower MVB on every node."""
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"))
    second = MvbMaster(
        cluster.kernel,
        TrainDynamicsGenerator(
            cluster.nsdb,
            GeneratorConfig(seed_name="generator-2", target_payload_bytes=128),
            cluster.rng,
        ),
        BusConfig(cycle_time_s=0.128),
        cluster.rng,
    )
    for node_id, node in cluster.nodes.items():
        receiver = node.add_input_source("mvb1")
        second.attach(
            node_id,
            lambda cycle, node=node, receiver=receiver: node.on_bus_cycle_from(receiver, cycle),
        )
    second.start()
    result = cluster.run(duration_s=duration, warmup_s=2.0)
    return cluster, second, result


def test_both_sources_logged():
    cluster, second, result = build_dual_bus_cluster()
    chain = cluster.nodes["node-0"].chain
    links = set()
    for height in range(chain.base_height + 1, chain.height + 1):
        for signed in chain.block_at(height).requests:
            links.add(signed.request.source_link)
    assert links == {"mvb0", "mvb1"}


def test_second_bus_requests_counted():
    cluster, second, result = build_dual_bus_cluster()
    # mvb0 at 64 ms and mvb1 at 128 ms: logged ~= cycles0 + cycles1.
    logged = cluster.nodes["node-0"].requests_logged
    expected = cluster.master.cycles_emitted + second.cycles_emitted
    assert logged >= expected - 4


def test_identical_payloads_on_different_links_are_distinct():
    cluster, _, _ = build_dual_bus_cluster(duration=6.0)
    node = cluster.nodes["node-0"]
    with pytest.raises(ValueError):
        node.add_input_source("mvb1")  # duplicate link
    with pytest.raises(ValueError):
        node.add_input_source("mvb0")  # clashes with the primary link


def test_chains_stay_consistent_with_two_sources():
    cluster, _, result = build_dual_bus_cluster()
    heads = {cluster.nodes[i].chain.head.block_hash for i in cluster.ids}
    assert len(heads) == 1
    assert result.view_changes == 0
