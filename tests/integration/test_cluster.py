"""Full-stack integration tests: bus -> layer -> PBFT -> blockchain."""

import pytest

from repro.bus import ReceptionFaultConfig
from repro.scenarios import ScenarioConfig, SimulatedCluster


def run_cluster(duration=10.0, warmup=2.0, **kwargs):
    cluster = SimulatedCluster(ScenarioConfig(**kwargs))
    result = cluster.run(duration_s=duration, warmup_s=warmup)
    return cluster, result


def test_zugchain_logs_every_bus_cycle():
    cluster, result = run_cluster(system="zugchain")
    # One request per cycle, all ordered and logged exactly once.
    assert result.requests_logged in (result.requests_expected,
                                      result.requests_expected + 1)
    assert result.view_changes == 0


def test_zugchain_chains_identical_across_nodes():
    cluster, _ = run_cluster(system="zugchain")
    heads = {cluster.nodes[i].chain.head.block_hash for i in cluster.ids}
    assert len(heads) == 1
    for node_id in cluster.ids:
        cluster.nodes[node_id].chain.verify()


def test_zugchain_latency_meets_jru_deadline():
    # IEC 62625-style requirement: store within 500 ms of arrival.
    _, result = run_cluster(system="zugchain")
    assert result.max_latency_s < 0.5
    assert result.mean_latency_s < 0.050


def test_zugchain_cpu_within_shared_device_budget():
    # Paper claim: at most 15 % of the total (4-core) CPU resources.
    _, result = run_cluster(system="zugchain", cycle_time_s=0.032)
    assert result.cpu_utilization < 0.15


def test_baseline_orders_each_request_four_times():
    cluster, result = run_cluster(system="baseline")
    # Each replica decides ~4 copies per bus cycle.
    decided = cluster.nodes["node-0"].replica.stats.decided
    cycles = cluster.master.cycles_emitted
    assert decided > 3.3 * (cycles - 20)


def test_baseline_worse_on_every_axis_at_64ms():
    _, zug = run_cluster(system="zugchain")
    _, base = run_cluster(system="baseline")
    assert base.mean_latency_s > 1.5 * zug.mean_latency_s
    assert base.network_utilization > 3.0 * zug.network_utilization
    assert base.cpu_utilization > 2.5 * zug.cpu_utilization
    assert base.memory_mean_bytes > 1.3 * zug.memory_mean_bytes


def test_baseline_collapses_at_minimum_bus_cycle():
    _, zug = run_cluster(system="zugchain", cycle_time_s=0.032)
    _, base = run_cluster(system="baseline", cycle_time_s=0.032, duration=15.0)
    assert zug.mean_latency_s < 0.05
    assert base.mean_latency_s > 10 * zug.mean_latency_s


def test_bus_faults_do_not_lose_data():
    # Drops/corruption on one node's reception: the group still logs
    # everything any correct node received (R3).
    cluster, result = run_cluster(
        system="zugchain",
        duration=15.0,
        bus_faults={"node-1": ReceptionFaultConfig(drop_cycle_prob=0.2,
                                                   corrupt_frame_prob=0.05)},
    )
    # node-1 missing cycles must not reduce what is logged: the other three
    # nodes received them all.
    assert result.requests_logged >= result.requests_expected - 1
    heads = {cluster.nodes[i].chain.head.block_hash for i in cluster.ids}
    assert len(heads) == 1


def test_divergent_reception_logs_both_observations():
    # Corruption on node-2 makes it read different payloads: ZugChain logs
    # divergent observations too (they are real bus data, §III-B).
    cluster, result = run_cluster(
        system="zugchain",
        duration=15.0,
        bus_faults={"node-2": ReceptionFaultConfig(corrupt_frame_prob=0.3)},
    )
    corrupted = cluster.master.device_faults("node-2").frames_corrupted
    assert corrupted > 0
    # More requests logged than bus cycles: divergent copies are extra.
    assert result.requests_logged > result.requests_expected - 1
    assert result.view_changes == 0


def test_crash_of_one_node_does_not_stop_logging():
    from repro.faults import ByzantineSpec

    cluster, result = run_cluster(
        system="zugchain",
        duration=15.0,
        byzantine={"node-3": ByzantineSpec(crash_at_s=5.0)},
    )
    assert result.requests_logged >= result.requests_expected - 1
    surviving = [i for i in cluster.ids if i != "node-3"]
    heads = {cluster.nodes[i].chain.head.block_hash for i in surviving}
    assert len(heads) == 1


def test_primary_crash_triggers_view_change_and_recovery():
    from repro.faults import ByzantineSpec

    cluster, result = run_cluster(
        system="zugchain",
        duration=20.0,
        byzantine={"node-0": ByzantineSpec(crash_at_s=8.0)},
    )
    assert result.view_changes >= 1
    # After recovery the surviving group continues logging.
    survivors = [i for i in cluster.ids if i != "node-0"]
    logged_late = [
        len(cluster.nodes[i].latency.since(15.0)) for i in survivors
    ]
    assert max(logged_late) > 0


def test_deterministic_given_seed():
    _, a = run_cluster(system="zugchain", duration=5.0, seed=7)
    _, b = run_cluster(system="zugchain", duration=5.0, seed=7)
    assert a.mean_latency_s == b.mean_latency_s
    assert a.network_utilization == b.network_utilization


def test_different_seeds_differ():
    _, a = run_cluster(system="zugchain", duration=5.0, seed=7)
    _, b = run_cluster(system="zugchain", duration=5.0, seed=8)
    # Jitter differs; latencies will not be bit-identical.
    assert a.mean_latency_s != b.mean_latency_s


def test_scenario_config_validation():
    from repro.util import ConfigError

    with pytest.raises(ConfigError):
        ScenarioConfig(system="raft")
    with pytest.raises(ConfigError):
        ScenarioConfig(n=3)
