"""Export under crash chaos: sessions resume and retries stay bounded."""

from repro.export.scenario import ExportScenario, ExportScenarioConfig


def crash_during_export(recover_at=30.0, n_blocks=30):
    scenario = ExportScenario(ExportScenarioConfig(n_blocks=n_blocks))
    dc = scenario.datacenters["dc-0"]
    # The designated full-block replica is down when the round starts; the
    # round wedges (no full blocks) until the replica announces recovery —
    # well before the 600 s timeout would rotate away from it.
    scenario.crash_replica("node-0")
    round_ = dc.start_export(full_from="node-0")
    scenario.kernel.schedule(recover_at, lambda: scenario.recover_replica("node-0"))
    deadline = scenario.kernel.now + 7200
    while not round_.complete and scenario.kernel.now < deadline:
        if not scenario.kernel.step():
            break
    return scenario, dc, round_


def test_session_resume_completes_the_wedged_round():
    scenario, dc, round_ = crash_during_export()
    assert round_.complete
    assert dc.archive.height == 30
    dc.archive.verify()
    metrics = scenario.collect_metrics()
    assert metrics.node("dc-0").counter_values().get("export.sessions_resumed", 0) >= 1
    assert metrics.node("node-0").counter_values().get("export.sessions_resumed", 0) == 1


def test_retries_stay_within_the_configured_bound():
    scenario, dc, round_ = crash_during_export()
    assert 1 <= round_.retries <= dc.config.max_round_retries
    metrics = scenario.collect_metrics()
    assert metrics.node("dc-0").counter_values().get("export.rounds_aborted", 0) == 0


def test_stale_resume_incarnation_is_dropped():
    scenario, dc, _ = crash_during_export()
    before = dc.sessions_resumed
    # Replaying the same incarnation must not count as a new session.
    scenario.handlers["node-0"].resume_sessions(
        ["dc-0"], incarnation=scenario.handlers["node-0"].incarnation
    )
    scenario.kernel.run(max_events=10_000)
    assert dc.sessions_resumed == before
