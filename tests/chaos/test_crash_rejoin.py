"""Crash → recover → StateSync rejoin: convergence and byte-identical blocks.

The satellite contract for crash recovery: a node that fail-stops, loses
its in-memory state, and rejoins via StateSync must end the run on the
same head as the nodes that never crashed — and every block it holds must
be byte-identical to the uncrashed copy, including blocks cut *after* the
rejoin (dedup/builder continuity across the transfer).
"""

from repro.chaos import CrashRecover, ChaosInjector, FaultSchedule, get_campaign, run_one
from repro.obs.trace import RecordingTracer
from repro.scenarios import ScenarioConfig, SimulatedCluster


def test_single_crash_rejoins_with_byte_identical_blocks():
    tracer = RecordingTracer()
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"), tracer=tracer)
    schedule = FaultSchedule(faults=(
        CrashRecover(start_s=4.0, duration_s=4.0, node="node-2"),
    ))
    ChaosInjector(cluster, schedule).install()
    cluster.run(duration_s=20.0, warmup_s=0.0)
    cluster.master.stop()
    cluster.kernel.run_until(cluster.kernel.now + 3.0)

    recovered = cluster.nodes["node-2"]
    witness = cluster.nodes["node-0"]
    assert recovered.statesync.syncs_completed >= 1
    assert recovered.chain.head.block_hash == witness.chain.head.block_hash
    # Byte identity across the WHOLE chain, including post-rejoin blocks.
    for height in range(recovered.chain.base_height, recovered.chain.height + 1):
        assert (recovered.chain.block_at(height).encode()
                == witness.chain.block_at(height).encode()), f"height {height}"
    # The recovery run is oracle-clean.
    report = cluster.check_invariants()
    assert not report.to_dicts()


def test_crash_recovery_storm_campaign_converges_clean():
    record = run_one(get_campaign("crash-recovery-storm"), seed=11, index=0)
    assert record.converged
    assert not record.findings
    assert record.passed
    assert len(set(record.head_hashes.values())) == 1
    # Both scheduled crashes actually happened and both nodes came back.
    assert record.faults_applied >= 2
    assert record.faults_cleared == record.faults_applied


def test_recovered_node_keeps_deciding_after_rejoin():
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"))
    schedule = FaultSchedule(faults=(
        CrashRecover(start_s=3.0, duration_s=3.0, node="node-1"),
    ))
    ChaosInjector(cluster, schedule).install()
    cluster.run(duration_s=18.0, warmup_s=0.0)
    replica = cluster.nodes["node-1"].replica
    assert replica.stats.decided > 0
    assert replica.last_stable_seq > 0
