"""ChaosInjector: arming schedules against a live simulated cluster."""

import pytest

from repro.chaos import (
    BusSkew,
    ByzantineWindow,
    ChaosInjector,
    CrashRecover,
    FaultSchedule,
    LinkFlap,
    LossWindow,
)
from repro.faults.behaviors import ByzantineSpec
from repro.obs.trace import RecordingTracer
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.util.errors import ConfigError


def make_cluster(**kwargs):
    return SimulatedCluster(ScenarioConfig(system="zugchain", **kwargs))


def test_install_is_single_use():
    cluster = make_cluster()
    injector = ChaosInjector(cluster, FaultSchedule())
    injector.install()
    with pytest.raises(ConfigError):
        injector.install()


def test_unknown_fault_kind_rejected():
    from repro.chaos.spec import FaultSpec

    injector = ChaosInjector(make_cluster(), FaultSchedule())
    with pytest.raises(ConfigError):
        injector._arm(FaultSpec(start_s=0.0))  # no injector for the base class


def test_every_window_applies_and_clears():
    schedule = FaultSchedule(faults=(
        LossWindow(start_s=0.5, duration_s=0.5, loss_prob=0.05),
        BusSkew(start_s=1.0, duration_s=0.5, node="node-1", skew_s=0.01),
    ))
    cluster = make_cluster()
    injector = ChaosInjector(cluster, schedule)
    injector.install()
    cluster.run(duration_s=4.0)
    assert injector.faults_applied == 2
    assert injector.faults_cleared == 2


def test_flap_applies_once_per_flap():
    schedule = FaultSchedule(faults=(
        LinkFlap(start_s=0.5, duration_s=0.1, src="node-0", dst="node-1",
                 flaps=3, up_s=0.2),
    ))
    cluster = make_cluster()
    injector = ChaosInjector(cluster, schedule)
    injector.install()
    cluster.run(duration_s=3.0)
    assert injector.faults_applied == 3
    assert injector.faults_cleared == 3


def test_crash_recover_swaps_node_back_in():
    schedule = FaultSchedule(faults=(
        CrashRecover(start_s=2.0, duration_s=2.0, node="node-2"),
    ))
    cluster = make_cluster()
    injector = ChaosInjector(cluster, schedule)
    injector.install()
    cluster.run(duration_s=10.0)
    assert injector.faults_applied == 1
    assert injector.faults_cleared == 1
    assert not cluster.network.is_crashed("node-2")


def test_byzantine_rates_zeroed_outside_window():
    schedule = FaultSchedule(faults=(
        ByzantineWindow(start_s=2.0, duration_s=1.0, node="node-0",
                        fabricate_per_cycle=0.8),
    ))
    cluster = make_cluster(byzantine=schedule.byzantine_specs())
    node = cluster.nodes["node-0"]
    assert node._fabricate_per_cycle == 0.8  # built hot
    injector = ChaosInjector(cluster, schedule)
    injector.install()
    assert node._fabricate_per_cycle == 0.0  # neutralized until the window
    cluster.kernel.run_until(2.5)
    assert node._fabricate_per_cycle == 0.8  # live inside the window
    cluster.kernel.run_until(3.5)
    assert node._fabricate_per_cycle == 0.0  # cleared after


def test_fault_events_are_traced():
    tracer = RecordingTracer()
    schedule = FaultSchedule(faults=(
        LossWindow(start_s=0.5, duration_s=0.5, loss_prob=0.05),
    ))
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"), tracer=tracer)
    ChaosInjector(cluster, schedule).install()
    cluster.run(duration_s=2.0)
    names = [event.name for event in tracer.iter_events()]
    assert "chaos.fault.applied" in names
    assert "chaos.fault.cleared" in names
