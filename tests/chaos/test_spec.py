"""The fault DSL: validation, canonical ordering, and hash stability."""

import pytest

from repro.chaos import (
    BusSkew,
    ByzantineWindow,
    CrashRecover,
    FaultSchedule,
    LinkDegrade,
    LinkFlap,
    LossWindow,
)
from repro.util.errors import ConfigError


def sample_faults():
    return (
        LinkDegrade(start_s=1.0, duration_s=2.0, src="node-0", dst="node-1",
                    loss_prob=0.1),
        LossWindow(start_s=0.5, duration_s=1.0, loss_prob=0.2),
        LinkFlap(start_s=3.0, duration_s=0.25, src="node-2", flaps=2, up_s=0.5),
        BusSkew(start_s=2.0, duration_s=1.5, node="node-1", skew_s=0.02),
        CrashRecover(start_s=4.0, duration_s=3.0, node="node-3"),
        ByzantineWindow(start_s=1.5, duration_s=1.0, node="node-0",
                        fabricate_per_cycle=0.5),
    )


# -- validation -----------------------------------------------------------------


def test_negative_start_rejected():
    with pytest.raises(ConfigError):
        LossWindow(start_s=-0.1, duration_s=1.0)


def test_nonpositive_duration_rejected():
    with pytest.raises(ConfigError):
        LinkDegrade(start_s=0.0, duration_s=0.0)
    with pytest.raises(ConfigError):
        CrashRecover(start_s=0.0, duration_s=-1.0, node="node-1")


def test_loss_prob_bounds():
    with pytest.raises(ConfigError):
        LinkDegrade(start_s=0.0, duration_s=1.0, loss_prob=1.5)
    with pytest.raises(ConfigError):
        LossWindow(start_s=0.0, duration_s=1.0, loss_prob=0.0)  # (0, 1]


def test_flap_needs_at_least_one_flap_and_up_time():
    with pytest.raises(ConfigError):
        LinkFlap(start_s=0.0, duration_s=0.5, flaps=0)
    with pytest.raises(ConfigError):
        LinkFlap(start_s=0.0, duration_s=0.5, flaps=1, up_s=0.0)


def test_bus_skew_must_be_positive():
    with pytest.raises(ConfigError):
        BusSkew(start_s=0.0, duration_s=1.0, skew_s=0.0)


def test_byzantine_window_needs_a_behaviour():
    with pytest.raises(ConfigError):
        ByzantineWindow(start_s=0.0, duration_s=1.0, node="node-0")
    with pytest.raises(ConfigError):
        ByzantineWindow(start_s=0.0, duration_s=1.0, fabricate_per_cycle=2.0)


def test_schedule_rejects_non_fault_entries():
    with pytest.raises(ConfigError):
        FaultSchedule(faults=("not-a-fault",))


# -- windows --------------------------------------------------------------------


def test_flap_window_covers_all_flaps():
    flap = LinkFlap(start_s=1.0, duration_s=0.25, flaps=3, up_s=0.5)
    assert flap.end_s == pytest.approx(1.0 + 3 * 0.75)


def test_horizon_is_latest_clearance():
    schedule = FaultSchedule(faults=sample_faults())
    assert schedule.horizon_s == pytest.approx(7.0)  # the crash clears last
    assert FaultSchedule().horizon_s == 0.0


# -- determinism ----------------------------------------------------------------


def test_canonical_order_is_start_then_description():
    schedule = FaultSchedule(faults=sample_faults()).canonical()
    starts = [fault.start_s for fault in schedule]
    assert starts == sorted(starts)


def test_schedule_hash_is_order_independent():
    faults = sample_faults()
    forward = FaultSchedule(faults=faults)
    backward = FaultSchedule(faults=tuple(reversed(faults)))
    assert forward.schedule_hash() == backward.schedule_hash()


def test_schedule_hash_is_content_sensitive():
    base = FaultSchedule(faults=sample_faults())
    tweaked = FaultSchedule(faults=sample_faults()[:-1])
    assert base.schedule_hash() != tweaked.schedule_hash()


def test_describe_round_trips_every_field():
    fault = LinkDegrade(start_s=1.0, duration_s=2.0, src="node-0",
                        dst="node-1", loss_prob=0.1)
    text = fault.describe()
    assert "LinkDegrade" in text
    for field_name in ("start_s", "duration_s", "src", "dst", "loss_prob"):
        assert field_name in text


# -- byzantine hosting ----------------------------------------------------------


def test_byzantine_specs_fold_maximum_rates():
    schedule = FaultSchedule(faults=(
        ByzantineWindow(start_s=1.0, duration_s=1.0, node="node-0",
                        fabricate_per_cycle=0.2),
        ByzantineWindow(start_s=3.0, duration_s=1.0, node="node-0",
                        fabricate_per_cycle=0.6),
        ByzantineWindow(start_s=2.0, duration_s=1.0, node="node-1",
                        preprepare_delay_s=0.4),
    ))
    specs = schedule.byzantine_specs()
    assert set(specs) == {"node-0", "node-1"}
    assert specs["node-0"].fabricate_per_cycle == 0.6
    assert specs["node-1"].preprepare_delay_s == 0.4


def test_non_byzantine_schedule_needs_no_byzantine_nodes():
    schedule = FaultSchedule(faults=(LossWindow(start_s=0.0, duration_s=1.0),))
    assert schedule.byzantine_specs() == {}
