"""Campaigns: seeded reproducibility, the oracle gate, and byte-identical replay."""

from random import Random

import pytest

from repro.chaos import (
    CAMPAIGNS,
    derive_run_seed,
    get_campaign,
    replay_run,
    run_campaign,
    run_one,
)
from repro.util.errors import ConfigError


def test_unknown_campaign_rejected():
    with pytest.raises(ConfigError):
        get_campaign("no-such-campaign")


def test_run_campaign_needs_at_least_one_run():
    with pytest.raises(ConfigError):
        run_campaign("gray-failure", seed=1, runs=0)


def test_run_seed_is_stable_and_distinct():
    assert derive_run_seed("gray-failure", 7, 0) == derive_run_seed("gray-failure", 7, 0)
    seeds = {
        derive_run_seed(name, seed, index)
        for name in CAMPAIGNS
        for seed in (1, 2)
        for index in (0, 1)
    }
    assert len(seeds) == len(CAMPAIGNS) * 4  # no collisions across the grid


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_generators_are_pure_in_the_rng(name):
    campaign = CAMPAIGNS[name]
    run_seed = derive_run_seed(name, 3, 0)
    first = campaign.generate(Random(run_seed)).canonical()
    second = campaign.generate(Random(run_seed)).canonical()
    assert first.schedule_hash() == second.schedule_hash()
    assert len(first) >= 1
    other = campaign.generate(Random(run_seed + 1)).canonical()
    assert other.schedule_hash() != first.schedule_hash()


def test_gray_failure_run_passes_and_replays_byte_identically(tmp_path):
    campaign = get_campaign("gray-failure")
    trace_a = tmp_path / "a" / "run.trace.jsonl"
    trace_b = tmp_path / "b" / "run.trace.jsonl"
    original = run_one(campaign, seed=7, index=0, trace_path=str(trace_a))
    replayed = replay_run("gray-failure", seed=7, index=0, trace_path=str(trace_b))
    assert original.passed and original.converged and not original.findings
    # The replay contract: all four comparable artifacts match.
    assert replayed.schedule_hash == original.schedule_hash
    assert replayed.trace_sha256 == original.trace_sha256
    assert replayed.findings == original.findings
    assert replayed.head_hashes == original.head_hashes
    # And the trace files themselves are byte-identical (dirs auto-created).
    assert trace_a.read_bytes() == trace_b.read_bytes()


def test_fabrication_campaign_must_fail_gate():
    record = run_one(get_campaign("fabrication"), seed=1, index=0)
    # The inverted gate: the run PASSES because the oracle caught the attack.
    assert record.findings
    assert record.passed


def test_run_campaign_writes_traces_and_varies_by_index(tmp_path):
    records = run_campaign("clock-skew", seed=5, runs=2,
                           trace_dir=str(tmp_path / "traces"))
    assert [r.index for r in records] == [0, 1]
    assert records[0].schedule_hash != records[1].schedule_hash
    for record in records:
        assert record.passed, record.findings
        path = tmp_path / "traces" / f"clock-skew-s5-i{record.index}.trace.jsonl"
        assert path.exists() and path.stat().st_size > 0


def test_record_to_dict_is_json_shaped():
    record = run_one(get_campaign("clock-skew"), seed=2, index=0)
    data = record.to_dict()
    assert data["campaign"] == "clock-skew"
    assert data["schedule_hash"] == record.schedule_hash
    assert isinstance(data["counters"], dict)
    assert data["passed"] is True
