"""Model-based testing of the ZugChain layer under arbitrary interleavings.

Hypothesis drives a random sequence of bus receptions, peer broadcasts,
BFT decides, timer firings, and primary changes against one layer
instance, checking the invariants the paper's correctness argument rests
on:

* **no payload duplication** — a correct node never logs the same payload
  twice (§III-B);
* decided requests leave the queue and their timers die with them;
* suspicion only ever arises from a duplicate decide or a hard timeout;
* the open-request queue never leaks entries for logged digests.
"""

from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
import hypothesis.strategies as st

from repro.bft.env import RecordingEnv
from repro.core import ZugChainConfig, ZugChainLayer
from repro.crypto import HmacScheme, KeyStore
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
IDS = ["node-0", "node-1", "node-2", "node-3"]
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
KEYSTORE = KeyStore(scheme=SCHEME)
for _i, _p in KEYPAIRS.items():
    KEYSTORE.register(_i, _p.public)


class LayerMachine(RuleBasedStateMachine):
    """One backup layer on node-1 with rotating primaries."""

    requests = Bundle("requests")

    def __init__(self):
        super().__init__()
        self.env = RecordingEnv(node_id="node-1")
        self.logged = []
        self.suspicions = 0
        self.next_seq = 1
        self.layer = ZugChainLayer(
            env=self.env,
            config=ZugChainConfig(),
            keypair=KEYPAIRS["node-1"],
            keystore=KEYSTORE,
            propose=lambda signed: True,
            suspect=self._suspect,
            on_log=lambda signed, seq: self.logged.append((seq, signed.digest)),
            initial_primary="node-0",
        )
        self._hard_timeouts_fired = 0
        self._duplicate_decides_sent = 0

    def _suspect(self):
        self.suspicions += 1

    # -- actions -----------------------------------------------------------------

    @rule(target=requests, cycle=st.integers(min_value=1, max_value=40))
    def make_request(self, cycle):
        return Request(payload=b"payload-%d" % cycle, bus_cycle=cycle,
                       recv_timestamp_us=cycle * 64000)

    @rule(request=requests)
    def receive_from_bus(self, request):
        self.layer.receive(request)

    @rule(request=requests, origin=st.sampled_from(IDS))
    def peer_broadcast(self, request, origin):
        from repro.core.messages import ZugBroadcast

        signed = SignedRequest.create(request, origin, KEYPAIRS[origin])
        self.layer.on_broadcast(origin, ZugBroadcast(request=signed))

    @rule(request=requests, origin=st.sampled_from(IDS))
    def decide(self, request, origin):
        signed = SignedRequest.create(request, origin, KEYPAIRS[origin])
        if self.layer.in_log(signed.digest):
            self._duplicate_decides_sent += 1
        self.layer.on_decide(signed, self.next_seq)
        self.next_seq += 1

    @rule(request=requests)
    def observe_preprepare(self, request):
        self.layer.on_preprepare_observed(request.digest)

    @rule()
    def fire_earliest_timer(self):
        timers = self.env.active_timers()
        if timers:
            before = self.layer.stats.hard_timeouts
            self.env.fire_next_timer()
            self._hard_timeouts_fired += self.layer.stats.hard_timeouts - before

    @rule(new_primary=st.sampled_from(IDS))
    def change_primary(self, new_primary):
        self.layer.on_new_primary(new_primary)

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def no_payload_logged_twice(self):
        digests = [d for _, d in self.logged]
        assert len(digests) == len(set(digests)), "payload duplication in the log"

    @invariant()
    def logged_digests_not_in_queue(self):
        for _, digest in self.logged:
            assert not self.layer.in_queue(digest)

    @invariant()
    def suspicion_always_justified(self):
        justified = self._hard_timeouts_fired + self.layer.stats.duplicate_decides
        assert self.suspicions <= justified

    @invariant()
    def queue_matches_stat_counters(self):
        assert self.layer.open_requests >= 0
        assert self.layer.stats.logged == len(self.logged)


LayerMachineTest = LayerMachine.TestCase
LayerMachineTest.settings = settings(max_examples=60, stateful_step_count=40,
                                     deadline=None)
