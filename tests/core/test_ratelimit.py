"""Open-request limiter tests (DoS defence, fault case iii)."""

import pytest

from repro.core import OpenRequestLimiter
from repro.core.ratelimit import limit_from_bus
from repro.util import ConfigError


def digest(i):
    return i.to_bytes(4, "big") * 8


def test_admits_up_to_limit():
    limiter = OpenRequestLimiter(limit=2)
    assert limiter.try_acquire("node-3", digest(1))
    assert limiter.try_acquire("node-3", digest(2))
    assert not limiter.try_acquire("node-3", digest(3))
    assert limiter.rejected == 1


def test_redelivery_of_admitted_request_is_free():
    limiter = OpenRequestLimiter(limit=1)
    assert limiter.try_acquire("node-3", digest(1))
    assert limiter.try_acquire("node-3", digest(1))  # same digest again
    assert limiter.rejected == 0


def test_release_frees_slot():
    limiter = OpenRequestLimiter(limit=1)
    assert limiter.try_acquire("node-3", digest(1))
    limiter.release("node-3", digest(1))
    assert limiter.try_acquire("node-3", digest(2))


def test_release_digest_scans_all_nodes():
    limiter = OpenRequestLimiter(limit=1)
    limiter.try_acquire("node-2", digest(1))
    limiter.release_digest(digest(1))
    assert limiter.open_count("node-2") == 0


def test_limits_are_per_node():
    limiter = OpenRequestLimiter(limit=1)
    assert limiter.try_acquire("node-2", digest(1))
    assert limiter.try_acquire("node-3", digest(2))


def test_invalid_limit_rejected():
    with pytest.raises(ConfigError):
        OpenRequestLimiter(limit=0)


def test_limit_from_bus_frequency():
    # 250 ms hard timeout over 64 ms cycles with 2x headroom: ~7 open slots.
    assert limit_from_bus(0.064, 0.250) == 7
    assert limit_from_bus(0.032, 0.250) == 15
    assert limit_from_bus(10.0, 0.250) == 1  # never below 1
    with pytest.raises(ConfigError):
        limit_from_bus(0.0, 0.250)
