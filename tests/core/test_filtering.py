"""DedupIndex sliding-window tests."""

import pytest

from repro.core import DedupIndex


def digest(i):
    return i.to_bytes(4, "big") * 8


def test_records_and_finds():
    index = DedupIndex(checkpoint_interval=10, window_checkpoints=2)
    index.record(digest(1), 1)
    assert index.in_log(digest(1))
    assert not index.in_log(digest(2))
    assert index.logged_seq(digest(1)) == 1


def test_window_eviction():
    index = DedupIndex(checkpoint_interval=10, window_checkpoints=2)  # window = 20 seqs
    for seq in range(1, 30):
        index.record(digest(seq), seq)
    # seq 29 - 20 = 9: everything at or below 9 evicted.
    assert not index.in_log(digest(9))
    assert index.in_log(digest(10))
    assert index.in_log(digest(29))
    assert index.evicted == 9


def test_duplicate_of_evicted_entry_not_flagged():
    # §III-C Faulty Primary: duplicates beyond the window are recorded, not
    # suspected — the index simply no longer knows them.
    index = DedupIndex(checkpoint_interval=1, window_checkpoints=1)
    index.record(digest(1), 1)
    for seq in range(2, 10):
        index.record(digest(seq), seq)
    assert not index.in_log(digest(1))


def test_size_bytes_tracks_entries():
    index = DedupIndex()
    assert index.size_bytes() == 0
    index.record(digest(1), 1)
    assert index.size_bytes() > 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        DedupIndex(checkpoint_interval=0)
    with pytest.raises(ValueError):
        DedupIndex(window_checkpoints=0)


def test_out_of_order_recording():
    index = DedupIndex(checkpoint_interval=10, window_checkpoints=2)
    index.record(digest(5), 5)
    index.record(digest(3), 3)  # late decide with lower seq
    assert index.in_log(digest(3))
    assert index.in_log(digest(5))
