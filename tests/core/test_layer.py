"""Algorithm 1 unit tests, driven through a RecordingEnv and a fake BFT module."""

import pytest

from repro.bft.env import RecordingEnv
from repro.core import ZugBroadcast, ZugChainConfig, ZugChainLayer, ZugForward
from repro.crypto import HmacScheme, KeyStore
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
IDS = ["node-0", "node-1", "node-2", "node-3"]
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
KEYSTORE = KeyStore(scheme=SCHEME)
for _id, _pair in KEYPAIRS.items():
    KEYSTORE.register(_id, _pair.public)


class FakeBft:
    def __init__(self, accept=True):
        self.proposed = []
        self.suspicions = 0
        self.accept = accept

    def propose(self, signed):
        self.proposed.append(signed)
        return self.accept

    def suspect(self):
        self.suspicions += 1


def make_layer(node_id="node-1", primary="node-0", **config_kwargs):
    env = RecordingEnv(node_id=node_id)
    bft = FakeBft()
    logged = []
    layer = ZugChainLayer(
        env=env,
        config=ZugChainConfig(**config_kwargs),
        keypair=KEYPAIRS[node_id],
        keystore=KEYSTORE,
        propose=bft.propose,
        suspect=bft.suspect,
        on_log=lambda signed, seq: logged.append((seq, signed)),
        initial_primary=primary,
    )
    return env, bft, layer, logged


def request(cycle=1, payload=b"signals", link="mvb0"):
    return Request(payload=payload, bus_cycle=cycle, recv_timestamp_us=cycle * 64000,
                   source_link=link)


def signed_by(node_id, req):
    return SignedRequest.create(req, node_id, KEYPAIRS[node_id])


# -- ln. 5-11: reception ----------------------------------------------------------------

def test_primary_proposes_immediately_with_own_id():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    layer.receive(request())
    assert len(bft.proposed) == 1
    assert bft.proposed[0].node_id == "node-0"
    assert not env.active_timers()


def test_backup_arms_soft_timer_and_does_not_propose():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    layer.receive(request())
    assert bft.proposed == []
    assert len(env.active_timers()) == 1
    assert layer.open_requests == 1


def test_duplicate_reception_filtered():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    layer.receive(request())
    layer.receive(request())  # identical content
    assert len(bft.proposed) == 1
    assert layer.stats.filtered_duplicates == 1


def test_already_logged_reception_filtered():
    env, bft, layer, logged = make_layer(node_id="node-0", primary="node-0")
    req = request()
    layer.receive(req)
    layer.on_decide(bft.proposed[0], 1)
    assert len(logged) == 1
    layer.receive(req)  # late redelivery from the bus
    assert len(bft.proposed) == 1
    assert layer.stats.filtered_duplicates == 1


def test_different_source_links_are_distinct_requests():
    # §III-C Multiple Input Sources: both links' inputs are logged.
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    layer.receive(request(link="mvb0"))
    layer.receive(request(link="mvb1"))
    assert len(bft.proposed) == 2


# -- ln. 12-20: decide --------------------------------------------------------------------

def test_decide_cancels_timers_and_logs_with_origin_id():
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    req = request()
    layer.receive(req)
    decided = signed_by("node-0", req)
    layer.on_decide(decided, 1)
    assert logged == [(1, decided)]
    assert not env.active_timers()
    assert layer.open_requests == 0


def test_duplicate_decide_triggers_suspicion():
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    req = request()
    decided = signed_by("node-0", req)
    layer.on_decide(decided, 1)
    layer.on_decide(signed_by("node-0", req), 2)  # primary proposed it twice
    assert len(logged) == 1
    assert bft.suspicions == 1
    assert layer.stats.duplicate_decides == 1


def test_decide_of_request_never_seen_locally_still_logged():
    # A request only received by another node must be logged here too.
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    foreign = signed_by("node-2", request(payload=b"only-on-node-2"))
    layer.on_decide(foreign, 1)
    assert logged == [(1, foreign)]
    assert logged[0][1].node_id == "node-2"  # origin id preserved


# -- ln. 21-24: soft timeout -----------------------------------------------------------------

def test_soft_timeout_broadcasts_and_arms_hard_timer():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    layer.receive(request())
    env.fire_next_timer()  # soft timeout
    broadcasts = env.broadcasts_of_type(ZugBroadcast)
    assert len(broadcasts) == 1
    assert broadcasts[0].request.node_id == "node-1"
    assert len(env.active_timers()) == 1  # the hard timer
    assert layer.stats.soft_timeouts == 1


def test_decide_after_soft_timeout_cancels_hard_timer():
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    req = request()
    layer.receive(req)
    env.fire_next_timer()
    layer.on_decide(signed_by("node-0", req), 1)
    assert not env.active_timers()
    assert bft.suspicions == 0
    assert len(logged) == 1


# -- ln. 25-32: broadcast handling -------------------------------------------------------------

def test_primary_proposes_broadcast_with_broadcaster_id():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    broadcast = ZugBroadcast(request=signed_by("node-2", request()))
    layer.on_broadcast("node-2", broadcast)
    assert len(bft.proposed) == 1
    assert bft.proposed[0].node_id == "node-2"  # origin preserved (ln. 29)


def test_primary_ignores_broadcast_of_open_request():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    req = request()
    layer.receive(req)  # proposes, stays in R
    layer.on_broadcast("node-2", ZugBroadcast(request=signed_by("node-2", req)))
    assert len(bft.proposed) == 1  # not proposed again (ln. 28 guard)


def test_broadcast_of_logged_request_ignored():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    req = request()
    layer.on_decide(signed_by("node-0", req), 1)
    layer.on_broadcast("node-2", ZugBroadcast(request=signed_by("node-2", req)))
    assert layer.stats.broadcasts_ignored_logged == 1
    assert not env.sent


def test_backup_forwards_broadcast_to_primary():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    broadcast = ZugBroadcast(request=signed_by("node-2", request()))
    layer.on_broadcast("node-2", broadcast)
    forwards = env.sent_of_type(ZugForward)
    assert len(forwards) == 1
    assert forwards[0][0] == "node-0"  # to the primary (fault case iv)
    assert len(env.active_timers()) == 1  # hard timer armed


def test_forged_broadcast_signature_dropped():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    req = request()
    forged = SignedRequest(request=req, node_id="node-2", signature=b"\x00" * 64)
    layer.on_broadcast("node-2", ZugBroadcast(request=forged))
    assert bft.proposed == []


def test_rate_limit_drops_excess_broadcasts():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0", max_open_per_node=2)
    for cycle in range(1, 5):
        broadcast = ZugBroadcast(request=signed_by("node-3", request(cycle=cycle)))
        layer.on_broadcast("node-3", broadcast)
    assert len(bft.proposed) == 2
    assert layer.stats.broadcasts_rate_limited == 2


def test_rate_limit_slot_freed_on_decide():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0", max_open_per_node=1)
    first = signed_by("node-3", request(cycle=1))
    layer.on_broadcast("node-3", ZugBroadcast(request=first))
    layer.on_decide(first, 1)
    layer.on_broadcast("node-3", ZugBroadcast(request=signed_by("node-3", request(cycle=2))))
    assert len(bft.proposed) == 2


def test_forward_handled_like_broadcast_at_primary():
    env, bft, layer, _ = make_layer(node_id="node-0", primary="node-0")
    forward = ZugForward(request=signed_by("node-2", request()), forwarder_id="node-1")
    layer.on_forward("node-1", forward)
    assert len(bft.proposed) == 1


# -- ln. 33-35: hard timeout ---------------------------------------------------------------------

def test_hard_timeout_suspects_primary():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    layer.receive(request())
    env.fire_next_timer()  # soft
    env.fire_next_timer()  # hard
    assert bft.suspicions == 1
    assert layer.stats.hard_timeouts == 1


# -- §III-C optimization ----------------------------------------------------------------------------

def test_preprepare_observation_cancels_soft_timer():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    req = request()
    layer.receive(req)
    layer.on_preprepare_observed(req.digest)
    assert not env.active_timers()


def test_preprepare_cancel_optimization_can_be_disabled():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0",
                                    preprepare_cancels_soft=False)
    req = request()
    layer.receive(req)
    layer.on_preprepare_observed(req.digest)
    assert len(env.active_timers()) == 1


# -- ln. 36-43: new primary ------------------------------------------------------------------------

def test_new_primary_proposes_open_requests():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    layer.receive(request(cycle=1))
    layer.receive(request(cycle=2))
    assert bft.proposed == []
    layer.on_new_primary("node-1")  # this node becomes primary
    assert len(bft.proposed) == 2
    assert layer.is_primary


def test_new_primary_backup_restarts_soft_timers():
    env, bft, layer, _ = make_layer(node_id="node-1", primary="node-0")
    layer.receive(request())
    env.fire_next_timer()  # soft expired, hard armed
    layer.on_new_primary("node-2")
    timers = env.active_timers()
    assert len(timers) == 1  # fresh soft timer (ln. 43), hard cancelled
    assert layer.primary == "node-2"


def test_new_primary_does_not_repropose_logged_requests():
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    req = request()
    layer.receive(req)
    layer.on_decide(signed_by("node-0", req), 1)
    layer.on_new_primary("node-1")
    assert bft.proposed == []


# -- ablation: filtering disabled ------------------------------------------------------------------

def test_filtering_disabled_logs_duplicates_without_suspicion():
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0",
                                         filtering_enabled=False)
    req = request()
    layer.on_decide(signed_by("node-0", req), 1)
    layer.on_decide(signed_by("node-2", req), 2)
    assert len(logged) == 2
    assert bft.suspicions == 0


# -- null requests and sync continuity -------------------------------------------------------------

def test_null_decide_dropped_before_logging():
    # View-change hole fillers must never reach the blockchain: no log
    # upcall, no dedup entry, just a counter.
    from repro.wire.messages import null_request

    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    null = SignedRequest.create(null_request(7), "node-0", KEYPAIRS["node-0"])
    layer.on_decide(null, 7)
    assert logged == []
    assert layer.stats.nulls_decided == 1
    assert bft.suspicions == 0


def test_on_synced_records_dedup_and_clears_open_request():
    # Requests adopted inside StateSync blocks count as logged: a later
    # re-proposal of the same content must be filtered, and any open local
    # entry for the digest is closed.
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    req = request()
    layer.receive(req)
    assert layer.open_requests == 1
    synced = signed_by("node-0", req)
    layer.on_synced(synced, 5)
    assert layer.open_requests == 0
    assert not env.active_timers()
    assert layer.stats.synced_recorded == 1
    # A decide for the same content now counts as a duplicate.
    layer.on_decide(signed_by("node-2", req), 9)
    assert logged == []
    assert layer.stats.duplicate_decides == 1


def test_on_synced_is_idempotent():
    env, bft, layer, logged = make_layer(node_id="node-1", primary="node-0")
    synced = signed_by("node-0", request())
    layer.on_synced(synced, 5)
    layer.on_synced(synced, 5)
    assert layer.stats.synced_recorded == 1
