"""Block builder tests: thresholds, determinism, checkpoint wiring."""

from repro.chain import Blockchain
from repro.core import BlockBuilder
from repro.crypto import HmacScheme
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


def signed_request(cycle):
    request = Request(payload=b"p%d" % cycle, bus_cycle=cycle, recv_timestamp_us=cycle)
    return SignedRequest.create(request, "node-0", PAIR)


def make_builder(block_size=3):
    chain = Blockchain()
    blocks = []
    checkpoints = []
    builder = BlockBuilder(
        chain=chain,
        block_size=block_size,
        on_block=blocks.append,
        record_checkpoint=lambda seq, height, block_hash, digest: checkpoints.append(
            (seq, height, block_hash, digest)
        ),
        now_us=lambda: 1_000_000,
    )
    return chain, builder, blocks, checkpoints


def test_block_cut_at_threshold():
    chain, builder, blocks, checkpoints = make_builder(block_size=3)
    assert builder.add(signed_request(1), 1) is None
    assert builder.add(signed_request(2), 2) is None
    block = builder.add(signed_request(3), 3)
    assert block is not None
    assert block.height == 1
    assert block.header.request_count == 3
    assert chain.height == 1
    assert builder.pending_count == 0


def test_checkpoint_created_per_block():
    chain, builder, blocks, checkpoints = make_builder(block_size=2)
    for seq in range(1, 7):
        builder.add(signed_request(seq), seq)
    assert len(blocks) == 3
    assert len(checkpoints) == 3
    seqs = [cp[0] for cp in checkpoints]
    assert seqs == [2, 4, 6]
    heights = [cp[1] for cp in checkpoints]
    assert heights == [1, 2, 3]
    # Checkpoint hashes match the built blocks.
    for block, cp in zip(blocks, checkpoints):
        assert cp[2] == block.block_hash


def test_identical_inputs_build_identical_blocks():
    _, builder_a, blocks_a, _ = make_builder(block_size=2)
    _, builder_b, blocks_b, _ = make_builder(block_size=2)
    for seq in (1, 2):
        builder_a.add(signed_request(seq), seq)
        builder_b.add(signed_request(seq), seq)
    assert blocks_a[0].block_hash == blocks_b[0].block_hash


def test_pending_accounting():
    _, builder, _, _ = make_builder(block_size=5)
    builder.add(signed_request(1), 1)
    builder.add(signed_request(2), 2)
    assert builder.pending_count == 2
    assert builder.pending_size_bytes() > 0
    assert len(builder.pending_digests()) == 2


def test_chain_grows_across_blocks():
    chain, builder, _, _ = make_builder(block_size=2)
    for seq in range(1, 9):
        builder.add(signed_request(seq), seq)
    assert chain.height == 4
    chain.verify()
