"""Timeline extraction (investigator view) tests."""

import pytest

from repro.analysis.timeline import extract_timeline
from repro.bus.nsdb import standard_jru_catalog
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.util import ChainError


@pytest.fixture(scope="module")
def recorded():
    cluster = SimulatedCluster(ScenarioConfig(
        system="zugchain", payload_bytes=0, retention_s=0.0))
    cluster.run(duration_s=30.0, warmup_s=0.0)
    return cluster


def test_extracts_speed_series(recorded):
    timeline = extract_timeline(recorded.nodes["node-0"].chain, standard_jru_catalog())
    speeds = timeline.signal("speed")
    assert len(speeds) > 10
    # Bus cycles strictly increase for change-only speed samples.
    cycles = [s.bus_cycle for s in speeds]
    assert cycles == sorted(cycles)
    # The train accelerated from standstill at some point in the record
    # (it may be stopped again at the end — e.g. an emergency brake).
    assert max(s.value for s in speeds) > speeds[0].value


def test_always_log_signals_present_every_cycle(recorded):
    chain = recorded.nodes["node-0"].chain
    timeline = extract_timeline(chain, standard_jru_catalog())
    emergencies = timeline.signal("emergency_brake")
    total_requests = timeline.requests_decoded
    assert len(emergencies) == total_requests  # logged unconditionally


def test_origin_attribution(recorded):
    timeline = extract_timeline(recorded.nodes["node-0"].chain, standard_jru_catalog())
    # Fault-free run with a correct primary: node-0 proposed everything.
    assert set(timeline.origins) == {"node-0"}


def test_same_timeline_from_any_replica(recorded):
    nsdb = standard_jru_catalog()
    t0 = extract_timeline(recorded.nodes["node-0"].chain, nsdb)
    t3 = extract_timeline(recorded.nodes["node-3"].chain, nsdb)
    assert [s.value for s in t0.signal("speed")] == [s.value for s in t3.signal("speed")]


def test_tampered_chain_refused(recorded):
    from repro.chain import Block, Blockchain

    chain = recorded.nodes["node-1"].chain
    blocks = [chain.block_at(h) for h in range(chain.base_height, chain.height + 1)]
    forged = Blockchain.__new__(Blockchain)
    forged.chain_id = chain.chain_id
    forged._blocks = blocks[:2] + [Block(header=blocks[2].header, requests=())] + blocks[3:]
    forged._headers_only_heights = set()
    forged.prune_certificate = None
    with pytest.raises(ChainError):
        extract_timeline(forged, standard_jru_catalog())


def test_events_and_active_cycles_helpers(recorded):
    timeline = extract_timeline(recorded.nodes["node-0"].chain, standard_jru_catalog())
    braking = timeline.events_where("service_brake_demand", lambda v: v and v > 0)
    assert isinstance(braking, list)
    assert timeline.active_cycles("horn_active") == []  # horn never used
    assert "speed" in timeline.signal_names()
