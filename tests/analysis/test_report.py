"""Report formatting tests."""

from repro.analysis import Sweep, format_ratio_row, format_table, ratio


def test_format_table_alignment():
    out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    # All data lines align to the same width grid.
    assert lines[3].startswith("1  ")
    assert lines[4].startswith("333")


def test_format_table_no_title():
    out = format_table(["x"], [["1"]])
    assert out.splitlines()[0] == "x"


def test_ratio_zero_denominator():
    assert ratio(5.0, 0.0) == 0.0
    assert ratio(6.0, 3.0) == 2.0


def test_format_ratio_row():
    row = format_ratio_row("latency", 28.0, 14.0, unit="ms")
    assert row[0] == "latency"
    assert row[3] == "2.00x"


def test_sweep_series_and_table():
    sweep = Sweep(name="S", x_label="cycle")
    sweep.add(32, latency=0.012, cpu=0.08)
    sweep.add(64, latency=0.013)
    assert sweep.series("latency") == [(32, 0.012), (64, 0.013)]
    assert sweep.series("cpu") == [(32, 0.08)]
    table = sweep.to_table(["latency", "cpu"])
    assert "S" in table
    assert "-" in table.splitlines()[-1]  # missing cpu rendered as dash
