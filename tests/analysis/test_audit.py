"""Inclusion-proof (auditor tooling) tests."""

import pytest

from repro.analysis.audit import InclusionProof, prove_inclusion, verify_inclusion
from repro.chain import Blockchain, build_block
from repro.crypto import HmacScheme
from repro.util import ChainError
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


def signed_request(seq):
    request = Request(payload=b"evt%d" % seq, bus_cycle=seq, recv_timestamp_us=seq)
    return SignedRequest.create(request, "node-0", PAIR)


def grown_chain(n_blocks=5, per_block=4):
    chain = Blockchain()
    seq = 0
    for _ in range(n_blocks):
        requests = []
        for _ in range(per_block):
            seq += 1
            requests.append(signed_request(seq))
        chain.append(build_block(chain.head.header, requests, timestamp_us=seq, last_sn=seq))
    return chain


def test_prove_and_verify():
    chain = grown_chain()
    proof = prove_inclusion(chain, height=2, index=1)
    assert verify_inclusion(proof, chain.head.block_hash)


def test_every_event_provable():
    chain = grown_chain(n_blocks=3, per_block=3)
    for height in range(1, 4):
        for index in range(3):
            proof = prove_inclusion(chain, height, index)
            assert verify_inclusion(proof, chain.head.block_hash)


def test_wrong_head_rejected():
    chain = grown_chain()
    proof = prove_inclusion(chain, 2, 0)
    assert not verify_inclusion(proof, b"\x00" * 32)


def test_substituted_request_rejected():
    chain = grown_chain()
    proof = prove_inclusion(chain, 2, 0)
    forged = InclusionProof(
        request=signed_request(999),
        block_height=proof.block_height,
        leaf_index=proof.leaf_index,
        leaf_count=proof.leaf_count,
        merkle_proof=proof.merkle_proof,
        headers=proof.headers,
    )
    assert not verify_inclusion(forged, chain.head.block_hash)


def test_broken_header_chain_rejected():
    chain = grown_chain()
    proof = prove_inclusion(chain, 2, 0)
    # Drop a middle header: the hash chain to the head no longer links.
    broken = InclusionProof(
        request=proof.request,
        block_height=proof.block_height,
        leaf_index=proof.leaf_index,
        leaf_count=proof.leaf_count,
        merkle_proof=proof.merkle_proof,
        headers=proof.headers[:1] + proof.headers[2:],
    )
    assert not verify_inclusion(broken, chain.head.block_hash)


def test_out_of_range_index_rejected():
    chain = grown_chain()
    with pytest.raises(ChainError):
        prove_inclusion(chain, 2, 99)


def test_pruned_body_cannot_prove():
    chain = grown_chain()
    chain.drop_bodies_below(4)
    with pytest.raises(ChainError):
        prove_inclusion(chain, 2, 0)


def test_proof_verifies_against_checkpointed_head():
    # The realistic trust anchor: the head hash inside a checkpoint cert.
    chain = grown_chain()
    head_hash = chain.head.block_hash  # as attested by 2f+1 signatures
    proof = prove_inclusion(chain, 1, 2)
    assert verify_inclusion(proof, head_hash)
