"""Regression tests for SM006: Byzantine input must not wedge a data center.

The sm-stage self-run flagged two :class:`ChainError` escapes out of
``DataCenter.handle_message``: correctly *signed* replies can still carry
hostile block *contents* (bad payload roots, a verified head that
contradicts the checkpoint, fetch rounds that never produce the missing
blocks).  These pin the fix: the round aborts and is counted, the data
center stays alive and can start the next round.
"""

import dataclasses
import random

import pytest

from repro.bft import BftConfig
from repro.bft.env import RecordingEnv
from repro.bft.messages import Checkpoint, checkpoint_state_digest
from repro.bft.checkpoint import CheckpointCertificate
from repro.chain import Blockchain, build_block
from repro.crypto import HmacScheme, KeyStore
from repro.export.datacenter import DataCenter, DataCenterConfig
from repro.export.messages import BlockFetch, BlockFetchReply, DcSync, ReadReply
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
IDS = ["node-0", "node-1", "node-2", "node-3", "dc-0", "dc-1"]
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
KEYSTORE = KeyStore(scheme=SCHEME)
for _i, _p in KEYPAIRS.items():
    KEYSTORE.register(_i, _p.public)
BFT = BftConfig(replica_ids=("node-0", "node-1", "node-2", "node-3"))
REPLICAS = ("node-0", "node-1", "node-2", "node-3")


def grow_chain(n_blocks, requests_per_block=2):
    chain = Blockchain(chain_id="zugchain")
    certs = {}
    seq = 0
    for height in range(1, n_blocks + 1):
        requests = []
        for _ in range(requests_per_block):
            seq += 1
            req = Request(payload=b"p%d" % seq, bus_cycle=seq, recv_timestamp_us=seq)
            requests.append(SignedRequest.create(req, "node-0", KEYPAIRS["node-0"]))
        block = build_block(chain.head.header, requests, timestamp_us=seq, last_sn=seq)
        chain.append(block)
        digest = checkpoint_state_digest(block.block_hash, height, [])
        sigs = tuple(
            Checkpoint(seq=seq, block_height=height, block_hash=block.block_hash,
                       state_digest=digest, replica_id=i).signed(KEYPAIRS[i])
            for i in ("node-0", "node-1", "node-2")
        )
        certs[height] = CheckpointCertificate(
            seq=seq, block_height=height, block_hash=block.block_hash,
            state_digest=digest, signatures=sigs,
        )
    return chain, certs


def make_dc(dc_id="dc-0", peers=()):
    env = RecordingEnv(node_id=dc_id)
    dc = DataCenter(
        env=env,
        config=DataCenterConfig(dc_id=dc_id, replica_ids=REPLICAS, peer_dc_ids=peers),
        bft_config=BFT,
        keypair=KEYPAIRS[dc_id],
        keystore=KEYSTORE,
        rng=random.Random(0),
    )
    return env, dc


def reply(replica_id, cert, blocks=()):
    return ReadReply(replica_id=replica_id, checkpoint=cert,
                     blocks=tuple(blocks)).signed(KEYPAIRS[replica_id])


def drop_request(block):
    """Tamper a block: its header (and hash) no longer match its payload."""
    return dataclasses.replace(block, requests=block.requests[:-1])


def feed_read_quorum(dc, cert, full_blocks):
    dc.start_export(full_from="node-0")
    dc.handle_message("node-0", reply("node-0", cert, full_blocks))
    dc.handle_message("node-1", reply("node-1", cert))
    dc.handle_message("node-2", reply("node-2", cert))


def test_tampered_block_aborts_round_instead_of_crashing():
    chain, certs = grow_chain(3)
    blocks = [chain.block_at(h) for h in (1, 2, 3)]
    blocks[2] = drop_request(blocks[2])
    env, dc = make_dc()
    feed_read_quorum(dc, certs[3], blocks)  # must not raise
    assert dc.rounds_aborted == 1
    assert dc.current_round is None
    assert dc.archive.height <= 2  # the tampered block never landed
    # The data center survives: a fresh round starts cleanly.
    dc.start_export(full_from="node-0")


def test_head_checkpoint_mismatch_aborts_round():
    chain, certs = grow_chain(3)
    other_chain, _ = grow_chain(3, requests_per_block=3)
    impostor_blocks = [other_chain.block_at(h) for h in (1, 2, 3)]
    env, dc = make_dc()
    # Internally consistent blocks from the wrong history, with a valid
    # checkpoint for the real one: the verified head contradicts it.
    feed_read_quorum(dc, certs[3], impostor_blocks)
    assert dc.rounds_aborted == 1
    assert dc.current_round is None


def test_fetch_round_exhaustion_aborts_round():
    chain, certs = grow_chain(3)
    env, dc = make_dc()
    # Designated replica serves only block 1; blocks 2-3 stay missing.
    feed_read_quorum(dc, certs[3], [chain.block_at(1)])
    assert env.sent_of_type(BlockFetch), "expected a fetch for the missing blocks"
    empty = BlockFetchReply(replica_id="node-1", blocks=()).signed(KEYPAIRS["node-1"])
    for _ in range(4):  # 3 fruitless rounds exhaust the budget; 4th is a no-op
        dc.handle_message("node-1", empty)
    assert dc.rounds_aborted == 1
    assert dc.current_round is None


def test_byzantine_peer_sync_blocks_rejected_not_fatal():
    chain, certs = grow_chain(2)
    env, dc = make_dc()
    garbage = DcSync(
        dc_id="dc-1", checkpoint=certs[2],
        blocks=(drop_request(chain.block_at(1)), chain.block_at(2)),
    ).signed(KEYPAIRS["dc-1"])
    dc.handle_message("dc-1", garbage)  # must not raise
    assert dc.sync_blocks_rejected == 1
    assert dc.archive.height == 0
    assert dc.last_exported_sn == 0


def test_valid_peer_sync_still_applies():
    chain, certs = grow_chain(2)
    env, dc = make_dc()
    sync = DcSync(
        dc_id="dc-1", checkpoint=certs[2],
        blocks=(chain.block_at(1), chain.block_at(2)),
    ).signed(KEYPAIRS["dc-1"])
    dc.handle_message("dc-1", sync)
    assert dc.archive.height == 2
    assert dc.sync_blocks_rejected == 0
    assert dc.last_exported_sn == certs[2].seq
