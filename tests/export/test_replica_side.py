"""Replica-side export handler tests, including §III-D error scenarios."""

import pytest

from repro.bft import BftConfig
from repro.bft.env import RecordingEnv
from repro.bft.messages import Checkpoint, checkpoint_state_digest
from repro.bft.checkpoint import CheckpointCertificate
from repro.chain import Blockchain, build_block
from repro.crypto import HmacScheme, KeyStore
from repro.export import DeleteAck, DeleteRequest, ExportConfig, ExportHandler, ReadReply, ReadRequest
from repro.export.messages import BlockFetch, BlockFetchReply
from repro.util import ChainError
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
IDS = ["node-0", "node-1", "node-2", "node-3", "dc-0", "dc-1", "dc-2"]
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
KEYSTORE = KeyStore(scheme=SCHEME)
for _i, _p in KEYPAIRS.items():
    KEYSTORE.register(_i, _p.public)
CONFIG = BftConfig(replica_ids=("node-0", "node-1", "node-2", "node-3"))


def grow_chain(n_blocks, requests_per_block=2):
    chain = Blockchain()
    certs = {}
    seq = 0
    for height in range(1, n_blocks + 1):
        requests = []
        for _ in range(requests_per_block):
            seq += 1
            req = Request(payload=b"p%d" % seq, bus_cycle=seq, recv_timestamp_us=seq)
            requests.append(SignedRequest.create(req, "node-0", KEYPAIRS["node-0"]))
        block = build_block(chain.head.header, requests, timestamp_us=seq, last_sn=seq)
        chain.append(block)
        digest = checkpoint_state_digest(block.block_hash, height, [])
        sigs = tuple(
            Checkpoint(seq=seq, block_height=height, block_hash=block.block_hash,
                       state_digest=digest, replica_id=i).signed(KEYPAIRS[i])
            for i in ("node-0", "node-1", "node-2")
        )
        certs[height] = CheckpointCertificate(
            seq=seq, block_height=height, block_hash=block.block_hash,
            state_digest=digest, signatures=sigs,
        )
    return chain, certs


def make_handler(n_blocks=5, delete_quorum=2, node_id="node-0"):
    chain, certs = grow_chain(n_blocks)
    env = RecordingEnv(node_id=node_id)
    handler = ExportHandler(
        env=env,
        config=ExportConfig(delete_quorum=delete_quorum),
        bft_config=CONFIG,
        keypair=KEYPAIRS[node_id],
        keystore=KEYSTORE,
        chain=chain,
        latest_checkpoint=lambda: certs[chain.height] if chain.height in certs else None,
    )
    return env, handler, chain, certs


def delete_for(chain, height, dc_id):
    block = chain.block_at(height)
    return DeleteRequest(dc_id=dc_id, upto_sn=block.last_sn, block_height=height,
                         block_hash=block.block_hash).signed(KEYPAIRS[dc_id])


def test_read_returns_checkpoint_only_for_non_designated():
    env, handler, chain, certs = make_handler()
    request = ReadRequest(dc_id="dc-0", last_sn=0, full_from="node-1").signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", request)
    replies = env.sent_of_type(ReadReply)
    assert len(replies) == 1
    dst, reply = replies[0]
    assert dst == "dc-0"
    assert reply.checkpoint is not None
    assert reply.blocks == ()


def test_read_returns_full_blocks_when_designated():
    env, handler, chain, certs = make_handler(n_blocks=4)
    request = ReadRequest(dc_id="dc-0", last_sn=0, full_from="node-0").signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", request)
    _, reply = env.sent_of_type(ReadReply)[0]
    assert [b.height for b in reply.blocks] == [1, 2, 3, 4]


def test_read_serves_only_blocks_after_last_sn():
    env, handler, chain, certs = make_handler(n_blocks=4)
    # Blocks hold 2 requests each; last_sn=4 covers blocks 1-2.
    request = ReadRequest(dc_id="dc-0", last_sn=4, full_from="node-0").signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", request)
    _, reply = env.sent_of_type(ReadReply)[0]
    assert [b.height for b in reply.blocks] == [3, 4]


def test_forged_read_ignored():
    env, handler, _, _ = make_handler()
    forged = ReadRequest(dc_id="dc-0", last_sn=0, full_from="node-0",
                         signature=b"\x00" * 64)
    handler.handle_message("dc-0", forged)
    assert env.sent == []


def test_delete_needs_quorum_of_datacenters():
    # Error scenario (iii): not enough deletes -> not executed.
    env, handler, chain, _ = make_handler(delete_quorum=2)
    handler.handle_message("dc-0", delete_for(chain, 3, "dc-0"))
    assert chain.base_height == 0
    handler.handle_message("dc-1", delete_for(chain, 3, "dc-1"))
    assert chain.base_height == 3
    acks = env.sent_of_type(DeleteAck)
    assert {dst for dst, _ in acks} == {"dc-0", "dc-1"}


def test_duplicate_delete_from_same_dc_does_not_count_twice():
    env, handler, chain, _ = make_handler(delete_quorum=2)
    handler.handle_message("dc-0", delete_for(chain, 3, "dc-0"))
    handler.handle_message("dc-0", delete_for(chain, 3, "dc-0"))
    assert chain.base_height == 0


def test_delete_with_wrong_hash_rejected():
    env, handler, chain, _ = make_handler(delete_quorum=1)
    bad = DeleteRequest(dc_id="dc-0", upto_sn=6, block_height=3,
                        block_hash=b"\x99" * 32).signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", bad)
    assert chain.base_height == 0
    assert handler.stats.deletes_rejected == 1


def test_delete_before_block_created_is_held():
    # Error scenario (i): the delete waits for the block to exist.
    env, handler, chain, certs = make_handler(n_blocks=3, delete_quorum=1)
    future_requests = []
    seq = chain.head.last_sn
    for _ in range(2):
        seq += 1
        req = Request(payload=b"f%d" % seq, bus_cycle=seq, recv_timestamp_us=seq)
        future_requests.append(SignedRequest.create(req, "node-0", KEYPAIRS["node-0"]))
    future_block = build_block(chain.head.header, future_requests,
                               timestamp_us=seq, last_sn=seq)
    early = DeleteRequest(dc_id="dc-0", upto_sn=seq, block_height=future_block.height,
                          block_hash=future_block.block_hash).signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", early)
    assert chain.base_height == 0
    assert handler.stats.deletes_held == 1
    # The block is created later; the held delete now executes.
    chain.append(future_block)
    handler.on_block_created(future_block)
    assert chain.base_height == future_block.height


def test_fetch_serves_requested_range():
    env, handler, chain, _ = make_handler(n_blocks=5)
    fetch = BlockFetch(dc_id="dc-0", first_height=2, last_height=4).signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", fetch)
    _, reply = env.sent_of_type(BlockFetchReply)[0]
    assert [b.height for b in reply.blocks] == [2, 3, 4]


def test_fetch_clamps_to_available_range():
    env, handler, chain, _ = make_handler(n_blocks=3)
    fetch = BlockFetch(dc_id="dc-0", first_height=0, last_height=99).signed(KEYPAIRS["dc-0"])
    handler.handle_message("dc-0", fetch)
    _, reply = env.sent_of_type(BlockFetchReply)[0]
    assert [b.height for b in reply.blocks] == [0, 1, 2, 3]


def test_install_state_verifies_checkpoint_and_chain():
    # Error scenario (ii): transferring a checkpoint to another replica.
    env, handler, chain, certs = make_handler(n_blocks=4)
    fresh_env = RecordingEnv(node_id="node-3")
    fresh_chain = Blockchain()
    fresh = ExportHandler(
        env=fresh_env, config=ExportConfig(), bft_config=CONFIG,
        keypair=KEYPAIRS["node-3"], keystore=KEYSTORE, chain=fresh_chain,
        latest_checkpoint=lambda: None,
    )
    blocks = [chain.block_at(h) for h in range(0, 5)]
    fresh.install_state(certs[4], blocks, prune_certificate=None)
    assert fresh_chain.height == 4


def test_install_state_rejects_mismatched_chain():
    env, handler, chain, certs = make_handler(n_blocks=4)
    fresh = ExportHandler(
        env=RecordingEnv(node_id="node-3"), config=ExportConfig(), bft_config=CONFIG,
        keypair=KEYPAIRS["node-3"], keystore=KEYSTORE, chain=Blockchain(),
        latest_checkpoint=lambda: None,
    )
    blocks = [chain.block_at(h) for h in range(0, 4)]  # missing the head
    with pytest.raises(ChainError):
        fresh.install_state(certs[4], blocks, prune_certificate=None)


def test_install_pruned_state_requires_delete_certificate():
    env, handler, chain, certs = make_handler(n_blocks=4, delete_quorum=1)
    handler.handle_message("dc-0", delete_for(chain, 2, "dc-0"))
    assert chain.base_height == 2
    blocks = [chain.block_at(h) for h in range(2, 5)]
    fresh = ExportHandler(
        env=RecordingEnv(node_id="node-3"), config=ExportConfig(), bft_config=CONFIG,
        keypair=KEYPAIRS["node-3"], keystore=KEYSTORE, chain=Blockchain(),
        latest_checkpoint=lambda: None,
    )
    with pytest.raises(ChainError):
        fresh.install_state(certs[4], blocks, prune_certificate=None)
    fresh.install_state(certs[4], blocks, prune_certificate=chain.prune_certificate)
    assert fresh.chain.base_height == 2


def test_emergency_header_prune():
    # Error scenario (v): memory exhaustion fallback keeps headers.
    env, handler, chain, _ = make_handler(n_blocks=20)
    handler.config = ExportConfig(emergency_headers_keep=5)
    affected = handler.emergency_header_prune()
    assert affected > 0
    chain.verify()  # chain integrity is preserved via the retained hashes
    assert not chain.body_available(3)
    assert chain.body_available(20)
