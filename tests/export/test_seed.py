"""Chain-seeding helper tests."""

from repro.bft import BftConfig
from repro.crypto import HmacScheme
from repro.export import seed_chain_and_checkpoints
from repro.export.seed import clone_chain

SCHEME = HmacScheme()
IDS = ("node-0", "node-1", "node-2", "node-3")
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
CONFIG = BftConfig(replica_ids=IDS)


def test_seeded_chain_verifies():
    chain, certs = seed_chain_and_checkpoints(CONFIG, KEYPAIRS, n_blocks=10)
    chain.verify()
    assert chain.height == 10
    assert len(certs) == 10


def test_certificates_verify_against_keystore():
    from repro.crypto import KeyStore

    store = KeyStore(scheme=SCHEME)
    for node_id, pair in KEYPAIRS.items():
        store.register(node_id, pair.public)
    chain, certs = seed_chain_and_checkpoints(CONFIG, KEYPAIRS, n_blocks=3)
    for height, cert in certs.items():
        assert cert.verify(store, CONFIG)
        assert cert.block_hash == chain.block_at(height).block_hash


def test_block_and_payload_sizing():
    chain, _ = seed_chain_and_checkpoints(
        CONFIG, KEYPAIRS, n_blocks=2, requests_per_block=5, payload_bytes=128
    )
    block = chain.block_at(1)
    assert block.header.request_count == 5
    assert all(len(r.request.payload) == 128 for r in block.requests)


def test_sequence_numbers_are_contiguous():
    chain, certs = seed_chain_and_checkpoints(
        CONFIG, KEYPAIRS, n_blocks=3, requests_per_block=4
    )
    assert chain.block_at(1).last_sn == 4
    assert chain.block_at(3).last_sn == 12
    assert certs[3].seq == 12


def test_clone_is_independent():
    chain, certs = seed_chain_and_checkpoints(CONFIG, KEYPAIRS, n_blocks=4)
    copy = clone_chain(chain)
    from repro.chain import PruneCertificate

    cert = PruneCertificate(
        base_height=2, base_block_hash=copy.block_at(2).block_hash,
        delete_signatures={"dc": b"\x01" * 64},
    )
    copy.prune_below(2, cert)
    assert copy.base_height == 2
    assert chain.base_height == 0  # original untouched
