"""End-to-end export protocol tests over the simulated LTE network."""

import pytest

from repro.chain import Blockchain
from repro.export.scenario import ExportScenario, ExportScenarioConfig
from repro.util import ChainError


def run_scenario(**kwargs):
    scenario = ExportScenario(ExportScenarioConfig(**kwargs))
    round_ = scenario.run_export()
    return scenario, round_


def test_full_round_exports_and_prunes():
    scenario, round_ = run_scenario(n_blocks=50)
    assert round_.complete
    assert round_.blocks_exported == 50
    # Guarantee (ii): all blocks up to the most recent stable checkpoint.
    assert scenario.datacenters["dc-0"].archive.height == 50
    scenario.datacenters["dc-0"].archive.verify()
    # Guarantee (iii): replicas pruned, keeping the last exported block.
    for handler in scenario.handlers.values():
        assert handler.chain.base_height == 50
        assert handler.chain.has_block(50)
        handler.chain.verify()


def test_peer_datacenter_synchronized():
    scenario, _ = run_scenario(n_blocks=30)
    scenario.kernel.run(max_events=100_000)  # drain remaining sync traffic
    assert scenario.datacenters["dc-1"].archive.height == 30
    scenario.datacenters["dc-1"].archive.verify()


def test_read_phase_dominates_latency():
    # Paper: "The majority of the latency (80-96%) is spent waiting for
    # 2f+1 replies, especially the full blocks from one replica."
    _, round_ = run_scenario(n_blocks=200)
    assert round_.read_s / round_.total_s > 0.6
    assert round_.verify_s / round_.total_s < 0.05


def test_latency_grows_with_block_count():
    _, small = run_scenario(n_blocks=50)
    _, large = run_scenario(n_blocks=400)
    assert large.total_s > small.total_s * 3


def test_second_export_round_is_incremental():
    scenario, first = run_scenario(n_blocks=40)
    scenario.kernel.run(max_events=100_000)
    # No new blocks: the next round must export nothing and finish fast.
    second = scenario.run_export()
    assert second.complete
    assert second.blocks_exported == 0
    assert scenario.datacenters["dc-0"].archive.height == 40


def test_export_with_one_crashed_replica():
    scenario = ExportScenario(ExportScenarioConfig(n_blocks=30))
    scenario.network.crash("node-3")
    round_ = scenario.run_export(timeout_s=7200)
    # 2f+1 = 3 replies still achievable from the remaining replicas.
    assert round_.complete
    assert round_.blocks_exported == 30


def test_export_fetches_blocks_if_designated_replica_crashed():
    scenario = ExportScenario(ExportScenarioConfig(n_blocks=20))
    scenario.network.crash("node-2")
    dc = scenario.datacenters["dc-0"]
    round_ = dc.start_export(full_from="node-2")  # designated replica is dead
    deadline = scenario.kernel.now + 7200
    while not round_.complete and scenario.kernel.now < deadline:
        if not scenario.kernel.step():
            break
    # The round cannot finish the read phase without the full blocks, so it
    # must not have exported anything incorrect; archive stays consistent.
    dc.archive.verify()


def test_archive_is_permanent_record():
    scenario, _ = run_scenario(n_blocks=25)
    archive = scenario.datacenters["dc-0"].archive
    rebuilt = Blockchain.from_blocks(
        [archive.block_at(h) for h in range(0, archive.height + 1)]
    )
    assert rebuilt.height == 25
