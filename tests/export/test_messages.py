"""Export message signing and roundtrip tests."""

import pytest

from repro.bft import BftConfig, Checkpoint, CheckpointCertificate
from repro.chain import Blockchain, build_block
from repro.crypto import HmacScheme, KeyStore
from repro.export import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
)
from repro.wire import Request, SignedRequest

SCHEME = HmacScheme()
IDS = ["node-0", "node-1", "node-2", "node-3", "dc-0", "dc-1"]
KEYPAIRS = {i: SCHEME.derive_keypair(i.encode()) for i in IDS}
KEYSTORE = KeyStore(scheme=SCHEME)
for _i, _p in KEYPAIRS.items():
    KEYSTORE.register(_i, _p.public)
CONFIG = BftConfig(replica_ids=("node-0", "node-1", "node-2", "node-3"))


def make_block():
    chain = Blockchain()
    request = Request(payload=b"x", bus_cycle=1, recv_timestamp_us=1)
    signed = SignedRequest.create(request, "node-0", KEYPAIRS["node-0"])
    return build_block(chain.head.header, [signed], timestamp_us=1, last_sn=1)


def make_cert(block):
    from repro.bft.messages import checkpoint_state_digest

    digest = checkpoint_state_digest(block.block_hash, block.height, [])
    sigs = tuple(
        Checkpoint(seq=1, block_height=block.height, block_hash=block.block_hash,
                   state_digest=digest, replica_id=i).signed(KEYPAIRS[i])
        for i in ("node-0", "node-1", "node-2")
    )
    return CheckpointCertificate(seq=1, block_height=block.height,
                                 block_hash=block.block_hash, state_digest=digest,
                                 signatures=sigs)


def test_read_request_sign_verify():
    request = ReadRequest(dc_id="dc-0", last_sn=5, full_from="node-2").signed(KEYPAIRS["dc-0"])
    assert request.verify(KEYSTORE)
    forged = ReadRequest(dc_id="dc-0", last_sn=6, full_from="node-2",
                         signature=request.signature)
    assert not forged.verify(KEYSTORE)


def test_read_reply_sign_verify_with_blocks():
    block = make_block()
    reply = ReadReply(replica_id="node-1", checkpoint=make_cert(block),
                      blocks=(block,)).signed(KEYPAIRS["node-1"])
    assert reply.verify(KEYSTORE)
    assert reply.encoded_size() > block.encoded_size()


def test_read_reply_without_checkpoint():
    reply = ReadReply(replica_id="node-1", checkpoint=None, blocks=()).signed(KEYPAIRS["node-1"])
    assert reply.verify(KEYSTORE)


def test_delete_request_binds_block_identity():
    delete = DeleteRequest(dc_id="dc-0", upto_sn=10, block_height=1,
                           block_hash=b"\x11" * 32).signed(KEYPAIRS["dc-0"])
    assert delete.verify(KEYSTORE)
    moved = DeleteRequest(dc_id="dc-0", upto_sn=10, block_height=2,
                          block_hash=b"\x11" * 32, signature=delete.signature)
    assert not moved.verify(KEYSTORE)


def test_delete_ack_sign_verify():
    ack = DeleteAck(replica_id="node-0", block_height=3,
                    block_hash=b"\x22" * 32).signed(KEYPAIRS["node-0"])
    assert ack.verify(KEYSTORE)


def test_dc_sync_sign_verify():
    block = make_block()
    sync = DcSync(dc_id="dc-1", checkpoint=make_cert(block),
                  blocks=(block,)).signed(KEYPAIRS["dc-1"])
    assert sync.verify(KEYSTORE)


def test_block_fetch_roundtrip():
    fetch = BlockFetch(dc_id="dc-0", first_height=2, last_height=5).signed(KEYPAIRS["dc-0"])
    assert fetch.verify(KEYSTORE)
    reply = BlockFetchReply(replica_id="node-3", blocks=(make_block(),)).signed(KEYPAIRS["node-3"])
    assert reply.verify(KEYSTORE)


def test_unknown_signer_fails_closed():
    request = ReadRequest(dc_id="dc-9", last_sn=0, full_from="node-0",
                          signature=b"\x00" * 64)
    assert not request.verify(KEYSTORE)
