"""BusReceiver and relevance-filter tests."""

import pytest

from repro.bus import BusReceiver, RelevanceFilter, standard_jru_catalog
from repro.bus.frames import BusCycleData, ProcessDataFrame
from repro.bus.reception import decode_cycle_payload, encode_cycle_payload


def nsdb():
    return standard_jru_catalog()


def speed_frame(kmh):
    definition = nsdb().signal("speed")
    return ProcessDataFrame.create(definition.port, definition.encode_value(kmh))


def emergency_frame(active):
    definition = nsdb().signal("emergency_brake")
    return ProcessDataFrame.create(definition.port, definition.encode_value(active))


def cycle_of(no, *frames):
    return BusCycleData(cycle_no=no, timestamp_us=no * 64000, frames=tuple(frames))


def test_change_only_signal_suppressed_when_unchanged():
    filt = RelevanceFilter(nsdb=nsdb())
    first = filt.apply((speed_frame(100.0),))
    second = filt.apply((speed_frame(100.0),))
    third = filt.apply((speed_frame(101.0),))
    assert len(first) == 1
    assert second == []
    assert len(third) == 1


def test_always_log_signal_passes_every_cycle():
    filt = RelevanceFilter(nsdb=nsdb())
    assert len(filt.apply((emergency_frame(False),))) == 1
    assert len(filt.apply((emergency_frame(False),))) == 1


def test_unknown_ports_pass_through():
    filt = RelevanceFilter(nsdb=nsdb())
    filler = ProcessDataFrame.create(0x800, b"\x01\x02")
    assert filt.apply((filler,)) == [filler]
    assert filt.apply((filler,)) == [filler]


def test_filter_reset_relogs():
    filt = RelevanceFilter(nsdb=nsdb())
    filt.apply((speed_frame(100.0),))
    filt.reset()
    assert len(filt.apply((speed_frame(100.0),))) == 1


def test_payload_roundtrip_and_port_ordering():
    frames = [
        ProcessDataFrame.create(0x140, b"\x00\x0f"),
        ProcessDataFrame.create(0x100, b"\x01\x02"),
    ]
    payload = encode_cycle_payload(frames)
    entries = decode_cycle_payload(payload)
    assert [port for port, _, _ in entries] == [0x100, 0x140]
    assert all(valid for _, _, valid in entries)


def test_payload_flags_invalid_frames():
    corrupt = ProcessDataFrame.create(0x100, b"\x01\x02").corrupted(0)
    entries = decode_cycle_payload(encode_cycle_payload([corrupt]))
    assert entries[0][2] is False


def test_receiver_builds_request():
    receiver = BusReceiver(nsdb())
    request = receiver.on_cycle(cycle_of(1, speed_frame(100.0), emergency_frame(False)), 64000)
    assert request is not None
    assert request.bus_cycle == 1
    assert request.source_link == "mvb0"
    assert receiver.cycles_seen == 1


def test_receiver_returns_none_when_all_filtered():
    receiver = BusReceiver(nsdb())
    assert receiver.on_cycle(cycle_of(1, speed_frame(100.0)), 64000) is not None
    assert receiver.on_cycle(cycle_of(2, speed_frame(100.0)), 128000) is None
    assert receiver.cycles_empty_after_filter == 1


def test_identical_cycles_give_identical_payloads_across_nodes():
    # Precondition for content-based duplicate filtering (§III-B).
    a = BusReceiver(nsdb())
    b = BusReceiver(nsdb())
    cycle = cycle_of(1, speed_frame(100.0), emergency_frame(False))
    ra = a.on_cycle(cycle, 64000)
    rb = b.on_cycle(cycle, 64017)  # different local reception time
    assert ra.payload == rb.payload
    assert ra.digest == rb.digest


def test_corrupted_reception_diverges():
    a = BusReceiver(nsdb())
    b = BusReceiver(nsdb())
    frame = speed_frame(100.0)
    ra = a.on_cycle(cycle_of(1, frame), 64000)
    rb = b.on_cycle(cycle_of(1, frame.corrupted(3)), 64000)
    assert ra.digest != rb.digest
    assert b.invalid_frames_seen == 1


def test_receiver_counts_invalid_frames():
    receiver = BusReceiver(nsdb())
    receiver.on_cycle(cycle_of(1, emergency_frame(False).corrupted(1)), 64000)
    assert receiver.invalid_frames_seen == 1
