"""Signal definition and codec tests."""

import pytest

from repro.bus import SignalDef, SignalKind, SignalValue
from repro.util import CodecError, ConfigError


def test_fixed_point_roundtrip():
    speed = SignalDef("speed", port=0x100, width_bytes=2, kind=SignalKind.FIXED_POINT, scale=0.1)
    value = SignalValue.of(speed, 137.5)
    assert value.value == pytest.approx(137.5)
    assert len(value.raw) == 2


def test_fixed_point_quantizes_to_scale():
    speed = SignalDef("speed", port=0x100, width_bytes=2, kind=SignalKind.FIXED_POINT, scale=0.1)
    assert SignalValue.of(speed, 137.54).value == pytest.approx(137.5)


def test_boolean_roundtrip():
    flag = SignalDef("emergency", port=0x111, width_bytes=1, kind=SignalKind.BOOLEAN)
    assert SignalValue.of(flag, True).value is True
    assert SignalValue.of(flag, False).value is False


def test_bitfield_roundtrip():
    doors = SignalDef("doors", port=0x140, width_bytes=2, kind=SignalKind.BITFIELD)
    assert SignalValue.of(doors, 0b1010).value == 0b1010


def test_opaque_requires_exact_width():
    diag = SignalDef("diag", port=0x1F0, width_bytes=16, kind=SignalKind.OPAQUE, encrypted=True)
    blob = bytes(range(16))
    assert SignalValue.of(diag, blob).value == blob
    with pytest.raises(CodecError):
        SignalValue.of(diag, b"short")


def test_unsigned_overflow_rejected():
    sig = SignalDef("mode", port=0x131, width_bytes=1)
    with pytest.raises(CodecError):
        sig.encode_value(256)
    assert sig.encode_value(255) == b"\xff"


def test_negative_rejected():
    sig = SignalDef("mode", port=0x131, width_bytes=1)
    with pytest.raises(CodecError):
        sig.encode_value(-1)


def test_decode_wrong_width_rejected():
    sig = SignalDef("mode", port=0x131, width_bytes=2)
    with pytest.raises(CodecError):
        sig.decode_value(b"\x01")


def test_invalid_definitions_rejected():
    with pytest.raises(ConfigError):
        SignalDef("bad", port=0x1000, width_bytes=1)  # port beyond 12-bit
    with pytest.raises(ConfigError):
        SignalDef("bad", port=0x1, width_bytes=0)
    with pytest.raises(ConfigError):
        SignalDef("bad", port=0x1, width_bytes=1, period_cycles=0)
    with pytest.raises(ConfigError):
        SignalDef("bad", port=0x1, width_bytes=1, kind=SignalKind.FIXED_POINT, scale=0)
