"""Train-dynamics generator tests."""

import pytest

from repro.bus import GeneratorConfig, TrainDynamicsGenerator, standard_jru_catalog
from repro.bus.generator import FILLER_PORT_BASE
from repro.util import RngRegistry


def make_generator(**kwargs):
    return TrainDynamicsGenerator(
        standard_jru_catalog(),
        GeneratorConfig(**kwargs),
        RngRegistry(42),
    )


def test_train_accelerates_from_standstill():
    gen = make_generator()
    assert gen.speed_kmh == 0.0
    for cycle in range(1, 200):
        gen.signals_for_cycle(cycle, 0.064)
    assert gen.speed_kmh > 0


def test_speed_capped_at_max():
    gen = make_generator(max_speed_kmh=50.0, emergency_brake_prob_per_cycle=0.0)
    for cycle in range(1, 2000):
        gen.signals_for_cycle(cycle, 0.064)
    assert gen.speed_kmh <= 50.0


def test_full_journey_reaches_station_stop():
    gen = make_generator(
        max_speed_kmh=60.0,
        cruise_duration_s=5.0,
        stop_duration_s=5.0,
        emergency_brake_prob_per_cycle=0.0,
        atp_intervention_prob_per_cycle=0.0,
    )
    door_openings = 0
    for cycle in range(1, 4000):
        values = {v.name: v.value for v in gen.signals_for_cycle(cycle, 0.064)}
        if values.get("door_state"):
            door_openings += 1
    assert gen.stops_made >= 1
    assert door_openings > 0  # doors opened while stopped


def test_signals_respect_nsdb_periods():
    gen = make_generator()
    names_c1 = {v.name for v in gen.signals_for_cycle(1, 0.064)}
    assert "speed" in names_c1
    assert "vendor_diagnostics" not in names_c1  # period 4
    names_c4 = {v.name for v in gen.signals_for_cycle(4, 0.064)}
    assert "vendor_diagnostics" in names_c4


def test_padding_reaches_target_payload():
    gen = make_generator(target_payload_bytes=4096)
    frames = gen.frames_for_cycle(1, 0.064)
    assert sum(len(f.data) for f in frames) >= 4096
    assert any(f.port >= FILLER_PORT_BASE for f in frames)


def test_no_padding_by_default():
    gen = make_generator()
    frames = gen.frames_for_cycle(1, 0.064)
    assert all(f.port < FILLER_PORT_BASE for f in frames)


def test_filler_is_deterministic_across_instances():
    a = make_generator(target_payload_bytes=1024).frames_for_cycle(1, 0.064)
    b = make_generator(target_payload_bytes=1024).frames_for_cycle(1, 0.064)
    assert [f.data for f in a] == [f.data for f in b]


def test_filler_differs_between_cycles():
    gen = make_generator(target_payload_bytes=1024)
    frames1 = [f for f in gen.frames_for_cycle(1, 0.064) if f.port >= FILLER_PORT_BASE]
    frames2 = [f for f in gen.frames_for_cycle(2, 0.064) if f.port >= FILLER_PORT_BASE]
    assert frames1[0].data != frames2[0].data


def test_odometer_monotone_while_moving():
    gen = make_generator(emergency_brake_prob_per_cycle=0.0)
    readings = []
    for cycle in range(1, 500):
        values = {v.name: v.value for v in gen.signals_for_cycle(cycle, 0.064)}
        readings.append(values["odometer"])
    assert readings[-1] > readings[0]


def test_emergency_brake_eventually_stops_train():
    gen = make_generator(emergency_brake_prob_per_cycle=0.05)
    saw_emergency = False
    for cycle in range(1, 5000):
        values = {v.name: v.value for v in gen.signals_for_cycle(cycle, 0.064)}
        if values.get("emergency_brake"):
            saw_emergency = True
    assert saw_emergency
