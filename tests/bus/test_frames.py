"""Process-data telegram tests."""

import pytest
from hypothesis import given, strategies as st

from repro.bus import BusCycleData, ProcessDataFrame
from repro.bus.frames import FRAME_OVERHEAD_BYTES, MAX_FRAME_DATA_BYTES
from repro.util import CodecError


def test_create_computes_valid_checksum():
    frame = ProcessDataFrame.create(0x100, b"\x01\x02")
    assert frame.valid


def test_oversized_frame_rejected():
    with pytest.raises(CodecError):
        ProcessDataFrame.create(0x100, b"\x00" * (MAX_FRAME_DATA_BYTES + 1))


def test_corruption_invalidates_checksum():
    frame = ProcessDataFrame.create(0x100, b"\x01\x02\x03\x04")
    corrupt = frame.corrupted(bit_index=5)
    assert corrupt.data != frame.data
    assert not corrupt.valid


def test_corrupting_empty_frame_is_noop():
    frame = ProcessDataFrame.create(0x100, b"")
    assert frame.corrupted(3) is frame


def test_wire_size_includes_overhead():
    frame = ProcessDataFrame.create(0x100, b"\x01\x02")
    assert frame.wire_size() == FRAME_OVERHEAD_BYTES + 2


def test_cycle_data_sizes():
    frames = (
        ProcessDataFrame.create(0x100, b"\x01\x02"),
        ProcessDataFrame.create(0x101, b"\x03\x04\x05"),
    )
    cycle = BusCycleData(cycle_no=1, timestamp_us=1000, frames=frames)
    assert cycle.data_size() == 5
    assert cycle.wire_size() == 5 + 2 * FRAME_OVERHEAD_BYTES


def test_cycle_roundtrip():
    frames = tuple(
        ProcessDataFrame.create(0x100 + i, bytes([i] * (i + 1))) for i in range(4)
    )
    cycle = BusCycleData(cycle_no=42, timestamp_us=123456, frames=frames)
    assert BusCycleData.decode(cycle.encode()) == cycle


@given(st.lists(st.binary(min_size=1, max_size=MAX_FRAME_DATA_BYTES), max_size=8))
def test_cycle_roundtrip_property(datas):
    frames = tuple(ProcessDataFrame.create(0x200 + i, d) for i, d in enumerate(datas))
    cycle = BusCycleData(cycle_no=1, timestamp_us=99, frames=frames)
    assert BusCycleData.decode(cycle.encode()) == cycle
