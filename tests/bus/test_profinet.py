"""ProfiNet-style bus variant tests: cyclic IO plus acyclic alarms."""

import pytest

from repro.bus import GeneratorConfig, TrainDynamicsGenerator, standard_jru_catalog
from repro.bus.profinet import ALARM_PORT_BASE, ProfinetBus, ProfinetConfig
from repro.sim import Kernel
from repro.util import ConfigError, RngRegistry


def make_bus(alarm_rate=2.0, interval=0.064):
    kernel = Kernel()
    rng = RngRegistry(42)
    generator = TrainDynamicsGenerator(standard_jru_catalog(), GeneratorConfig(), rng)
    bus = ProfinetBus(kernel, generator,
                      ProfinetConfig(update_interval_s=interval,
                                     alarm_rate_per_s=alarm_rate), rng)
    return kernel, bus


def test_cyclic_deliveries_on_schedule():
    kernel, bus = make_bus(alarm_rate=0.0)
    seen = []
    bus.attach("node-0", seen.append)
    bus.start()
    kernel.run_until(0.064 * 10 + 1e-6)
    assert bus.cycles_emitted == 10
    assert len(seen) == 10


def test_alarms_arrive_between_cycles():
    kernel, bus = make_bus(alarm_rate=5.0)
    deliveries = []
    bus.attach("node-0", deliveries.append)
    bus.start()
    kernel.run_until(10.0)
    alarms = [d for d in deliveries
              if any(f.port >= ALARM_PORT_BASE for f in d.frames)]
    assert bus.alarms_emitted > 10
    assert len(alarms) == bus.alarms_emitted
    # Alarms are single-frame deliveries with their own event numbers.
    assert all(len(a.frames) == 1 for a in alarms)


def test_event_numbers_strictly_increase():
    kernel, bus = make_bus(alarm_rate=5.0)
    numbers = []
    bus.attach("node-0", lambda d: numbers.append(d.cycle_no))
    bus.start()
    kernel.run_until(5.0)
    assert numbers == sorted(numbers)
    assert len(set(numbers)) == len(numbers)


def test_all_devices_see_alarms():
    kernel, bus = make_bus(alarm_rate=3.0)
    seen = {"a": [], "b": []}
    bus.attach("a", seen["a"].append)
    bus.attach("b", seen["b"].append)
    bus.start()
    kernel.run_until(5.0)
    assert len(seen["a"]) == len(seen["b"]) > 0


def test_config_validation():
    with pytest.raises(ConfigError):
        ProfinetConfig(update_interval_s=0)
    with pytest.raises(ConfigError):
        ProfinetConfig(alarm_rate_per_s=-1)


def test_feeds_zugchain_node_as_second_source():
    # The recorder treats a ProfiNet link exactly like a second MVB.
    from repro.scenarios import ScenarioConfig, SimulatedCluster

    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"))
    profinet = ProfinetBus(
        cluster.kernel,
        TrainDynamicsGenerator(cluster.nsdb, GeneratorConfig(seed_name="pn"), cluster.rng),
        ProfinetConfig(update_interval_s=0.128, alarm_rate_per_s=1.0),
        cluster.rng,
    )
    for node_id, node in cluster.nodes.items():
        receiver = node.add_input_source("profinet0")
        profinet.attach(
            node_id,
            lambda d, node=node, receiver=receiver: node.on_bus_cycle_from(receiver, d),
        )
    profinet.start()
    result = cluster.run(duration_s=10.0, warmup_s=2.0)
    chain = cluster.nodes["node-0"].chain
    links = set()
    for height in range(chain.base_height + 1, chain.height + 1):
        for signed in chain.block_at(height).requests:
            links.add(signed.request.source_link)
    assert "profinet0" in links and "mvb0" in links
    assert result.view_changes == 0
