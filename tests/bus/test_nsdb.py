"""NSDB catalog tests."""

import pytest

from repro.bus import Nsdb, SignalDef, standard_jru_catalog
from repro.util import ConfigError


def test_standard_catalog_has_required_jru_signals():
    nsdb = standard_jru_catalog()
    # IEC 62625 classes: speed/location, brakes, driver, ATP, doors.
    for name in ("speed", "odometer", "emergency_brake", "driver_command",
                 "atp_intervention", "door_state"):
        assert nsdb.signal(name).name == name


def test_duplicate_signal_rejected():
    nsdb = Nsdb()
    nsdb.add_signal(SignalDef("a", port=0x1, width_bytes=1))
    with pytest.raises(ConfigError):
        nsdb.add_signal(SignalDef("a", port=0x2, width_bytes=1))


def test_duplicate_port_rejected():
    nsdb = Nsdb()
    nsdb.add_signal(SignalDef("a", port=0x1, width_bytes=1))
    with pytest.raises(ConfigError):
        nsdb.add_signal(SignalDef("b", port=0x1, width_bytes=1))


def test_port_lookup():
    nsdb = standard_jru_catalog()
    assert nsdb.by_port(0x100).name == "speed"
    assert nsdb.has_port(0x100)
    assert not nsdb.has_port(0x999)
    with pytest.raises(ConfigError):
        nsdb.by_port(0x999)


def test_unknown_signal_rejected():
    nsdb = Nsdb()
    with pytest.raises(ConfigError):
        nsdb.signal("ghost")
    with pytest.raises(ConfigError):
        nsdb.assign_writer("dev", "ghost")


def test_writer_reader_assignment():
    nsdb = standard_jru_catalog()
    atp_signals = {sig.name for sig in nsdb.written_by("atp")}
    assert "speed" in atp_signals and "atp_intervention" in atp_signals
    nsdb.assign_reader("recorder", "speed")
    assert [sig.name for sig in nsdb.read_by("recorder")] == ["speed"]


def test_due_in_cycle_respects_periods():
    nsdb = standard_jru_catalog()
    every_cycle = {sig.name for sig in nsdb.due_in_cycle(1)}
    assert "speed" in every_cycle
    assert "atp_mode" not in every_cycle  # period 2
    cycle2 = {sig.name for sig in nsdb.due_in_cycle(2)}
    assert "atp_mode" in cycle2
    cycle4 = {sig.name for sig in nsdb.due_in_cycle(4)}
    assert "vendor_diagnostics" in cycle4


def test_all_signals_sorted_by_port():
    ports = [sig.port for sig in standard_jru_catalog().all_signals()]
    assert ports == sorted(ports)
