"""Bus master scheduling and reception fault tests."""

import random

import pytest

from repro.bus import (
    BusConfig,
    GeneratorConfig,
    MvbMaster,
    ReceptionFaultConfig,
    ReceptionFaults,
    TrainDynamicsGenerator,
    standard_jru_catalog,
)
from repro.bus.frames import BusCycleData, ProcessDataFrame
from repro.sim import Kernel
from repro.util import ConfigError, RngRegistry


def make_bus(cycle_time=0.064, **gen_kwargs):
    kernel = Kernel()
    rng = RngRegistry(42)
    generator = TrainDynamicsGenerator(standard_jru_catalog(), GeneratorConfig(**gen_kwargs), rng)
    master = MvbMaster(kernel, generator, BusConfig(cycle_time_s=cycle_time), rng)
    return kernel, master


def test_cycle_below_mvb_minimum_rejected():
    with pytest.raises(ConfigError):
        BusConfig(cycle_time_s=0.016)


def test_minimum_can_be_waived_for_experiments():
    assert BusConfig(cycle_time_s=0.016, enforce_minimum=False).cycle_time_s == 0.016


def test_cycles_arrive_at_cycle_period():
    kernel, master = make_bus(cycle_time=0.064)
    arrivals = []
    master.attach("node-0", lambda cycle: arrivals.append((kernel.now, cycle.cycle_no)))
    master.start()
    kernel.run_until(0.064 * 5 + 1e-9)
    assert [no for _, no in arrivals] == [1, 2, 3, 4, 5]
    assert arrivals[0][0] == pytest.approx(0.064)
    assert arrivals[4][0] == pytest.approx(0.320)


def test_all_devices_see_same_cycle_without_faults():
    kernel, master = make_bus()
    seen = {"a": [], "b": []}
    master.attach("a", lambda c: seen["a"].append(c))
    master.attach("b", lambda c: seen["b"].append(c))
    master.start()
    kernel.run_until(1.0)
    assert len(seen["a"]) == len(seen["b"]) > 0
    for ca, cb in zip(seen["a"], seen["b"]):
        assert ca.encode() == cb.encode()


def test_duplicate_attach_rejected():
    _, master = make_bus()
    master.attach("a", lambda c: None)
    with pytest.raises(ConfigError):
        master.attach("a", lambda c: None)


def test_stop_halts_cycles():
    kernel, master = make_bus()
    count = []
    master.attach("a", lambda c: count.append(1))
    master.start()
    kernel.run_until(0.2)
    master.stop()
    seen = len(count)
    kernel.run_until(1.0)
    assert len(count) == seen


def make_cycle(no=1, nframes=3):
    frames = tuple(ProcessDataFrame.create(0x100 + i, bytes([i, no % 256])) for i in range(nframes))
    return BusCycleData(cycle_no=no, timestamp_us=no * 64000, frames=frames)


def test_fault_drop():
    faults = ReceptionFaults(ReceptionFaultConfig(drop_cycle_prob=1.0), random.Random(1))
    assert faults.apply(make_cycle()) == []
    assert faults.cycles_dropped == 1


def test_fault_delay_delivers_with_next_cycle():
    faults = ReceptionFaults(ReceptionFaultConfig(delay_cycle_prob=1.0), random.Random(1))
    assert faults.apply(make_cycle(no=1)) == []
    delivered = faults.apply(make_cycle(no=2))
    # cycle 1 flushed late; cycle 2 itself is also delayed
    assert [c.cycle_no for c in delivered] == [1]
    assert faults.cycles_delayed == 2
    assert [c.cycle_no for c in faults.flush()] == [2]


def test_fault_corrupt_flips_one_bit():
    faults = ReceptionFaults(ReceptionFaultConfig(corrupt_frame_prob=1.0), random.Random(1))
    delivered = faults.apply(make_cycle())
    assert len(delivered) == 1
    assert faults.frames_corrupted == 1
    assert any(not frame.valid for frame in delivered[0].frames)


def test_no_faults_passthrough():
    faults = ReceptionFaults(ReceptionFaultConfig.none(), random.Random(1))
    cycle = make_cycle()
    assert faults.apply(cycle) == [cycle]


def test_per_device_fault_independence():
    kernel, master = make_bus()
    seen = {"good": [], "bad": []}
    master.attach("good", lambda c: seen["good"].append(c))
    master.attach("bad", lambda c: seen["bad"].append(c), ReceptionFaultConfig(drop_cycle_prob=0.5))
    master.start()
    kernel.run_until(0.064 * 200 + 1e-6)
    assert len(seen["good"]) == 200
    assert 40 < len(seen["bad"]) < 160


def test_noisy_preset_rates_are_low():
    cfg = ReceptionFaultConfig.noisy()
    assert 0 < cfg.drop_cycle_prob < 0.01
    assert 0 < cfg.corrupt_frame_prob < 0.01
