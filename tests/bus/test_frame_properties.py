"""Property-based tests on frame checksums and payload determinism."""

from hypothesis import given, strategies as st

from repro.bus.frames import MAX_FRAME_DATA_BYTES, ProcessDataFrame
from repro.bus.reception import decode_cycle_payload, encode_cycle_payload


@given(
    st.integers(min_value=0, max_value=0xFFF),
    st.binary(min_size=1, max_size=MAX_FRAME_DATA_BYTES),
    st.integers(min_value=0),
)
def test_single_bit_corruption_always_detected(port, data, bit):
    frame = ProcessDataFrame.create(port, data)
    corrupt = frame.corrupted(bit)
    # The additive checksum catches every single-bit data flip.
    assert not corrupt.valid
    assert corrupt.data != frame.data


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=0xFFF),
              st.binary(min_size=1, max_size=16)),
    min_size=1, max_size=10, unique_by=lambda t: t[0],
))
def test_payload_roundtrip_and_canonical_order(entries):
    frames = [ProcessDataFrame.create(port, data) for port, data in entries]
    payload = encode_cycle_payload(frames)
    decoded = decode_cycle_payload(payload)
    ports = [port for port, _, _ in decoded]
    assert ports == sorted(ports)
    assert {(p, d) for p, d, _ in decoded} == {(f.port, f.data) for f in frames}


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=0xFFF),
              st.binary(min_size=1, max_size=16)),
    min_size=2, max_size=8, unique_by=lambda t: t[0],
))
def test_payload_independent_of_arrival_order(entries):
    # The canonical sort makes the consolidated payload identical no matter
    # the order frames arrived in — required for cross-node dedup.
    frames = [ProcessDataFrame.create(port, data) for port, data in entries]
    forward = encode_cycle_payload(list(frames))
    backward = encode_cycle_payload(list(reversed(frames)))
    assert forward == backward
