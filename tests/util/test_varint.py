"""Varint and length-prefixed byte-string codec tests."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    CodecError,
    decode_bytes,
    decode_uvarint,
    encode_bytes,
    encode_uvarint,
    uvarint_size,
)


def test_zero_encodes_to_single_byte():
    assert encode_uvarint(0) == b"\x00"


def test_small_values_single_byte():
    for value in (1, 17, 127):
        assert len(encode_uvarint(value)) == 1


def test_boundary_two_bytes():
    assert len(encode_uvarint(128)) == 2
    assert encode_uvarint(300) == b"\xac\x02"  # protobuf's canonical example


def test_negative_rejected():
    with pytest.raises(CodecError):
        encode_uvarint(-1)
    with pytest.raises(CodecError):
        uvarint_size(-5)


def test_truncated_varint_rejected():
    with pytest.raises(CodecError):
        decode_uvarint(b"\x80")


def test_overlong_varint_rejected():
    with pytest.raises(CodecError):
        decode_uvarint(b"\xff" * 11)


def test_decode_with_offset():
    data = b"\x05" + encode_uvarint(1000)
    value, pos = decode_uvarint(data, offset=1)
    assert value == 1000
    assert pos == len(data)


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_roundtrip(value):
    encoded = encode_uvarint(value)
    decoded, pos = decode_uvarint(encoded)
    assert decoded == value
    assert pos == len(encoded)
    assert uvarint_size(value) == len(encoded)


@given(st.binary(max_size=512))
def test_bytes_roundtrip(payload):
    encoded = encode_bytes(payload)
    decoded, pos = decode_bytes(encoded)
    assert decoded == payload
    assert pos == len(encoded)


def test_truncated_bytes_rejected():
    encoded = encode_bytes(b"hello")
    with pytest.raises(CodecError):
        decode_bytes(encoded[:-1])
