"""Deterministic RNG registry tests."""

from repro.util import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("net")
    b = RngRegistry(42).stream("net")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    reg = RngRegistry(42)
    a = [reg.stream("net").random() for _ in range(5)]
    b = [reg.stream("bus").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    reg = RngRegistry(7)
    assert reg.stream("x") is reg.stream("x")


def test_adding_stream_does_not_perturb_existing():
    reg1 = RngRegistry(42)
    s1 = reg1.stream("net")
    first = s1.random()

    reg2 = RngRegistry(42)
    reg2.stream("something-else")  # extra stream created first
    s2 = reg2.stream("net")
    assert s2.random() == first


def test_fork_derives_distinct_registry():
    reg = RngRegistry(42)
    child_a = reg.fork("node-a")
    child_b = reg.fork("node-b")
    assert child_a.master_seed != child_b.master_seed
    assert child_a.stream("x").random() != child_b.stream("x").random()


def test_fork_is_deterministic():
    a = RngRegistry(42).fork("node-a").stream("x").random()
    b = RngRegistry(42).fork("node-a").stream("x").random()
    assert a == b
