"""Registry round-trips for every registered message type."""

import pytest

import repro.wire.tags as tags
from repro.bft.client import ClientRequestWrapper, Reply
from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.messages import (
    Checkpoint,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    ViewChange,
)
from repro.chain.block import Block, BlockHeader, build_block, genesis_block
from repro.core.messages import ZugBroadcast
from repro.crypto import HmacScheme
from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
)
from repro.wire import Request, SignedRequest, decode_message, encode_message

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"node-0")


def _request():
    return Request(payload=b"x" * 20, bus_cycle=3, recv_timestamp_us=77)


def _signed():
    return SignedRequest.create(_request(), "node-0", PAIR)


def _block():
    return build_block(genesis_block().header, [_signed()], timestamp_us=9, last_sn=1)


def _checkpoint():
    return Checkpoint(seq=1, block_height=1, block_hash=b"\x11" * 32,
                      state_digest=b"\x22" * 32, replica_id="node-0").signed(PAIR)


def _certificate():
    return CheckpointCertificate(seq=1, block_height=1, block_hash=b"\x11" * 32,
                                 state_digest=b"\x22" * 32,
                                 signatures=(_checkpoint(),))


SAMPLES = [
    _request(),
    _signed(),
    PrePrepare(view=0, seq=1, request=_signed(), primary_id="node-0").signed(PAIR),
    Prepare(view=0, seq=1, digest=b"\x11" * 32, replica_id="node-0").signed(PAIR),
    Commit(view=0, seq=1, digest=b"\x11" * 32, replica_id="node-0").signed(PAIR),
    _checkpoint(),
    ViewChange(new_view=1, last_stable_seq=0, stable_checkpoint_digest=b"\x00" * 32,
               prepared=(), replica_id="node-0").signed(PAIR),
    NewView(view=1, view_changes=(), preprepares=(), primary_id="node-0").signed(PAIR),
    _certificate(),
    ClientRequestWrapper(request=_signed()),
    Reply(seq=1, digest=b"\x11" * 32, client_id="node-0",
          replica_id="node-0").signed(PAIR),
    ZugBroadcast(request=_signed()),
    genesis_block().header,
    _block(),
    ReadRequest(dc_id="dc-0", last_sn=0, full_from="node-0").signed(PAIR),
    ReadReply(replica_id="node-0", checkpoint=_certificate(), blocks=(_block(),)).signed(PAIR),
    DcSync(dc_id="dc-0", checkpoint=_certificate(), blocks=()).signed(PAIR),
    DeleteRequest(dc_id="dc-0", upto_sn=1, block_height=1,
                  block_hash=b"\x11" * 32).signed(PAIR),
    DeleteAck(replica_id="node-0", block_height=1, block_hash=b"\x11" * 32).signed(PAIR),
    BlockFetch(dc_id="dc-0", first_height=1, last_height=2).signed(PAIR),
    BlockFetchReply(replica_id="node-0", blocks=()).signed(PAIR),
]


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_registry_roundtrip(message):
    encoded = encode_message(message)
    decoded, consumed = decode_message(encoded)
    assert consumed == len(encoded)
    assert type(decoded) is type(message)
    assert decoded.encode() == message.encode()


def test_all_tags_unique_and_stable():
    assert len(set(tags.WIRE_TAGS)) == len(tags.WIRE_TAGS)
    # Spot-check stability of a few assignments (frozen API).
    assert tags.WIRE_TAGS[1] is Request
    assert tags.WIRE_TAGS[10] is PrePrepare
    assert tags.WIRE_TAGS[41] is Block


def test_stream_of_messages_decodes_sequentially():
    stream = b"".join(encode_message(m) for m in SAMPLES[:5])
    offset = 0
    decoded = []
    while offset < len(stream):
        message, consumed = decode_message(stream[offset:])
        decoded.append(message)
        offset += consumed
    assert len(decoded) == 5
