"""Golden-bytes regression: the wire format is stable, checked-in API.

Round-trip tests (``tests/lint/test_registry_roundtrip.py``) prove
encode/decode are inverses *of each other* — they pass equally well
before and after an accidental format change.  This test pins the actual
bytes: every registered type is encoded from a frozen fixture
(``tests/wire/golden_bytes.py``) and compared against checked-in hex
(``golden_bytes.json``), so any codec change fails loudly and must be
made deliberately.  To regenerate after a *deliberate* format change::

    PYTHONPATH=src python tests/wire/golden_bytes.py --write

CI additionally runs ``tests/wire/golden_bytes.py --check``, the
standalone form of the same comparison.

Along the way the test asserts ``encoded_size() == len(encode())`` for
every type, the dynamic counterpart of zuglint's PROTO005 rule.
"""

import pytest

from repro.wire import encode_message
from repro.wire.registry import registered_types

from tests.wire.golden_bytes import (
    FIXTURES,
    current_bytes,
    diff_golden,
    load_golden,
    main,
)


def test_every_registered_type_has_a_golden_fixture():
    missing = [cls.__name__ for cls in registered_types().values() if cls not in FIXTURES]
    assert not missing, (
        f"registered message types without golden fixtures: {missing}; "
        "add a factory to FIXTURES and regenerate golden_bytes.json"
    )
    golden = load_golden()
    stale = [cls.__name__ for cls in FIXTURES if cls.__name__ not in golden]
    assert not stale, f"fixtures missing from golden_bytes.json: {stale}; regenerate it"


@pytest.mark.parametrize(
    "tag,cls",
    sorted(registered_types().items()),
    ids=lambda value: value.__name__ if isinstance(value, type) else str(value),
)
def test_encoded_bytes_match_checked_in_golden(tag, cls):
    message = FIXTURES[cls]()
    encoded = encode_message(message)
    expected = load_golden()[cls.__name__]
    assert encoded.hex() == expected, (
        f"{cls.__name__} wire bytes changed; if this is a deliberate format "
        "change, regenerate tests/wire/golden_bytes.json (see module docstring) "
        "and call it out in the change description — wire tags and framing are "
        "stable API"
    )


@pytest.mark.parametrize(
    "tag,cls",
    sorted(registered_types().items()),
    ids=lambda value: value.__name__ if isinstance(value, type) else str(value),
)
def test_encoded_size_agrees_with_encode(tag, cls):
    message = FIXTURES[cls]()
    if not hasattr(message, "encoded_size"):
        pytest.skip(f"{cls.__name__} has no encoded_size()")
    assert message.encoded_size() == len(message.encode())


def test_check_helper_agrees_with_the_checked_in_file(capsys):
    assert diff_golden() == []
    assert main(["--check"]) == 0
    assert "OK" in capsys.readouterr().out


def test_check_helper_reports_drift(tmp_path, monkeypatch, capsys):
    import tests.wire.golden_bytes as gb

    drifted = dict(current_bytes())
    name = sorted(drifted)[0]
    drifted[name] = "00" + drifted[name][2:]
    bad = tmp_path / "golden_bytes.json"
    bad.write_text(__import__("json").dumps(drifted))
    monkeypatch.setattr(gb, "GOLDEN_PATH", bad)
    assert gb.main(["--check"]) == 1
    err = capsys.readouterr().err
    assert name in err
    assert "--write" in err
