"""Golden-bytes regression: the wire format is stable, checked-in API.

Round-trip tests (``tests/lint/test_registry_roundtrip.py``) prove
encode/decode are inverses *of each other* — they pass equally well
before and after an accidental format change.  This test pins the actual
bytes: every registered type is encoded from a frozen fixture and
compared against checked-in hex (``golden_bytes.json``), so any codec
change fails loudly and must be made deliberately.

The fixtures are intentionally duplicated from the round-trip samples
rather than shared: editing a round-trip sample must never silently move
the goldens.  To regenerate after a *deliberate* format change::

    PYTHONPATH=src python tests/wire/test_golden_bytes.py > tests/wire/golden_bytes.json

Along the way the test asserts ``encoded_size() == len(encode())`` for
every type, the dynamic counterpart of zuglint's PROTO005 rule.
"""

import json
from pathlib import Path

import pytest

import repro.wire.tags  # noqa: F401  (populate the registry)
from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.client import ClientRequestWrapper, Reply
from repro.bft.linear import CommitCert, Vote
from repro.bft.messages import (
    Checkpoint,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    ViewChange,
)
from repro.chain.block import Block, BlockHeader, build_block, genesis_block
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.statesync import StateReply, StateRequest
from repro.crypto import HmacScheme
from repro.obs.causal import CausalContext
from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
)
from repro.wire import Request, SignedRequest, encode_message
from repro.wire.registry import registered_types

GOLDEN_PATH = Path(__file__).with_name("golden_bytes.json")

SCHEME = HmacScheme()
PAIR = SCHEME.derive_keypair(b"golden-node")
DC_PAIR = SCHEME.derive_keypair(b"golden-dc")


def _request():
    return Request(payload=b"golden" * 5, bus_cycle=11, recv_timestamp_us=704_000)


def _signed():
    return SignedRequest.create(_request(), "node-0", PAIR)


def _preprepare():
    return PrePrepare(view=2, seq=9, request=_signed(), primary_id="node-2").signed(PAIR)


def _checkpoint():
    return Checkpoint(seq=8, block_height=2, block_hash=b"\xa1" * 32,
                      state_digest=b"\xb2" * 32, replica_id="node-0").signed(PAIR)


def _certificate():
    return CheckpointCertificate(seq=8, block_height=2, block_hash=b"\xa1" * 32,
                                 state_digest=b"\xb2" * 32,
                                 signatures=(_checkpoint(),))


def _block():
    return build_block(genesis_block().header, [_signed()], timestamp_us=640_064, last_sn=9)


def _prepared_proof():
    return PreparedProof(view=2, seq=9, digest=_signed().digest, request=_signed())


def _vote():
    return Vote(view=2, seq=9, digest=b"\xd4" * 32, replica_id="node-1").signed(PAIR)


def _viewchange():
    return ViewChange(new_view=3, last_stable_seq=8,
                      stable_checkpoint_digest=b"\xc3" * 32,
                      prepared=(_prepared_proof(),), replica_id="node-1").signed(PAIR)


FIXTURES = {
    Request: _request,
    SignedRequest: _signed,
    PrePrepare: _preprepare,
    Prepare: lambda: Prepare(view=2, seq=9, digest=b"\xd4" * 32, replica_id="node-1").signed(PAIR),
    Commit: lambda: Commit(view=2, seq=9, digest=b"\xd4" * 32, replica_id="node-3").signed(PAIR),
    Checkpoint: _checkpoint,
    PreparedProof: _prepared_proof,
    ViewChange: _viewchange,
    NewView: lambda: NewView(view=3, view_changes=(_viewchange(),),
                             preprepares=(_preprepare(),), primary_id="node-3").signed(PAIR),
    CheckpointCertificate: _certificate,
    Vote: _vote,
    CommitCert: lambda: CommitCert(view=2, seq=9, digest=b"\xd4" * 32, votes=(_vote(),)),
    ClientRequestWrapper: lambda: ClientRequestWrapper(request=_signed()),
    Reply: lambda: Reply(seq=9, digest=b"\xe5" * 32, client_id="client-1",
                         replica_id="node-2").signed(PAIR),
    ZugBroadcast: lambda: ZugBroadcast(request=_signed()),
    ZugForward: lambda: ZugForward(request=_signed(), forwarder_id="node-2"),
    StateRequest: lambda: StateRequest(requester_id="node-3", have_height=1).signed(PAIR),
    StateReply: lambda: StateReply(replica_id="node-0", checkpoint=_certificate(),
                                   blocks=(_block(),), prune_base_height=0,
                                   prune_base_hash=genesis_block().block_hash,
                                   prune_signatures=(("dc-0", b"\xf6" * 64),)).signed(PAIR),
    BlockHeader: lambda: _block().header,
    Block: _block,
    ReadRequest: lambda: ReadRequest(dc_id="dc-1", last_sn=4, full_from="node-2").signed(DC_PAIR),
    ReadReply: lambda: ReadReply(replica_id="node-2", checkpoint=_certificate(),
                                 blocks=(_block(),)).signed(PAIR),
    DcSync: lambda: DcSync(dc_id="dc-1", checkpoint=_certificate(),
                           blocks=(_block(),)).signed(DC_PAIR),
    DeleteRequest: lambda: DeleteRequest(dc_id="dc-1", upto_sn=8, block_height=2,
                                         block_hash=b"\xa1" * 32).signed(DC_PAIR),
    DeleteAck: lambda: DeleteAck(replica_id="node-1", block_height=2,
                                 block_hash=b"\xa1" * 32).signed(PAIR),
    BlockFetch: lambda: BlockFetch(dc_id="dc-1", first_height=1, last_height=2).signed(DC_PAIR),
    BlockFetchReply: lambda: BlockFetchReply(replica_id="node-1", blocks=(_block(),)).signed(PAIR),
    CausalContext: lambda: CausalContext(origin="node-2", lamport=17, parent=4),
}


def _golden() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())


def test_every_registered_type_has_a_golden_fixture():
    missing = [cls.__name__ for cls in registered_types().values() if cls not in FIXTURES]
    assert not missing, (
        f"registered message types without golden fixtures: {missing}; "
        "add a factory to FIXTURES and regenerate golden_bytes.json"
    )
    golden = _golden()
    stale = [cls.__name__ for cls in FIXTURES if cls.__name__ not in golden]
    assert not stale, f"fixtures missing from golden_bytes.json: {stale}; regenerate it"


@pytest.mark.parametrize(
    "tag,cls",
    sorted(registered_types().items()),
    ids=lambda value: value.__name__ if isinstance(value, type) else str(value),
)
def test_encoded_bytes_match_checked_in_golden(tag, cls):
    message = FIXTURES[cls]()
    encoded = encode_message(message)
    expected = _golden()[cls.__name__]
    assert encoded.hex() == expected, (
        f"{cls.__name__} wire bytes changed; if this is a deliberate format "
        "change, regenerate tests/wire/golden_bytes.json (see module docstring) "
        "and call it out in the change description — wire tags and framing are "
        "stable API"
    )


@pytest.mark.parametrize(
    "tag,cls",
    sorted(registered_types().items()),
    ids=lambda value: value.__name__ if isinstance(value, type) else str(value),
)
def test_encoded_size_agrees_with_encode(tag, cls):
    message = FIXTURES[cls]()
    if not hasattr(message, "encoded_size"):
        pytest.skip(f"{cls.__name__} has no encoded_size()")
    assert message.encoded_size() == len(message.encode())


if __name__ == "__main__":  # regeneration helper, see module docstring
    print(json.dumps(
        {cls.__name__: encode_message(factory()).hex() for cls, factory in FIXTURES.items()},
        indent=2,
        sort_keys=True,
    ))
