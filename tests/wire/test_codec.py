"""Writer/Reader codec tests."""

import pytest
from hypothesis import given, strategies as st

from repro.util import CodecError
from repro.wire import Reader, Writer


def test_uint_roundtrip():
    data = Writer().put_uint(0).put_uint(300).put_uint(2**40).getvalue()
    reader = Reader(data)
    assert reader.get_uint() == 0
    assert reader.get_uint() == 300
    assert reader.get_uint() == 2**40
    reader.expect_end()


def test_bool_roundtrip():
    data = Writer().put_bool(True).put_bool(False).getvalue()
    reader = Reader(data)
    assert reader.get_bool() is True
    assert reader.get_bool() is False


def test_invalid_bool_rejected():
    with pytest.raises(CodecError):
        Reader(b"\x02").get_bool()


def test_truncated_bool_rejected():
    with pytest.raises(CodecError):
        Reader(b"").get_bool()


def test_bytes_and_str_roundtrip():
    data = Writer().put_bytes(b"\x00\xff").put_str("zugchain").getvalue()
    reader = Reader(data)
    assert reader.get_bytes() == b"\x00\xff"
    assert reader.get_str() == "zugchain"


def test_invalid_utf8_rejected():
    data = Writer().put_bytes(b"\xff\xfe").getvalue()
    with pytest.raises(CodecError):
        Reader(data).get_str()


def test_fixed_field_roundtrip():
    data = Writer().put_fixed(b"\xaa" * 32, 32).getvalue()
    assert Reader(data).get_fixed(32) == b"\xaa" * 32


def test_fixed_field_wrong_size_rejected():
    with pytest.raises(CodecError):
        Writer().put_fixed(b"\xaa" * 31, 32)
    with pytest.raises(CodecError):
        Reader(b"\xaa" * 31).get_fixed(32)


def test_list_roundtrip():
    data = Writer().put_list([1, 2, 3], lambda w, x: w.put_uint(x)).getvalue()
    assert Reader(data).get_list(lambda r: r.get_uint()) == [1, 2, 3]


def test_empty_list():
    data = Writer().put_list([], lambda w, x: w.put_uint(x)).getvalue()
    assert Reader(data).get_list(lambda r: r.get_uint()) == []


def test_forged_list_count_rejected():
    # A count far beyond the remaining bytes must not cause huge allocations.
    data = Writer().put_uint(10**9).getvalue()
    with pytest.raises(CodecError):
        Reader(data).get_list(lambda r: r.get_uint())


def test_expect_end_detects_trailing_bytes():
    reader = Reader(b"\x01\x02")
    reader.get_uint()
    with pytest.raises(CodecError):
        reader.expect_end()


def test_writer_len_matches_output():
    writer = Writer().put_uint(300).put_bytes(b"xyz")
    assert len(writer) == len(writer.getvalue())


@given(st.lists(st.binary(max_size=64), max_size=20))
def test_list_of_bytes_roundtrip(items):
    data = Writer().put_list(items, lambda w, b: w.put_bytes(b)).getvalue()
    assert Reader(data).get_list(lambda r: r.get_bytes()) == items
