"""Request and SignedRequest tests: identity, signing, wire roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import HmacScheme, KeyStore
from repro.wire import Request, SignedRequest
from repro.wire.registry import decode_message, encode_message, register_message_type


def make_request(payload=b"signals", cycle=7, ts=1_000_000, link="mvb0"):
    return Request(payload=payload, bus_cycle=cycle, recv_timestamp_us=ts, source_link=link)


def test_digest_ignores_reception_timestamp():
    # Two nodes read the same telegram at slightly different local times;
    # filtering must treat them as duplicates.
    a = make_request(ts=1_000_000)
    b = make_request(ts=1_000_250)
    assert a.digest == b.digest


def test_digest_covers_payload_cycle_and_link():
    base = make_request()
    assert make_request(payload=b"other").digest != base.digest
    assert make_request(cycle=8).digest != base.digest
    assert make_request(link="mvb1").digest != base.digest


def test_request_roundtrip():
    request = make_request()
    assert Request.decode(request.encode()) == request


@given(
    st.binary(max_size=256),
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=0, max_value=2**48),
)
def test_request_roundtrip_property(payload, cycle, ts):
    request = Request(payload=payload, bus_cycle=cycle, recv_timestamp_us=ts)
    decoded = Request.decode(request.encode())
    assert decoded == request
    assert decoded.digest == request.digest


def test_signed_request_verifies():
    scheme = HmacScheme()
    pair = scheme.derive_keypair(b"node-0")
    store = KeyStore(scheme=scheme)
    store.register("node-0", pair.public)
    signed = SignedRequest.create(make_request(), "node-0", pair)
    assert signed.verify(store)


def test_signed_request_wrong_claimed_id_rejected():
    scheme = HmacScheme()
    pair0 = scheme.derive_keypair(b"node-0")
    pair1 = scheme.derive_keypair(b"node-1")
    store = KeyStore(scheme=scheme)
    store.register("node-0", pair0.public)
    store.register("node-1", pair1.public)
    # node-1 signs but claims to be node-0
    forged = SignedRequest.create(make_request(), "node-0", pair1)
    assert not forged.verify(store)


def test_signed_request_tampered_payload_rejected():
    scheme = HmacScheme()
    pair = scheme.derive_keypair(b"node-0")
    store = KeyStore(scheme=scheme)
    store.register("node-0", pair.public)
    signed = SignedRequest.create(make_request(), "node-0", pair)
    tampered = SignedRequest(
        request=make_request(payload=b"forged"),
        node_id=signed.node_id,
        signature=signed.signature,
    )
    assert not tampered.verify(store)


def test_signed_request_roundtrip():
    scheme = HmacScheme()
    pair = scheme.derive_keypair(b"node-0")
    signed = SignedRequest.create(make_request(), "node-0", pair)
    decoded = SignedRequest.decode(signed.encode())
    assert decoded == signed
    assert decoded.digest == signed.digest


def test_encoded_size_matches_wire_bytes():
    request = make_request(payload=b"x" * 1024)
    assert request.encoded_size() == len(request.encode())


def test_registry_roundtrip():
    import repro.wire.tags  # noqa: F401  (loads the canonical tag table)

    request = make_request()
    encoded = encode_message(request)
    decoded, consumed = decode_message(encoded)
    assert decoded == request
    assert consumed == len(encoded)


def test_registry_rejects_second_tag_for_same_class():
    import repro.wire.tags  # noqa: F401
    from repro.util import CodecError

    with pytest.raises(CodecError):
        register_message_type(900, Request)


def test_registry_unknown_tag():
    from repro.util import CodecError

    with pytest.raises(CodecError):
        decode_message(b"\xff\xff\x7f\x00")


def test_registry_unregistered_type():
    from repro.util import CodecError

    class Foreign:
        def encode(self):
            return b""

    with pytest.raises(CodecError):
        encode_message(Foreign())
