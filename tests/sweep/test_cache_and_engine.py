"""PointCache semantics and the engine's merge contract.

The cache half replaces ``lru_cache`` memoization: hits must skip
execution, keys must cover every axis, and trace payloads must never be
retained (the old memoization pinned every traced result for the whole
benchmark session).  The merge half is exercised with a scripted
executor that completes out of order, duplicates, or loses points.
"""

import pickle
import sys

import pytest

from repro.scenarios import ScenarioResult
from repro.sweep import (
    PointCache,
    PointEnvelope,
    SerialExecutor,
    SweepPoint,
    SweepSpec,
    run_sweep,
)
from repro.sweep.engine import _merge
from repro.sweep.envelope import SweepRunStats
from repro.util.errors import ConfigError, ProtocolError


def make_result(**overrides) -> ScenarioResult:
    values = dict(
        system="zugchain", cycle_time_s=0.064, payload_bytes=64,
        duration_s=3.0, mean_latency_s=0.012, p99_latency_s=0.013,
        max_latency_s=0.014, requests_logged=10, requests_expected=10,
        network_utilization=0.001, cpu_utilization=0.05,
        memory_mean_bytes=1e6, memory_peak_bytes=2e6, view_changes=0,
        metrics={"layer.requests": 10},
    )
    values.update(overrides)
    return ScenarioResult(**values)


def envelope_for(point: SweepPoint, index: int, **overrides) -> PointEnvelope:
    return PointEnvelope(
        index=index, point_hash=point.point_hash(), result=make_result(),
        head_hash="ab" * 32, chain_height=3, **overrides)


POINTS = tuple(
    SweepPoint(cycle_time_s=c, payload_bytes=64, duration_s=3.0, warmup_s=0.5)
    for c in (0.032, 0.064, 0.128)
)
SPEC = SweepSpec("unit", POINTS)


class ScriptedExecutor:
    """Yields pre-built envelopes in a scripted (possibly wrong) order."""

    def __init__(self, envelopes):
        self.envelopes = envelopes
        self.ran = 0

    def run(self, items, keep_trace=False):
        wanted = {index for index, _ in items}
        for envelope in self.envelopes:
            if envelope.index in wanted or envelope.index not in range(len(SPEC)):
                self.ran += 1
                yield envelope


# -- cache -----------------------------------------------------------------------


def test_cache_hit_skips_execution_and_restamps_index():
    cache = PointCache()
    point = POINTS[0]
    cache.put(point, envelope_for(point, index=0))
    hit = cache.get(point, index=7)
    assert hit is not None and hit.index == 7
    assert (cache.hits, cache.misses) == (1, 0)
    assert cache.get(POINTS[1]) is None
    assert cache.misses == 1


def test_cache_key_covers_every_axis():
    cache = PointCache()
    point = POINTS[0]
    cache.put(point, envelope_for(point, index=0))
    import dataclasses
    for change in ({"seed": 43}, {"duration_s": 4.0}, {"trace": True},
                   {"payload_bytes": 65}, {"system": "baseline"}):
        other = dataclasses.replace(point, **change)
        assert cache.get(other) is None, change


def test_cache_drops_trace_payloads_on_insert():
    cache = PointCache()
    point = POINTS[0]
    fat = envelope_for(point, index=0, trace_events=[("ev",)] * 1000)
    before = sys.getsizeof(pickle.dumps(fat))
    cache.put(point, fat)
    hit = cache.get(point)
    assert hit.trace_events is None
    assert sys.getsizeof(pickle.dumps(hit)) < before


def test_engine_serves_cached_points_without_rerunning():
    cache = PointCache()
    for index, point in enumerate(SPEC):
        cache.put(point, envelope_for(point, index))
    executor = ScriptedExecutor([])
    sweep = run_sweep(SPEC, cache=cache, executor=executor)
    assert executor.ran == 0
    assert (sweep.stats.cached, sweep.stats.executed) == (len(SPEC), 0)
    assert [e.index for e in sweep.envelopes] == [0, 1, 2]


def test_clear_resets_entries_and_accounting():
    cache = PointCache()
    cache.put(POINTS[0], envelope_for(POINTS[0], 0))
    cache.get(POINTS[0])
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
    assert cache.get(POINTS[0]) is None


def test_consume_trace_hands_events_out_exactly_once():
    fat = envelope_for(POINTS[0], 0, trace_events=[("ev", 1)])
    assert fat.consume_trace() == [("ev", 1)]
    assert fat.consume_trace() is None


# -- merge ------------------------------------------------------------------------


def test_merge_reorders_completion_order_into_spec_order():
    scripted = [envelope_for(POINTS[i], i) for i in (2, 0, 1)]
    sweep = run_sweep(SPEC, executor=ScriptedExecutor(scripted))
    assert [e.index for e in sweep.envelopes] == [0, 1, 2]
    assert sweep.stats.completion_order == [2, 0, 1]


def test_merge_rejects_duplicate_indexes():
    scripted = [envelope_for(POINTS[0], 0), envelope_for(POINTS[0], 0),
                envelope_for(POINTS[1], 1), envelope_for(POINTS[2], 2)]
    with pytest.raises(ProtocolError, match="duplicate"):
        run_sweep(SPEC, executor=ScriptedExecutor(scripted))


def test_merge_rejects_lost_points():
    scripted = [envelope_for(POINTS[0], 0)]
    with pytest.raises(ProtocolError, match="lost points"):
        run_sweep(SPEC, executor=ScriptedExecutor(scripted))


def test_merge_rejects_envelopes_from_a_different_point():
    impostor = envelope_for(POINTS[2], 1)  # index 1, but point 2's hash
    with pytest.raises(ProtocolError, match="does not match spec"):
        _merge(SPEC, [envelope_for(POINTS[0], 0), impostor,
                      envelope_for(POINTS[2], 2)], SweepRunStats())


def test_serial_executor_yields_in_submission_order():
    items = [(1, POINTS[1])]
    envelopes = list(SerialExecutor().run(items))
    assert [e.index for e in envelopes] == [1]
    assert envelopes[0].point_hash == POINTS[1].point_hash()


def test_process_executor_rejects_zero_workers():
    from repro.sweep import ProcessExecutor
    with pytest.raises(ConfigError):
        ProcessExecutor(0)
