"""Satellite guard: serial and process-parallel sweeps are byte-identical.

The whole parallelization argument rests on seed-isolated points plus a
canonical-order merge.  This suite runs the same spec at ``jobs=1`` and
``jobs=4`` and compares the rendered JSON byte for byte — results,
head hashes, aggregated obs counters, and their key ordering included.
"""

import json

import pytest

from repro.sweep import SweepSpec, grid_sweep_spec, run_sweep


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return grid_sweep_spec(
        "determinism", ("zugchain", "baseline"), (0.032, 0.064), (64,),
        duration_s=3.0, warmup_s=0.5,
    )


@pytest.fixture(scope="module")
def serial(spec):
    return run_sweep(spec, jobs=1)


@pytest.fixture(scope="module")
def parallel(spec):
    return run_sweep(spec, jobs=4)


def test_serial_and_parallel_json_bytes_are_identical(serial, parallel):
    assert serial.to_json() == parallel.to_json()


def test_results_arrive_in_spec_order_not_completion_order(spec, serial, parallel):
    for sweep in (serial, parallel):
        assert [e.index for e in sweep.envelopes] == list(range(len(spec)))
        for point, envelope in zip(spec, sweep.envelopes):
            assert envelope.point_hash == point.point_hash()


def test_head_hashes_match_pointwise(serial, parallel):
    assert serial.head_hashes == parallel.head_hashes
    assert all(serial.head_hashes)  # every point committed at least one block


def test_merged_obs_counters_match_including_ordering(serial, parallel):
    a = serial.merged_metrics().counter_values()
    b = parallel.merged_metrics().counter_values()
    assert a == b
    assert list(a) == list(b) == sorted(a)
    assert a  # the fold actually carried cluster counters


def test_json_rendering_is_canonical(serial):
    payload = serial.to_json()
    decoded = json.loads(payload)
    assert payload == json.dumps(decoded, sort_keys=True,
                                 separators=(",", ":")).encode()
    assert decoded["spec_hash"] == serial.spec.spec_hash()
    assert len(decoded["points"]) == len(serial.spec)


def test_parallel_run_actually_executed_every_point(spec, parallel):
    assert parallel.stats.executed == len(spec)
    assert sorted(parallel.stats.completion_order) == list(range(len(spec)))
