"""Satellite guard: everything a worker returns must survive pickling.

Process-sharded sweeps only work if the envelope and every structure
inside it cross the process boundary intact.  These tests pin that field
by field — a new unpicklable attribute on :class:`ScenarioResult`,
:class:`ClusterMetrics`, or the phase breakdowns fails here in-process
instead of as an opaque ``ProcessPoolExecutor`` traceback.
"""

import dataclasses
import pickle

import pytest

from repro.obs.metrics import ClusterMetrics, MetricsRegistry
from repro.obs.spans import PhaseStats
from repro.scenarios import ScenarioResult
from repro.sweep import PointEnvelope, SweepPoint, run_point


@pytest.fixture(scope="module")
def traced_envelope() -> PointEnvelope:
    point = SweepPoint(system="zugchain", cycle_time_s=0.032,
                       payload_bytes=64, duration_s=3.0, warmup_s=0.5,
                       trace=True)
    return run_point(5, point, keep_trace=True)


def test_scenario_result_roundtrips_field_by_field(traced_envelope):
    result = traced_envelope.result
    clone = pickle.loads(pickle.dumps(result))
    for field in dataclasses.fields(ScenarioResult):
        assert getattr(clone, field.name) == getattr(result, field.name), field.name
    assert clone == result


def test_result_carries_metrics_and_phases_through_pickle(traced_envelope):
    clone = pickle.loads(pickle.dumps(traced_envelope.result))
    # The aggregated cluster counters made the trip as plain ints...
    assert clone.metrics and all(
        isinstance(v, int) for v in clone.metrics.values())
    # ...and the traced run produced a per-phase latency breakdown whose
    # snapshot keys match PhaseStats exactly.
    assert clone.phases
    for name, stats in clone.phases.items():
        assert set(stats) == {"count", "total", "mean", "min", "max"}, name


def test_envelope_roundtrips_every_field(traced_envelope):
    clone = pickle.loads(pickle.dumps(traced_envelope))
    for field in dataclasses.fields(PointEnvelope):
        assert getattr(clone, field.name) == getattr(traced_envelope, field.name), field.name
    assert clone.head_hash == traced_envelope.head_hash
    assert clone.chain_height >= 1
    assert clone.trace_events  # keep_trace=True: events crossed the boundary
    assert clone.to_dict() == traced_envelope.to_dict()


def test_phase_stats_roundtrips():
    stats = PhaseStats(name="propose->commit")
    for value in (0.010, 0.003, 0.027):
        stats.observe(value)
    clone = pickle.loads(pickle.dumps(stats))
    for field in dataclasses.fields(PhaseStats):
        assert getattr(clone, field.name) == getattr(stats, field.name), field.name
    assert clone.snapshot() == stats.snapshot()


def test_cluster_metrics_roundtrips_with_counters_gauges_histograms():
    metrics = ClusterMetrics()
    for node in ("node-0", "node-1"):
        registry = metrics.node(node)
        registry.counter("layer.requests").inc(3)
        registry.gauge("chain.height").set(7)
        registry.histogram("latency_s").observe(0.012)
    clone = pickle.loads(pickle.dumps(metrics))
    assert clone.node_ids() == metrics.node_ids()
    assert (clone.aggregate().snapshot() == metrics.aggregate().snapshot())


def test_metrics_registry_snapshot_survives_pickle():
    registry = MetricsRegistry(node="cluster")
    registry.inc_from({"b": 2, "a": 1})
    registry.histogram("lat").observe(0.5)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.snapshot() == registry.snapshot()
    # Insertion order must not leak into the rendering either way.
    assert list(clone.counter_values()) == ["a", "b"]
