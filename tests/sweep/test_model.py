"""SweepPoint/SweepSpec: value semantics, stable hashes, canonical order."""

import pytest

from repro.sweep import (
    BUS_CYCLES_S,
    DEFAULT_CYCLE_S,
    DEFAULT_PAYLOAD,
    PAYLOAD_BYTES,
    SweepPoint,
    SweepSpec,
    cycle_sweep_spec,
    grid_sweep_spec,
    payload_sweep_spec,
)
from repro.util.errors import ConfigError


def test_point_hash_is_stable_across_instances():
    a = SweepPoint(system="zugchain", cycle_time_s=0.064, payload_bytes=1024,
                   duration_s=6.0, warmup_s=1.5, seed=7)
    b = SweepPoint(system="zugchain", cycle_time_s=0.064, payload_bytes=1024,
                   duration_s=6.0, warmup_s=1.5, seed=7)
    assert a == b
    assert a.point_hash() == b.point_hash()
    assert a.cache_key() == (a.point_hash(), 7)


@pytest.mark.parametrize("change", [
    {"system": "baseline"},
    {"cycle_time_s": 0.032},
    {"payload_bytes": 32},
    {"duration_s": 12.0},
    {"warmup_s": 0.5},
    {"seed": 43},
    {"trace": True},
    {"bft_backend": "other"},
])
def test_every_axis_changes_the_point_hash(change):
    base = SweepPoint(duration_s=6.0, warmup_s=1.5)
    changed = SweepPoint(**{**dict(
        system="zugchain", cycle_time_s=DEFAULT_CYCLE_S,
        payload_bytes=DEFAULT_PAYLOAD, duration_s=6.0, warmup_s=1.5,
        seed=42, trace=False, bft_backend="pbft",
    ), **change})
    assert changed.point_hash() != base.point_hash()


def test_unknown_system_and_bad_duration_rejected():
    with pytest.raises(ConfigError):
        SweepPoint(system="etcd")
    with pytest.raises(ConfigError):
        SweepPoint(duration_s=0.0)


def test_empty_spec_rejected():
    with pytest.raises(ConfigError):
        SweepSpec(name="empty")


def test_spec_hash_depends_on_point_order():
    p1 = SweepPoint(cycle_time_s=0.032, duration_s=6.0)
    p2 = SweepPoint(cycle_time_s=0.064, duration_s=6.0)
    assert (SweepSpec("a", (p1, p2)).spec_hash()
            != SweepSpec("a", (p2, p1)).spec_hash())


def test_cycle_spec_covers_the_papers_axis_in_order():
    spec = cycle_sweep_spec("zugchain", duration_s=6.0, warmup_s=1.5)
    assert tuple(p.cycle_time_s for p in spec) == BUS_CYCLES_S
    assert all(p.payload_bytes == DEFAULT_PAYLOAD for p in spec)


def test_overload_duration_lengthens_only_the_baseline_minimum_cycle():
    spec = cycle_sweep_spec("baseline", duration_s=6.0, warmup_s=1.5,
                            overload_duration_s=40.0)
    durations = [p.duration_s for p in spec]
    assert durations == [40.0, 6.0, 6.0, 6.0]
    zug = cycle_sweep_spec("zugchain", duration_s=6.0, warmup_s=1.5,
                           overload_duration_s=40.0)
    assert all(p.duration_s == 6.0 for p in zug)


def test_payload_spec_covers_the_papers_axis():
    spec = payload_sweep_spec("baseline", duration_s=6.0, warmup_s=1.5)
    assert tuple(p.payload_bytes for p in spec) == PAYLOAD_BYTES
    assert all(p.cycle_time_s == DEFAULT_CYCLE_S for p in spec)


def test_grid_spec_is_the_cartesian_product_in_axis_order():
    spec = grid_sweep_spec("g", ("zugchain",), (0.032, 0.064), (32, 1024),
                           duration_s=6.0, warmup_s=1.5)
    assert [(p.cycle_time_s, p.payload_bytes) for p in spec] == [
        (0.032, 32), (0.032, 1024), (0.064, 32), (0.064, 1024),
    ]


def test_with_trace_flips_every_point():
    spec = payload_sweep_spec("zugchain", duration_s=6.0, warmup_s=1.5)
    traced = spec.with_trace(True)
    assert all(p.trace for p in traced)
    assert traced.spec_hash() != spec.spec_hash()
