"""BenchRecorder: schema, statistics, and injected-clock determinism."""

import json

import pytest

from repro.sweep import BenchRecorder, default_bench_path, summarize
from repro.sweep.bench import SCHEMA


class FakeClock:
    """Scripted monotonic clock: each read advances by the next delta."""

    def __init__(self, *readings: float) -> None:
        self.readings = list(readings)

    def __call__(self) -> float:
        return self.readings.pop(0)


def test_summarize_basic_stats():
    stats = summarize([0.2, 0.1, 0.4, 0.3])
    assert stats["count"] == 4
    assert stats["mean_s"] == pytest.approx(0.25)
    assert stats["median_s"] in (0.2, 0.3)
    assert stats["p99_s"] == 0.4
    assert (stats["min_s"], stats["max_s"]) == (0.1, 0.4)


def test_summarize_empty_is_all_zero():
    stats = summarize([])
    assert stats == {"count": 0, "mean_s": 0.0, "median_s": 0.0,
                     "p99_s": 0.0, "min_s": 0.0, "max_s": 0.0}


def test_time_call_uses_the_injected_clock_only():
    recorder = BenchRecorder(FakeClock(10.0, 12.5))
    elapsed, value = recorder.time_call(lambda: "done")
    assert elapsed == 2.5 and value == "done"


def test_record_suite_computes_throughput_and_sim_speedup():
    recorder = BenchRecorder(FakeClock())
    entry = recorder.record_suite("cycles:zugchain", [2.0, 4.0], units=8,
                                  sim_seconds=96.0, jobs=4,
                                  extra={"note": "smoke"})
    assert entry["mean_s"] == 3.0
    assert entry["throughput_units_per_s"] == pytest.approx(8 / 3.0)
    assert entry["sim_speedup"] == pytest.approx(32.0)
    assert entry["jobs"] == 4 and entry["note"] == "smoke"


def test_record_speedup_entry():
    recorder = BenchRecorder(FakeClock())
    entry = recorder.record_speedup("sweep:serial_vs_jobs4", before_s=8.0,
                                    after_s=2.0, jobs=4,
                                    extra={"byte_identical": True})
    assert entry["speedup"] == 4.0
    assert entry["byte_identical"] is True


def test_artifact_schema_and_write(tmp_path):
    recorder = BenchRecorder(FakeClock())
    recorder.record_suite("b-suite", [1.0], units=4, sim_seconds=24.0, jobs=2)
    recorder.record_suite("a-suite", [2.0], units=4, sim_seconds=24.0, jobs=1)
    recorder.record_speedup("ab", before_s=2.0, after_s=1.0, jobs=2)
    path = tmp_path / "BENCH_2026-01-02.json"
    recorder.write(str(path), "2026-01-02")
    payload = json.loads(path.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["date"] == "2026-01-02"
    assert set(payload["host"]) == {"cpu_count", "python", "machine"}
    assert list(payload["suites"]) == ["a-suite", "b-suite"]  # sorted
    assert payload["speedups"]["ab"]["speedup"] == 2.0
    for entry in payload["suites"].values():
        for key in ("count", "mean_s", "median_s", "p99_s",
                    "throughput_units_per_s", "sim_speedup", "jobs"):
            assert key in entry


def test_preload_extends_an_existing_artifact_without_clobbering(tmp_path):
    path = tmp_path / "BENCH_2026-01-02.json"
    first = BenchRecorder(FakeClock())
    first.record_suite("cycles:zugchain", [2.0], units=4, sim_seconds=24.0)
    first.record_suite("obs:overhead", [1.0], units=1)
    first.record_speedup("ab", before_s=2.0, after_s=1.0, jobs=2)
    first.write(str(path), "2026-01-02")

    second = BenchRecorder(FakeClock())
    second.record_suite("obs:overhead", [5.0], units=1)  # re-measured: wins
    second.preload(str(path))
    second.write(str(path), "2026-01-02")

    payload = json.loads(path.read_text())
    assert list(payload["suites"]) == ["cycles:zugchain", "obs:overhead"]
    assert payload["suites"]["obs:overhead"]["mean_s"] == 5.0
    assert payload["suites"]["cycles:zugchain"]["mean_s"] == 2.0
    assert payload["speedups"]["ab"]["speedup"] == 2.0


def test_preload_ignores_missing_and_foreign_files(tmp_path):
    recorder = BenchRecorder(FakeClock())
    recorder.preload(str(tmp_path / "absent.json"))
    foreign = tmp_path / "foreign.json"
    foreign.write_text('{"schema": "other/1", "suites": {"x": {}}}')
    recorder.preload(str(foreign))
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    recorder.preload(str(garbled))
    assert recorder.suites == {} and recorder.speedups == {}


def test_default_bench_path_convention(tmp_path):
    assert default_bench_path("2026-08-08").endswith("BENCH_2026-08-08.json")
    assert default_bench_path("2026-08-08", str(tmp_path)) == \
        str(tmp_path / "BENCH_2026-08-08.json")
