"""Counters, gauges, and fixed-bucket histograms with cluster aggregation.

The registry is deliberately boring: metric state is plain integers and
floats, creation is get-or-create by name, and snapshots render names in
sorted order so two identical runs serialize identically.  The histogram
uses *fixed* bucket bounds chosen at construction (no adaptive resizing),
which keeps merges exact and deterministic: merging per-node histograms
is element-wise addition, never re-binning.

:class:`ClusterMetrics` holds one :class:`MetricsRegistry` per node and
folds them — plus every runtime Env's :class:`~repro.runtime.base.EnvCounters`
and the asyncio runtime's ``decode_errors``/``oversize_frames`` — into one
cluster-level view, closing the long-standing "nothing aggregates env
counters" gap: fault-injection runs can now assert on
``aggregate(envs=...)`` counters such as ``env.drops`` and
``env.decode_errors``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.util.errors import ProtocolError

#: Default latency buckets (seconds): 1 ms .. 5 s, roughly logarithmic.
#: Chosen to resolve the paper's operating points — single-digit ms commit
#: latencies, 250/500 ms timeouts, and multi-second export rounds.
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.002, 0.005, 0.010, 0.020, 0.050,
    0.100, 0.250, 0.500, 1.0, 2.0, 5.0,
)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ProtocolError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """Last-written value metric (e.g. queue depth, chain height)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` (cumulative
    style is left to renderers; storage is per-bin), and the final bin
    counts everything above the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ProtocolError(f"histogram {name} needs strictly increasing bounds")
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ProtocolError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.bucket_counts[:-1]):
            seen += bucket
            if seen >= rank:
                return self.bounds[index]
        return self.bounds[-1]  # overflow bin: report the last finite bound

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ProtocolError(
                f"cannot merge histogram {other.name} into {self.name}: "
                "bucket bounds differ"
            )
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.total += other.total

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": list(zip(list(self.bounds) + ["+inf"], self.bucket_counts)),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics for one node (or the cluster)."""

    def __init__(self, node: str = "") -> None:
        self.node = node
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unused(name, self._gauges, self._histograms)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unused(name, self._counters, self._histograms)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unused(name, self._counters, self._gauges)
            metric = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS_S
            )
        return metric

    @staticmethod
    def _check_unused(name: str, *other_kinds: Mapping[str, Any]) -> None:
        for kind in other_kinds:
            if name in kind:
                raise ProtocolError(f"metric {name!r} already registered with another type")

    # -- bulk loading ----------------------------------------------------------

    def inc_from(self, counters: Mapping[str, int], prefix: str = "") -> None:
        """Fold a name→int mapping (e.g. a stats snapshot) into counters."""
        for name in sorted(counters):
            self.counter(prefix + name).inc(int(counters[name]))

    # -- reading ---------------------------------------------------------------

    def counter_values(self) -> dict[str, int]:
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def gauge_values(self) -> dict[str, float]:
        return {name: self._gauges[name].value for name in sorted(self._gauges)}

    def snapshot(self) -> dict[str, object]:
        """Deterministic full dump: sorted names, plain scalars/lists."""
        return {
            "node": self.node,
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    # -- merging ------------------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges take the maximum (the cluster
        view of "queue depth" or "chain height" is the worst node).
        """
        for name in sorted(other._counters):
            self.counter(name).inc(other._counters[name].value)
        for name in sorted(other._gauges):
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, other._gauges[name].value))
        for name in sorted(other._histograms):
            theirs = other._histograms[name]
            self.histogram(name, theirs.bounds).merge(theirs)


#: AsyncioEnv-only counters folded by ``fold_env_counters`` when present.
_EXTRA_ENV_COUNTERS = ("decode_errors", "oversize_frames")


def fold_env_counters(registry: MetricsRegistry, envs: Mapping[str, Any]) -> None:
    """Fold every env's :class:`EnvCounters` (and transport extras) into ``registry``.

    Works for any Env that exposes ``counters.snapshot()`` (all BaseEnv
    adapters do); the asyncio runtime's ``decode_errors``/``oversize_frames``
    are picked up when present so TCP fault-injection runs can assert on
    the aggregated ``env.decode_errors`` having moved.
    """
    for node_id in sorted(envs):
        env = envs[node_id]
        registry.inc_from(env.counters.snapshot(), prefix="env.")
        for extra in _EXTRA_ENV_COUNTERS:
            value = getattr(env, extra, None)
            if value is not None:
                registry.counter(f"env.{extra}").inc(int(value))


class ClusterMetrics:
    """Per-node registries plus the cluster-level fold."""

    def __init__(self) -> None:
        self._nodes: dict[str, MetricsRegistry] = {}

    def node(self, node_id: str) -> MetricsRegistry:
        registry = self._nodes.get(node_id)
        if registry is None:
            registry = self._nodes[node_id] = MetricsRegistry(node=node_id)
        return registry

    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    def aggregate(self, envs: Mapping[str, Any] | None = None) -> MetricsRegistry:
        """One merged registry over all nodes, optionally folding env counters."""
        merged = MetricsRegistry(node="cluster")
        for node_id in sorted(self._nodes):
            merged.merge_from(self._nodes[node_id])
        if envs:
            fold_env_counters(merged, envs)
        return merged
