"""Causal tracing: per-message contexts, Lamport clocks, and the flow DAG.

The runtime layer's single emission funnel (``BaseEnv._emit``) stamps
every outbound message with a :class:`CausalContext` — the origin node,
the origin's Lamport clock after the send tick, and the per-node index of
the newest trace event on the origin.  The context rides the *transport
envelope*, never the wire body: the simulator carries it alongside the
scheduled delivery, the TCP runtime puts it in an optional frame-header
extension (high bit of the length prefix), and the multiprocess runtime
adds a slot to the queue tuple.  Protocol code is untouched; the clock
ticks identically in traced and untraced runs, so tracing never perturbs
protocol behaviour.

Event identity is ``node#idx`` with a **per-node** index, not the
cluster-wide trace sequence: a context's ``parent`` refers to an event on
the *origin* node, which in a multiprocess run lives in that worker's own
trace shard.  Per-node indexes make shard merging a pure reordering
(:func:`merge_shards`) with no renumbering of causal references.

Timestamp domains (documented, deliberately not unified): the simulator
stamps shared virtual time (cross-node deltas are exact); the TCP and
multiprocess runtimes stamp per-node relative real time (cross-node
deltas are debug-grade).  Lamport clocks and cause edges are valid in
every domain; per-hop latencies are exact only in the simulator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.obs.trace import TraceEvent
from repro.util.errors import CodecError
from repro.wire.codec import Reader, Writer

#: The request-lifecycle event names, in protocol order.
LIFECYCLE = ("bus.rx", "bft.preprepare", "bft.commit", "req.logged")


@dataclass(frozen=True)
class CausalContext:
    """What one emission knows about its own causal position.

    ``parent`` is the origin node's per-node index of the newest trace
    event at emission time (−1 when the origin has recorded no event —
    untraced runs, or sends before the first instrumentation point).
    Contexts are minted by ``BaseEnv._emit`` only; zuglint's DET008 rule
    flags construction or clock mutation anywhere else.
    """

    origin: str
    lamport: int
    parent: int = -1

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.origin)
        writer.put_uint(self.lamport)
        writer.put_uint(self.parent + 1)  # −1 (no parent) encodes as 0
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CausalContext":
        reader = Reader(data)
        ctx = cls.read_from(reader)
        reader.expect_end()
        return ctx

    @classmethod
    def read_from(cls, reader: Reader) -> "CausalContext":
        origin = reader.get_str()
        lamport = reader.get_uint()
        parent = reader.get_uint() - 1
        return cls(origin=origin, lamport=lamport, parent=parent)

    def write_to(self, writer: Writer) -> None:
        writer.put_bytes(self.encode())

    def encoded_size(self) -> int:
        return len(self.encode())


class CausalClock:
    """Per-env Lamport clock plus the inbound-context scope.

    Mutated only by the emission funnel (``stamp``), the receive path
    (``merge`` / the ``inbound`` scope set by ``BaseEnv.run_inbound``),
    and the bound tracer (``observe``).  The clock always ticks — traced
    or not — so enabling tracing never changes the values protocol code
    could observe (it observes none; the clock is write-only for the
    protocol layer).
    """

    __slots__ = ("origin", "lamport", "events", "last_event", "inbound", "carry")

    def __init__(self, origin: str) -> None:
        self.origin = origin
        self.lamport = 0
        #: Count of trace events recorded on this node (next per-node idx).
        self.events = 0
        #: Per-node idx of the newest trace event (−1 before the first).
        self.last_event = -1
        #: The context of the message currently being handled, if any.
        self.inbound: CausalContext | None = None
        #: Transports that frame bytes consult this before adding the
        #: causal header extension (in-process transports always carry).
        self.carry = False

    def stamp(self) -> CausalContext:
        """Tick for one emission and mint its context (funnel-only)."""
        self.lamport += 1
        return CausalContext(self.origin, self.lamport, self.last_event)

    def merge(self, ctx: CausalContext) -> None:
        """Receive-side Lamport merge: max with the sender's clock, tick."""
        if ctx.lamport > self.lamport:
            self.lamport = ctx.lamport
        self.lamport += 1

    def observe(self) -> tuple[int, int, str]:
        """Assign the next per-node event index; returns (idx, lamport, cause).

        Called by a bound tracer per recorded event.  ``cause`` is the
        event id (``node#idx``) of the inbound message's parent event on
        its origin node, or ``""`` when the event has no remote cause.
        """
        self.lamport += 1
        idx = self.events
        self.events += 1
        self.last_event = idx
        inbound = self.inbound
        if inbound is None or inbound.parent < 0:
            return idx, self.lamport, ""
        return idx, self.lamport, f"{inbound.origin}#{inbound.parent}"


def event_id(event: TraceEvent) -> str:
    """Canonical per-node identity (``node#idx``); "" if the event has none."""
    if event.idx < 0:
        return ""
    return f"{event.node}#{event.idx}"


# ---------------------------------------------------------------------------
# Shard merging: many per-process traces -> one canonical stream.
# ---------------------------------------------------------------------------


def _merge_key(event: TraceEvent) -> tuple[int, str, int]:
    # Lamport order is consistent with happens-before (each event ticks its
    # node's clock; a receive merges above the sender's stamp), so sorting
    # by (lamport, node, shard seq) is a deterministic topological-ish
    # order that depends only on shard *contents*, never on arrival order.
    return (event.lamport, event.node, event.seq)


def merge_shards(
    shards: Mapping[str, Iterable[TraceEvent]] | Iterable[Iterable[TraceEvent]],
) -> list[TraceEvent]:
    """Fold per-process trace shards into one canonical event stream.

    A pure function of the shard contents: any permutation of the input
    shards (dict order, worker completion order) yields byte-identical
    output.  Cluster-wide ``seq`` is reassigned in canonical order; the
    per-node ``idx`` — which causal references use — is untouched.
    """
    if isinstance(shards, Mapping):
        shard_lists: Iterable[Iterable[TraceEvent]] = shards.values()
    else:
        shard_lists = shards
    merged = sorted(
        (event for shard in shard_lists for event in shard), key=_merge_key
    )
    return [replace(event, seq=seq) for seq, event in enumerate(merged)]


# ---------------------------------------------------------------------------
# The message-flow DAG.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CausalEdge:
    """One happens-before edge between two events (by trace ``seq``)."""

    parent: int
    child: int
    kind: str  # "message" (cross-node cause) | "program" (same-node order)


@dataclass
class HopStats:
    """Latency attribution for one (src node -> dst node) message hop."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0

    def observe(self, dt: float) -> None:
        if self.count == 0:
            self.min_s = dt
            self.max_s = dt
        else:
            self.min_s = min(self.min_s, dt)
            self.max_s = max(self.max_s, dt)
        self.count += 1
        self.total_s += dt

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class CausalDag:
    """The reconstructed message-flow DAG plus its structural anomalies.

    Anomalies are *reported*, never raised: a DAG built from a corrupt or
    truncated trace is still inspectable, and the invariant oracle
    (:mod:`repro.obs.check`) turns the anomalies into findings.
    """

    events: list[TraceEvent] = field(default_factory=list)
    edges: list[CausalEdge] = field(default_factory=list)
    #: cause references ("node#idx") that resolve to no event in the trace.
    orphans: list[tuple[int, str]] = field(default_factory=list)
    #: event ids claimed by more than one event (shard-merge corruption).
    duplicate_ids: list[str] = field(default_factory=list)
    #: logical message edges delivered more than once: (cause id, node, name).
    duplicate_edges: list[tuple[str, str, str]] = field(default_factory=list)
    #: edges whose child's Lamport clock does not exceed the parent's.
    clock_regressions: list[CausalEdge] = field(default_factory=list)

    @property
    def message_edges(self) -> list[CausalEdge]:
        return [edge for edge in self.edges if edge.kind == "message"]

    def roots(self) -> list[int]:
        """Events with no incoming edge (bus receptions, injections)."""
        children = {edge.child for edge in self.edges}
        return [event.seq for event in self.events if event.seq not in children]

    def hop_latencies(self) -> dict[tuple[str, str], HopStats]:
        """Per (src, dst) node-pair latency over message edges.

        Exact under the simulator's shared virtual clock; debug-grade
        (per-node relative clocks, deltas may even be negative) on the
        TCP and multiprocess runtimes.
        """
        by_seq = {event.seq: event for event in self.events}
        hops: dict[tuple[str, str], HopStats] = {}
        for edge in self.message_edges:
            parent = by_seq[edge.parent]
            child = by_seq[edge.child]
            key = (parent.node, child.node)
            hops.setdefault(key, HopStats()).observe(child.t - parent.t)
        return hops

    @property
    def anomaly_count(self) -> int:
        return (
            len(self.orphans)
            + len(self.duplicate_ids)
            + len(self.duplicate_edges)
            + len(self.clock_regressions)
        )

    def to_dict(self, include_time: bool = True) -> dict:
        """Deterministic plain-dict rendering (canonical key and row order)."""
        vertices = []
        for event in self.events:
            row: dict[str, object] = {
                "seq": event.seq,
                "id": event_id(event),
                "node": event.node,
                "name": event.name,
                "lamport": event.lamport,
                "cause": event.cause,
            }
            if include_time:
                row["t"] = event.t
            if event.fields:
                row["f"] = dict(event.fields)
            vertices.append(row)
        return {
            "vertices": vertices,
            "edges": [
                {"parent": e.parent, "child": e.child, "kind": e.kind}
                for e in self.edges
            ],
            "anomalies": {
                "orphans": [list(item) for item in self.orphans],
                "duplicate_ids": list(self.duplicate_ids),
                "duplicate_edges": [list(item) for item in self.duplicate_edges],
                "clock_regressions": [
                    {"parent": e.parent, "child": e.child, "kind": e.kind}
                    for e in self.clock_regressions
                ],
            },
        }

    def fingerprint(self, include_time: bool = True) -> str:
        """SHA-256 over the canonical JSON rendering of the DAG."""
        payload = json.dumps(
            self.to_dict(include_time=include_time),
            separators=(",", ":"),
            sort_keys=True,
            ensure_ascii=True,
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()


def build_dag(events: Iterable[TraceEvent]) -> CausalDag:
    """Reconstruct the happens-before DAG from a flat event stream.

    Edges: per-node program order (consecutive events on one node) plus
    cross-node message edges resolved from each event's ``cause``
    reference.  Structural problems — orphan causes, duplicate event ids,
    duplicate logical deliveries, Lamport regressions — are collected on
    the returned DAG rather than raised.
    """
    dag = CausalDag(events=sorted(events, key=lambda e: e.seq))
    by_id: dict[str, TraceEvent] = {}
    for event in dag.events:
        identity = event_id(event)
        if not identity:
            continue
        if identity in by_id:
            dag.duplicate_ids.append(identity)
        else:
            by_id[identity] = event

    last_on_node: dict[str, TraceEvent] = {}
    seen_deliveries: set[tuple[str, str, str]] = set()
    for event in dag.events:
        previous = last_on_node.get(event.node)
        if previous is not None:
            edge = CausalEdge(previous.seq, event.seq, "program")
            dag.edges.append(edge)
            if 0 < event.lamport <= previous.lamport:
                dag.clock_regressions.append(edge)
        last_on_node[event.node] = event
        if not event.cause:
            continue
        parent = by_id.get(event.cause)
        if parent is None:
            dag.orphans.append((event.seq, event.cause))
            continue
        edge = CausalEdge(parent.seq, event.seq, "message")
        dag.edges.append(edge)
        if event.lamport <= parent.lamport:
            dag.clock_regressions.append(edge)
        delivery = (event.cause, event.node, event.name)
        if delivery in seen_deliveries:
            dag.duplicate_edges.append(delivery)
        else:
            seen_deliveries.add(delivery)
    return dag


# ---------------------------------------------------------------------------
# Cross-runtime comparison: the request-lifecycle projection.
# ---------------------------------------------------------------------------


def lifecycle_chains(
    events: Iterable[TraceEvent],
) -> dict[tuple[str, str], tuple[str, ...]]:
    """Per (node, digest): lifecycle event names in first-occurrence order.

    This is the projection of the DAG that is comparable *across*
    runtimes: which message completes a quorum (and therefore the exact
    cause edges and Lamport values) varies with real-transport
    interleaving, but every correct node must observe the same lifecycle
    chain for every logged payload.
    """
    chains: dict[tuple[str, str], list[str]] = {}
    for event in events:
        if event.name not in LIFECYCLE:
            continue
        digest = event.get("digest")
        if not isinstance(digest, str):
            continue
        chain = chains.setdefault((event.node, digest), [])
        if event.name not in chain:
            chain.append(event.name)
    return {key: tuple(chain) for key, chain in chains.items()}


def lifecycle_shape(events: Iterable[TraceEvent]) -> dict[str, object]:
    """Canonical summary of the lifecycle projection for shape comparison.

    ``chain_shapes`` is the sorted set of distinct *complete* per-(node,
    digest) chains; ``complete`` counts chains carrying every lifecycle
    mark, ``partial`` the in-flight remainder (run-end tails).  The
    consensus marks (``bft.preprepare`` → ``bft.commit`` →
    ``req.logged``) appear in protocol order in every chain on every
    runtime; ``bus.rx`` — a *local* observation, not a protocol step —
    leads the chain on in-order runtimes (sim, TCP's synchronous inject)
    but may float later when the runtime races the bus feed against
    consensus traffic (the multiprocess queue).
    """
    chains = lifecycle_chains(events)
    complete = [chain for chain in chains.values() if set(chain) == set(LIFECYCLE)]
    return {
        "nodes": len({node for node, _ in chains}),
        "complete": len(complete),
        "partial": len(chains) - len(complete),
        "chain_shapes": sorted({",".join(chain) for chain in complete}),
    }


def events_from_jsonl(path: str) -> list[TraceEvent]:
    """Read a trace for DAG construction (thin alias, import-cycle free)."""
    from repro.obs.sinks import read_trace

    trace = read_trace(path)
    if not trace:
        raise CodecError(f"trace {path!r} is empty")
    return trace
