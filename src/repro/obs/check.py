"""The invariant oracle: juridical guarantees checked against a trace.

ROADMAP item 6 wants adversarial campaigns judged mechanically; this
module is the judge.  Given a trace (from any runtime — sim, TCP, or the
merged multiprocess shards) and the set of known-faulty nodes, it checks
the paper's juridical invariants and the causal DAG's structural health:

==========  ===============================================================
code        invariant
==========  ===============================================================
``OBS001``  **No commit divergence**: correct nodes that log a request at
            the same BFT sequence number log the same digest.
``OBS002``  **No omission**: a payload logged by a correct node is logged
            by every correct node that demonstrably kept running past the
            logging point (run-end tails and crashes are not omissions;
            a ``req.synced`` backfill via StateSync also satisfies the
            durability obligation — the node holds the payload in a
            checkpoint-verified block even though it missed the DECIDE).
``OBS003``  **Provenance**: every logged digest was received from the bus
            by at least one node (``bus.rx`` precedes ``req.logged``
            somewhere) — a digest with no reception anywhere was
            fabricated inside the consensus layer.
``OBS004``  **Bounded recovery**: view changes complete (and, when a bound
            is given, complete within it); an open stall at trace end
            means ordering never recovered.
``OBS005``  **Phase telescoping**: per-request phase latencies sum to the
            end-to-end latency exactly (float tolerance 1e-9).
``OBS006``  **DAG: orphan cause** — an event cites a causal parent absent
            from the trace (lost shard, truncated file).
``OBS007``  **DAG: duplicate identity** — two events claim one
            ``node#idx`` (corrupt merge).
``OBS008``  **DAG: Lamport regression** — an edge whose child does not
            advance the clock (broken context propagation).
==========  ===============================================================

Checks never raise on malformed traces; they report findings.  A finding
names the offending node and sequence/digest so a failing campaign run
points at the culprit, not at a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.causal import build_dag
from repro.obs.spans import pair_request_spans, pair_view_changes
from repro.obs.trace import TraceEvent

#: Cross-node timestamp slack for the omission liveness guard (OBS002).
#: Zero-cost in the simulator's shared virtual clock; generous enough to
#: absorb the per-node clock offsets of the real-time runtimes.
DEFAULT_TAIL_SLACK_S = 0.25


@dataclass(frozen=True)
class OracleFinding:
    """One invariant violation, addressable to a node and sequence."""

    code: str
    message: str
    node: str = ""
    seq: int = -1
    digest: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "node": self.node,
            "seq": self.seq,
            "digest": self.digest,
        }


@dataclass
class OracleReport:
    """All findings from one oracle run plus what was checked."""

    findings: list[OracleFinding] = field(default_factory=list)
    checked_events: int = 0
    checked_nodes: int = 0
    faulty_nodes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def to_dicts(self) -> list[dict[str, object]]:
        return [finding.to_dict() for finding in self.findings]


def _logged_events(events: Sequence[TraceEvent]) -> list[TraceEvent]:
    out = []
    for event in events:
        if event.name != "req.logged":
            continue
        if not isinstance(event.get("digest"), str):
            continue
        out.append(event)
    return out


def _check_divergence(
    logged: Sequence[TraceEvent], correct: set[str]
) -> Iterable[OracleFinding]:
    # OBS001: per BFT seq, correct nodes must agree on the digest.
    by_seq: dict[int, dict[str, str]] = {}
    for event in logged:
        if event.node not in correct:
            continue
        seq = event.get("seq")
        if not isinstance(seq, int):
            continue
        by_seq.setdefault(seq, {})[event.node] = str(event.get("digest"))
    for seq in sorted(by_seq):
        digests = by_seq[seq]
        distinct: dict[str, list[str]] = {}
        for node, digest in digests.items():
            distinct.setdefault(digest, []).append(node)
        if len(distinct) <= 1:
            continue
        # The majority digest is the "agreed" one; every node on another
        # digest is named individually.
        majority = max(distinct, key=lambda d: (len(distinct[d]), d))
        for digest, nodes in sorted(distinct.items()):
            if digest == majority:
                continue
            for node in sorted(nodes):
                yield OracleFinding(
                    code="OBS001",
                    message=(
                        f"commit divergence at seq {seq}: {node} logged "
                        f"{digest[:16]}… while the majority logged "
                        f"{majority[:16]}…"
                    ),
                    node=node,
                    seq=seq,
                    digest=digest,
                )


def _check_omission(
    events: Sequence[TraceEvent],
    logged: Sequence[TraceEvent],
    correct: set[str],
    tail_slack_s: float,
) -> Iterable[OracleFinding]:
    # OBS002: a digest logged by one correct node must be logged by every
    # correct node that kept producing events past t_log + slack.  A
    # StateSync backfill (req.synced) counts: the node durably holds the
    # payload inside a checkpoint-verified block, it just never saw the
    # DECIDE (message loss, partition, or rejoining after a crash).
    last_event_t = {node: 0.0 for node in correct}
    synced_by: dict[str, set[str]] = {}
    for event in events:
        if event.node in last_event_t and event.t > last_event_t[event.node]:
            last_event_t[event.node] = event.t
        if event.name == "req.synced" and isinstance(event.get("digest"), str):
            synced_by.setdefault(str(event.get("digest")), set()).add(event.node)
    logged_by: dict[str, dict[str, float]] = {}
    seq_of: dict[str, int] = {}
    for event in logged:
        if event.node not in correct:
            continue
        digest = str(event.get("digest"))
        logged_by.setdefault(digest, {})[event.node] = event.t
        seq = event.get("seq")
        if isinstance(seq, int):
            seq_of.setdefault(digest, seq)
    for digest in sorted(logged_by):
        nodes_logged = logged_by[digest]
        t_log = max(nodes_logged.values())
        for node in sorted(correct - set(nodes_logged)):
            if last_event_t[node] <= t_log + tail_slack_s:
                continue  # stopped/crashed near the logging point: a tail
            if node in synced_by.get(digest, ()):
                continue  # StateSync backfilled the block holding it
            yield OracleFinding(
                code="OBS002",
                message=(
                    f"omission: {node} never logged {digest[:16]}… although "
                    f"{len(nodes_logged)} correct node(s) logged it by "
                    f"t={t_log:.6f} and {node} was still running at "
                    f"t={last_event_t[node]:.6f}"
                ),
                node=node,
                seq=seq_of.get(digest, -1),
                digest=digest,
            )


def _check_provenance(
    events: Sequence[TraceEvent], logged: Sequence[TraceEvent]
) -> Iterable[OracleFinding]:
    # OBS003: gated on the trace containing receptions at all, so partial
    # traces (consensus-only instrumentation) don't false-positive.
    received = {
        str(event.get("digest"))
        for event in events
        if event.name == "bus.rx" and isinstance(event.get("digest"), str)
    }
    if not received:
        return
    for event in logged:
        digest = str(event.get("digest"))
        if digest in received:
            continue
        seq = event.get("seq")
        yield OracleFinding(
            code="OBS003",
            message=(
                f"provenance: {event.node} logged {digest[:16]}… at seq "
                f"{seq} but no node ever received it from a bus — the "
                "payload was fabricated inside the consensus layer"
            ),
            node=event.node,
            seq=seq if isinstance(seq, int) else -1,
            digest=digest,
        )


def _check_view_changes(
    events: Sequence[TraceEvent], vc_bound_s: float | None
) -> Iterable[OracleFinding]:
    # OBS004: every stall must close; bounded when a bound is supplied.
    for stall in pair_view_changes(events):
        if stall.ended_at is None:
            yield OracleFinding(
                code="OBS004",
                message=(
                    f"view change on {stall.node} started at "
                    f"t={stall.started_at:.6f} never completed"
                ),
                node=stall.node,
            )
        elif vc_bound_s is not None and stall.duration > vc_bound_s:
            yield OracleFinding(
                code="OBS004",
                message=(
                    f"view change on {stall.node} took "
                    f"{stall.duration:.6f}s, over the {vc_bound_s:.6f}s bound"
                ),
                node=stall.node,
            )


def _check_telescoping(events: Sequence[TraceEvent]) -> Iterable[OracleFinding]:
    # OBS005: the phase decomposition must telescope exactly.
    report = pair_request_spans(events)
    for span in report.spans:
        drift = abs(sum(span.phases().values()) - span.end_to_end)
        if drift > 1e-9:
            yield OracleFinding(
                code="OBS005",
                message=(
                    f"phase latencies for {span.digest[:16]}… on {span.node} "
                    f"sum {drift:.3e}s away from the end-to-end latency"
                ),
                node=span.node,
                seq=span.seq if span.seq is not None else -1,
                digest=span.digest,
            )


def _check_dag(events: Sequence[TraceEvent]) -> Iterable[OracleFinding]:
    dag = build_dag(events)
    by_seq = {event.seq: event for event in dag.events}
    for seq, cause in dag.orphans:
        event = by_seq[seq]
        yield OracleFinding(
            code="OBS006",
            message=(
                f"event {seq} ({event.name} on {event.node}) cites causal "
                f"parent {cause} which is absent from the trace"
            ),
            node=event.node,
            seq=seq,
        )
    for identity in dag.duplicate_ids:
        yield OracleFinding(
            code="OBS007",
            message=f"event identity {identity} is claimed by multiple events",
            node=identity.split("#", 1)[0],
        )
    for edge in dag.clock_regressions:
        child = by_seq[edge.child]
        yield OracleFinding(
            code="OBS008",
            message=(
                f"Lamport regression on {edge.kind} edge "
                f"{edge.parent}->{edge.child}: {child.name} on {child.node} "
                "does not advance the clock past its parent"
            ),
            node=child.node,
            seq=edge.child,
        )


def check_trace(
    events: Iterable[TraceEvent],
    faulty: Iterable[str] = (),
    vc_bound_s: float | None = None,
    tail_slack_s: float = DEFAULT_TAIL_SLACK_S,
) -> OracleReport:
    """Run every invariant over ``events``; returns the full report.

    ``faulty`` names nodes known (from the scenario config) to be
    Byzantine or crashed: the agreement invariants quantify over the
    *correct* nodes only, as the protocol's guarantees do.
    """
    ordered = sorted(events, key=lambda e: e.seq)
    faulty_set = frozenset(faulty)
    nodes = {event.node for event in ordered}
    correct = nodes - faulty_set
    logged = _logged_events(ordered)

    report = OracleReport(
        checked_events=len(ordered),
        checked_nodes=len(nodes),
        faulty_nodes=tuple(sorted(faulty_set)),
    )
    report.findings.extend(_check_divergence(logged, correct))
    report.findings.extend(
        _check_omission(ordered, logged, correct, tail_slack_s)
    )
    report.findings.extend(_check_provenance(ordered, logged))
    report.findings.extend(_check_view_changes(ordered, vc_bound_s))
    report.findings.extend(_check_telescoping(ordered))
    report.findings.extend(_check_dag(ordered))
    return report
