"""Trace sinks: JSONL with stable field order, plus the no-op sink.

The JSONL format is the determinism contract made concrete: one event per
line, keys in a fixed order (``seq``, ``t``, ``node``, ``name``, then the
event's fields sorted by key under ``f``), compact separators, ASCII-only.  Two
identical-seed runs therefore produce byte-identical files — asserted by
``tests/obs/test_determinism.py`` — which makes traces diffable artifacts:
a behaviour change between commits shows up as a one-line diff, not a
shrug.

Floats are serialized via ``json``'s ``repr``-based shortest round-trip
encoding, which is deterministic across runs and platforms for equal
values; virtual time is derived purely from the seed, so equal it is.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.obs.trace import TraceEvent
from repro.util.errors import CodecError


class NullSink:
    """Discards events; the sink analogue of :data:`~repro.obs.trace.NULL_TRACER`."""

    def write_event(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


def encode_event(event: TraceEvent) -> str:
    """One JSONL line (no newline), keys in canonical order.

    Event fields nest under ``"f"`` so a field named like an envelope key
    (``req.logged`` carries a BFT ``seq``) can never shadow the trace
    sequence number.
    """
    record: dict[str, object] = {
        "seq": event.seq,
        "t": event.t,
        "node": event.node,
        "name": event.name,
    }
    # Causal keys are conditional so pre-causal traces (and untraced-clock
    # events) keep their exact historical bytes.
    if event.idx >= 0:
        record["idx"] = event.idx
        record["lam"] = event.lamport
    if event.cause:
        record["cause"] = event.cause
    if event.fields:  # already sorted by key; dumps preserves insertion order
        record["f"] = dict(event.fields)
    return json.dumps(record, separators=(",", ":"), ensure_ascii=True)


def decode_event(line: str) -> TraceEvent:
    """Inverse of :func:`encode_event`."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CodecError(f"bad trace line: {exc}") from exc
    if not isinstance(record, dict):
        raise CodecError(f"bad trace line: expected an object, got {type(record).__name__}")
    fields = record.get("f", {})
    if not isinstance(fields, dict):
        raise CodecError("bad trace line: 'f' must be an object")
    try:
        seq = record["seq"]
        t = record["t"]
        node = record["node"]
        name = record["name"]
    except KeyError as exc:
        raise CodecError(f"trace line missing key {exc}") from exc
    return TraceEvent(
        seq=int(seq), t=float(t), node=str(node), name=str(name),
        fields=tuple(sorted(fields.items())),
        idx=int(record.get("idx", -1)),
        lamport=int(record.get("lam", 0)),
        cause=str(record.get("cause", "")),
    )


class JsonlTraceSink:
    """Streams events to a file as canonical JSONL."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="ascii", newline="\n")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def write_event(self, event: TraceEvent) -> None:
        self._handle.write(encode_event(event) + "\n")

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace(events: Iterable[TraceEvent], path: str) -> int:
    """Write all ``events`` to ``path``; returns the event count."""
    count = 0
    with JsonlTraceSink(path) as sink:
        for event in events:
            sink.write_event(event)
            count += 1
    return count


def iter_trace(path: str) -> Iterator[TraceEvent]:
    """Stream events back from a JSONL trace file."""
    with open(path, encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield decode_event(line)


def read_trace(path: str) -> list[TraceEvent]:
    return list(iter_trace(path))
