"""``python -m repro.obs`` — summarize a JSONL trace into operator tables.

Subcommands::

    python -m repro.obs summary trace.jsonl [--node node-0] [--since 3.0]
    python -m repro.obs events trace.jsonl

``summary`` prints the per-phase latency decomposition (span pairing over
the request lifecycle events), drop/dedup tables, and view-change stalls;
``events`` prints per-name event counts for a quick look at what a trace
contains.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter as TallyCounter

from repro.analysis import format_table
from repro.obs.sinks import read_trace
from repro.obs.spans import PHASES, pair_request_spans, pair_view_changes
from repro.util.errors import CodecError


def _ms(value: float) -> str:
    return f"{value * 1000:.3f} ms"


def _phase_table(report) -> str:
    rows = []
    for name in (*PHASES, "end_to_end"):
        stats = report.end_to_end if name == "end_to_end" else report.phase_stats[name]
        rows.append([
            name,
            str(stats.count),
            _ms(stats.mean),
            _ms(stats.minimum),
            _ms(stats.maximum),
            _ms(stats.total),
        ])
    return format_table(
        ["phase", "count", "mean", "min", "max", "total"],
        rows,
        title="Per-request phase latency (bus reception -> LOG)",
    )


def _drop_table(events) -> str | None:
    drops: TallyCounter = TallyCounter()
    for event in events:
        if event.name == "layer.dedup_drop":
            where = event.get("where", "?")
            drops[(event.node, str(where))] += 1
    if not drops:
        return None
    rows = [
        [node, where, str(count)]
        for (node, where), count in sorted(drops.items())
    ]
    return format_table(["node", "where", "drops"], rows,
                        title="Dedup/filter drops")


def _viewchange_table(events) -> str | None:
    stalls = pair_view_changes(events)
    if not stalls:
        return None
    rows = []
    for stall in stalls:
        rows.append([
            stall.node,
            f"{stall.started_at:.3f} s",
            "open" if stall.ended_at is None else f"{stall.ended_at:.3f} s",
            "-" if stall.duration is None else _ms(stall.duration),
        ])
    return format_table(["node", "start", "end", "stall"], rows,
                        title="View-change stalls")


def _cmd_summary(args, out) -> int:
    events = read_trace(args.trace)
    report = pair_request_spans(events, node=args.node, since=args.since)
    print(_phase_table(report), file=out)
    if report.incomplete_count:
        print(f"incomplete spans: {report.incomplete_count} "
              "(request observed but never logged on that node)", file=out)
    for table in (_drop_table(events), _viewchange_table(events)):
        if table is not None:
            print(file=out)
            print(table, file=out)
    return 0


def _cmd_events(args, out) -> int:
    tally: TallyCounter = TallyCounter()
    nodes: set[str] = set()
    last_t = 0.0
    events = read_trace(args.trace)
    for event in events:
        tally[event.name] += 1
        nodes.add(event.node)
        last_t = max(last_t, event.t)
    rows = [[name, str(count)] for name, count in sorted(tally.items())]
    print(format_table(["event", "count"], rows, title="Event counts"), file=out)
    print(f"{len(events)} events, {len(nodes)} nodes, "
          f"last event at t={last_t:.3f} s", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="summarize deterministic JSONL traces (phase latencies, drops)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="phase-latency and drop tables")
    summary.add_argument("trace", help="JSONL trace file")
    summary.add_argument("--node", default=None,
                         help="restrict span pairing to one node's view")
    summary.add_argument("--since", type=float, default=None,
                         help="drop spans logged before this virtual time (warmup)")

    events = subparsers.add_parser("events", help="per-name event counts")
    events.add_argument("trace", help="JSONL trace file")

    args = parser.parse_args(argv)
    handlers = {"summary": _cmd_summary, "events": _cmd_events}
    try:
        return handlers[args.command](args, out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CodecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
