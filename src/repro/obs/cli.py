"""``python -m repro.obs`` — summarize a JSONL trace into operator tables.

Subcommands::

    python -m repro.obs summary trace.jsonl [--node node-0] [--since 3.0]
    python -m repro.obs events trace.jsonl
    python -m repro.obs dag trace.jsonl [--json] [--no-time]
    python -m repro.obs check trace.jsonl [--faulty node-1 ...] [--vc-bound 2.0]

``summary`` prints the per-phase latency decomposition (span pairing over
the request lifecycle events), drop/dedup tables, and view-change stalls;
``events`` prints per-name event counts for a quick look at what a trace
contains.  ``dag`` reconstructs the causal message-flow DAG (edge/anomaly
counts, per-hop latencies, a canonical fingerprint; ``--json`` dumps the
whole DAG).  ``check`` runs the invariant oracle and exits 1 with one
line per finding — the gate adversarial campaigns and CI run against.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter as TallyCounter

from repro.analysis import format_table
from repro.obs.causal import build_dag, lifecycle_shape
from repro.obs.check import DEFAULT_TAIL_SLACK_S, check_trace
from repro.obs.sinks import read_trace
from repro.obs.spans import PHASES, pair_request_spans, pair_view_changes
from repro.util.errors import CodecError


def _ms(value: float) -> str:
    return f"{value * 1000:.3f} ms"


def _phase_table(report) -> str:
    rows = []
    for name in (*PHASES, "end_to_end"):
        stats = report.end_to_end if name == "end_to_end" else report.phase_stats[name]
        rows.append([
            name,
            str(stats.count),
            _ms(stats.mean),
            _ms(stats.minimum),
            _ms(stats.maximum),
            _ms(stats.total),
        ])
    return format_table(
        ["phase", "count", "mean", "min", "max", "total"],
        rows,
        title="Per-request phase latency (bus reception -> LOG)",
    )


def _drop_table(events) -> str | None:
    drops: TallyCounter = TallyCounter()
    for event in events:
        if event.name == "layer.dedup_drop":
            where = event.get("where", "?")
            drops[(event.node, str(where))] += 1
    if not drops:
        return None
    rows = [
        [node, where, str(count)]
        for (node, where), count in sorted(drops.items())
    ]
    return format_table(["node", "where", "drops"], rows,
                        title="Dedup/filter drops")


def _viewchange_table(events) -> str | None:
    stalls = pair_view_changes(events)
    if not stalls:
        return None
    rows = []
    for stall in stalls:
        rows.append([
            stall.node,
            f"{stall.started_at:.3f} s",
            "open" if stall.ended_at is None else f"{stall.ended_at:.3f} s",
            "-" if stall.duration is None else _ms(stall.duration),
        ])
    return format_table(["node", "start", "end", "stall"], rows,
                        title="View-change stalls")


def _cmd_summary(args, out) -> int:
    events = read_trace(args.trace)
    report = pair_request_spans(events, node=args.node, since=args.since)
    print(_phase_table(report), file=out)
    if report.incomplete_count:
        print(f"incomplete spans: {report.incomplete_count} "
              "(request observed but never logged on that node)", file=out)
    for table in (_drop_table(events), _viewchange_table(events)):
        if table is not None:
            print(file=out)
            print(table, file=out)
    return 0


def _cmd_events(args, out) -> int:
    tally: TallyCounter = TallyCounter()
    nodes: set[str] = set()
    last_t = 0.0
    events = read_trace(args.trace)
    for event in events:
        tally[event.name] += 1
        nodes.add(event.node)
        last_t = max(last_t, event.t)
    rows = [[name, str(count)] for name, count in sorted(tally.items())]
    print(format_table(["event", "count"], rows, title="Event counts"), file=out)
    print(f"{len(events)} events, {len(nodes)} nodes, "
          f"last event at t={last_t:.3f} s", file=out)
    return 0


def _cmd_dag(args, out) -> int:
    events = read_trace(args.trace)
    dag = build_dag(events)
    if args.json:
        print(json.dumps(dag.to_dict(include_time=not args.no_time),
                         separators=(",", ":"), sort_keys=True), file=out)
        return 0
    edges = dag.edges
    message_edges = dag.message_edges
    print(f"{len(dag.events)} events, {len(edges)} edges "
          f"({len(message_edges)} message, "
          f"{len(edges) - len(message_edges)} program), "
          f"{len(dag.roots())} roots", file=out)
    shape = lifecycle_shape(events)
    print(f"lifecycle: {shape['complete']} complete chains across "
          f"{shape['nodes']} nodes ({shape['partial']} in flight)", file=out)
    hops = dag.hop_latencies()
    if hops:
        rows = [
            [src, dst, str(stats.count), f"{stats.mean_s * 1000:.3f} ms",
             f"{stats.min_s * 1000:.3f} ms", f"{stats.max_s * 1000:.3f} ms"]
            for (src, dst), stats in sorted(hops.items())
        ]
        print(format_table(["src", "dst", "msgs", "mean", "min", "max"], rows,
                           title="Per-hop latency (message edges)"), file=out)
    if dag.anomaly_count:
        print(f"anomalies: {len(dag.orphans)} orphan causes, "
              f"{len(dag.duplicate_ids)} duplicate ids, "
              f"{len(dag.duplicate_edges)} duplicate deliveries, "
              f"{len(dag.clock_regressions)} clock regressions", file=out)
    print(f"fingerprint: {dag.fingerprint(include_time=not args.no_time)}",
          file=out)
    return 0


def _cmd_check(args, out) -> int:
    events = read_trace(args.trace)
    report = check_trace(
        events,
        faulty=args.faulty,
        vc_bound_s=args.vc_bound,
        tail_slack_s=args.tail_slack,
    )
    print(f"checked {report.checked_events} events across "
          f"{report.checked_nodes} nodes"
          + (f" (faulty: {', '.join(report.faulty_nodes)})"
             if report.faulty_nodes else ""), file=out)
    if report.ok:
        print("ok: all invariants hold", file=out)
        return 0
    for finding in report.findings:
        print(f"{finding.code}: {finding.message}", file=out)
    breakdown = ", ".join(
        f"{code}={count}" for code, count in sorted(report.by_code().items())
    )
    print(f"FAIL: {len(report.findings)} finding(s) [{breakdown}]", file=out)
    return 1


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="summarize deterministic JSONL traces (phase latencies, drops)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="phase-latency and drop tables")
    summary.add_argument("trace", help="JSONL trace file")
    summary.add_argument("--node", default=None,
                         help="restrict span pairing to one node's view")
    summary.add_argument("--since", type=float, default=None,
                         help="drop spans logged before this virtual time (warmup)")

    events = subparsers.add_parser("events", help="per-name event counts")
    events.add_argument("trace", help="JSONL trace file")

    dag = subparsers.add_parser("dag", help="reconstruct the causal message-flow DAG")
    dag.add_argument("trace", help="JSONL trace file")
    dag.add_argument("--json", action="store_true",
                     help="dump the full DAG as canonical JSON")
    dag.add_argument("--no-time", action="store_true",
                     help="exclude timestamps (cross-runtime-comparable output)")

    check = subparsers.add_parser("check", help="run the invariant oracle (exit 1 on findings)")
    check.add_argument("trace", help="JSONL trace file")
    check.add_argument("--faulty", action="append", default=[],
                       help="node id known to be Byzantine/crashed (repeatable); "
                            "agreement invariants quantify over the rest")
    check.add_argument("--vc-bound", type=float, default=None,
                       help="max allowed view-change stall in seconds")
    check.add_argument("--tail-slack", type=float, default=DEFAULT_TAIL_SLACK_S,
                       help="liveness slack for the omission check (seconds)")

    args = parser.parse_args(argv)
    handlers = {
        "summary": _cmd_summary,
        "events": _cmd_events,
        "dag": _cmd_dag,
        "check": _cmd_check,
    }
    try:
        return handlers[args.command](args, out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CodecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
