"""Span pairing: derive per-request phase latencies from a flat trace.

The tracer records *points* (``bus.rx``, ``bft.preprepare``, ``bft.commit``,
``req.logged``); this pass folds them into per-request spans keyed by
``(node, digest)`` and decomposes the end-to-end latency the paper reports
(bus reception → finalized commit, Fig. 6/7) into three phases:

========================  ====================================================
phase                     interval
========================  ====================================================
``rx->propose``           bus reception → preprepare accepted on this node
``propose->commit``       preprepare accepted → commit quorum reached
``commit->log``           commit quorum → request LOGged (block builder)
========================  ====================================================

The three phases telescope, so their sum equals the end-to-end latency by
construction — the conformance test holds the decomposition to within
1e-9 s of the scenario's :class:`~repro.sim.monitor.LatencyRecorder`.

Robustness contract: spans may complete out of order (commit for request
B before request A), and spans that never complete (dropped requests,
crashes, run end) are reported as *incomplete*, never raised on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.trace import TraceEvent

#: Phase names in causal order.
PHASES = ("rx->propose", "propose->commit", "commit->log")

#: Event name → span mark attribute.
_MARKS = {
    "bus.rx": "rx_t",
    "bft.preprepare": "preprepare_t",
    "bft.commit": "commit_t",
    "req.logged": "logged_t",
}


@dataclass
class RequestSpan:
    """All marks observed for one (node, digest)."""

    node: str
    digest: str
    rx_t: float | None = None
    preprepare_t: float | None = None
    commit_t: float | None = None
    logged_t: float | None = None
    seq: int | None = None  # BFT sequence number, from req.logged

    @property
    def complete(self) -> bool:
        return None not in (self.rx_t, self.preprepare_t, self.commit_t, self.logged_t)

    @property
    def end_to_end(self) -> float:
        if not self.complete:
            raise ValueError(f"span {self.digest} on {self.node} is incomplete")
        return self.logged_t - self.rx_t

    def phases(self) -> dict[str, float]:
        if not self.complete:
            raise ValueError(f"span {self.digest} on {self.node} is incomplete")
        return {
            "rx->propose": self.preprepare_t - self.rx_t,
            "propose->commit": self.commit_t - self.preprepare_t,
            "commit->log": self.logged_t - self.commit_t,
        }


@dataclass
class PhaseStats:
    """Aggregate statistics of one phase across spans."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class SpanReport:
    """Paired spans plus the per-phase aggregates."""

    spans: list[RequestSpan] = field(default_factory=list)
    incomplete: list[RequestSpan] = field(default_factory=list)
    phase_stats: dict[str, PhaseStats] = field(default_factory=dict)
    end_to_end: PhaseStats = field(default_factory=lambda: PhaseStats("end_to_end"))

    @property
    def incomplete_count(self) -> int:
        return len(self.incomplete)


def pair_request_spans(
    events: Iterable[TraceEvent],
    node: str | None = None,
    since: float | None = None,
) -> SpanReport:
    """Fold request-lifecycle events into spans and phase statistics.

    ``node`` restricts pairing to one node's view (phase sums then match
    that node's latency recorder); ``since`` drops spans logged before a
    warmup cutoff, mirroring ``LatencyRecorder.since``.
    """
    open_spans: dict[tuple[str, str], RequestSpan] = {}
    done: list[RequestSpan] = []
    for event in events:
        mark = _MARKS.get(event.name)
        if mark is None:
            continue
        if node is not None and event.node != node:
            continue
        digest = event.get("digest")
        if not isinstance(digest, str):
            continue  # malformed record: pairing is best-effort, never raises
        key = (event.node, digest)
        span = open_spans.get(key)
        if span is None:
            span = open_spans[key] = RequestSpan(node=event.node, digest=digest)
        # First mark wins: a re-proposed request (view change) keeps its
        # original preprepare time so phases still telescope.
        if getattr(span, mark) is None:
            setattr(span, mark, event.t)
        if event.name == "req.logged":
            seq = event.get("seq")
            if isinstance(seq, int):
                span.seq = seq
            done.append(open_spans.pop(key))

    report = SpanReport(
        phase_stats={name: PhaseStats(name) for name in PHASES},
    )
    for span in done:
        if not span.complete:
            report.incomplete.append(span)
            continue
        if since is not None and span.logged_t < since:
            continue
        report.spans.append(span)
        for name, value in span.phases().items():
            report.phase_stats[name].observe(value)
        report.end_to_end.observe(span.end_to_end)
    # Spans still open at run end (dropped requests, crash) are incomplete.
    for key in sorted(open_spans):
        report.incomplete.append(open_spans[key])
    return report


@dataclass
class ViewChangeStall:
    """One node's view-change interval (suspicion → new view entered)."""

    node: str
    started_at: float
    ended_at: float | None = None

    @property
    def duration(self) -> float | None:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at


def pair_view_changes(events: Iterable[TraceEvent]) -> list[ViewChangeStall]:
    """Pair ``bft.viewchange.start``/``end`` into per-node stall intervals.

    Escalations (a node voting for view v+1 while still changing views)
    extend the open interval rather than opening a second one — the stall
    the operator cares about is "ordering was halted from t0 to t1".
    """
    open_stalls: dict[str, ViewChangeStall] = {}
    stalls: list[ViewChangeStall] = []
    for event in events:
        if event.name == "bft.viewchange.start":
            if event.node not in open_stalls:
                stall = ViewChangeStall(node=event.node, started_at=event.t)
                open_stalls[event.node] = stall
                stalls.append(stall)
        elif event.name == "bft.viewchange.end":
            stall = open_stalls.pop(event.node, None)
            if stall is not None:
                stall.ended_at = event.t
    return stalls
