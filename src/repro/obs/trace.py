"""Deterministic structured tracing for protocol code.

Protocol components (BFT replica, ZugChain layer, bus reception, export
handler, data center) call :meth:`Tracer.emit` at named points; each call
appends one :class:`TraceEvent` stamped with *virtual* time, the node id,
and a monotonically increasing sequence number.  Because events carry only
scalars derived from protocol state — never wall-clock readings, object
reprs, or unordered-container formatting — two identical-seed runs produce
byte-identical traces, and a traced run produces byte-identical block
hashes to an untraced one (the tracer reads state, it never mutates it).

Tracing is **off by default**: every component holds :data:`NULL_TRACER`,
whose ``emit`` is a no-op, and hot call sites guard field construction
behind ``tracer.enabled`` so the untraced fast path pays a single
attribute read (benchmarked in ``benchmarks/bench_obs_overhead.py``).

Event taxonomy (see DESIGN.md "Observability layer" for semantics):

==========================  =====================================================
name                        emitted when
==========================  =====================================================
``bus.rx``                  a node first observes a request (bus or injection)
``layer.dedup_drop``        the communication layer filters a duplicate
``bft.preprepare``          a replica accepts a preprepare for (view, seq)
``bft.prepare``             an instance reaches the prepared quorum
``bft.commit``              an instance reaches the commit quorum
``req.logged``              the request is LOGged (end of its span)
``bft.viewchange.start``    a replica starts voting for a new view
``bft.viewchange.end``      a replica enters a new view (or abandons the
                            change after proof the old view is live)
``bft.gap.fetch``           a stalled replica asks a peer for decided instances
``bft.gap.filled``          a commit certificate fills an execution gap
``ckpt.stable``             a checkpoint certificate becomes stable
``export.round.start``      a data center begins an export round
``export.read_done``        the read phase of an export round completes
``export.verify_done``      the verify phase completes
``export.delete_done``      the delete phase completes (round finished)
``export.block_sent``       a replica serves blocks to a data center
``export.block_acked``      a data center receives a replica's delete ack
``chain.pruned``            a chain drops blocks below a delete certificate
==========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.util.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (causal imports us)
    from repro.obs.causal import CausalClock

#: Every event name the built-in instrumentation emits (summary tooling
#: groups on these; emitting an unlisted name is allowed for experiments).
EVENT_TAXONOMY = (
    "bus.rx",
    "layer.dedup_drop",
    "bft.preprepare",
    "bft.prepare",
    "bft.commit",
    "req.logged",
    "req.synced",
    "bft.viewchange.start",
    "bft.viewchange.end",
    "bft.gap.fetch",
    "bft.gap.filled",
    "ckpt.stable",
    "export.round.start",
    "export.read_done",
    "export.verify_done",
    "export.delete_done",
    "export.block_sent",
    "export.block_acked",
    "export.round.retried",
    "export.session.resumed",
    "chain.pruned",
    "chaos.fault.applied",
    "chaos.fault.cleared",
    "node.crashed",
    "node.recovered",
)

#: Field value types a trace record may carry.  Deliberately scalar-only:
#: containers have no canonical rendering and bytes must be hex-encoded by
#: the caller so the JSONL sink never guesses.
_SCALAR_TYPES = (str, int, float, bool)


@dataclass(frozen=True)
class TraceEvent:
    """One append-only trace record.

    ``fields`` is a tuple of (key, value) pairs sorted by key — a stable
    order regardless of the keyword order at the emit site, so sinks write
    identical bytes for identical protocol states.

    Causal annotations (``idx``, ``lamport``, ``cause``) are assigned by
    the tracer when the emitting node's env has a bound
    :class:`~repro.obs.causal.CausalClock`; their defaults mean "no causal
    information" and keep pre-causal traces decodable byte-for-byte.
    ``idx`` is the per-node event index (``node#idx`` is the event's
    cluster-unique identity, stable across shard merges); ``cause`` is the
    ``node#idx`` of the event that caused the message being handled when
    this event was recorded, or ``""``.
    """

    seq: int
    t: float
    node: str
    name: str
    fields: tuple[tuple[str, object], ...] = ()
    idx: int = -1
    lamport: int = 0
    cause: str = ""

    def get(self, key: str, default: object = None) -> object:
        for field_key, value in self.fields:
            if field_key == key:
                return value
        return default


class Tracer:
    """No-op base tracer: the interface plus the disabled behaviour.

    ``enabled`` is a class attribute read on the hot path; call sites that
    would compute fields (hex digests, lookups) guard on it::

        if self.tracer.enabled:
            self.tracer.emit("bft.commit", self.env.now(), self.id,
                             seq=seq, digest=digest.hex())
    """

    enabled: bool = False

    def emit(self, name: str, t: float, node: str, **fields: object) -> None:
        """Record one event (no-op here; overridden by recording tracers)."""


class NullTracer(Tracer):
    """Explicit alias of the disabled tracer, for readable wiring code."""


#: Shared disabled tracer: safe to share since it holds no state.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Append-only in-memory tracer with a cluster-wide sequence counter.

    One instance is shared by every node of a cluster, so ``seq`` gives a
    total order over all events consistent with virtual-time causality
    (the discrete-event kernel fires one callback at a time; the asyncio
    runtime serializes on the event loop).
    """

    enabled = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._seq = 0
        self._clocks: dict[str, "CausalClock"] = {}

    def bind_clock(self, node: str, clock: "CausalClock") -> None:
        """Attach a node env's causal clock so its events carry identity.

        Binding is what turns causal annotation on for a node: unbound
        nodes record plain events (idx −1, no cause) exactly as before.
        """
        self._clocks[node] = clock

    def emit(self, name: str, t: float, node: str, **fields: object) -> None:
        for key, value in fields.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise ProtocolError(
                    f"trace field {key}={value!r} is not a scalar; hex-encode "
                    "bytes and summarize containers before emitting"
                )
        clock = self._clocks.get(node)
        if clock is None:
            idx, lamport, cause = -1, 0, ""
        else:
            idx, lamport, cause = clock.observe()
        event = TraceEvent(
            seq=self._seq,
            t=t,
            node=node,
            name=name,
            fields=tuple(sorted(fields.items())),
            idx=idx,
            lamport=lamport,
            cause=cause,
        )
        self._seq += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def iter_events(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events_named(self, name: str) -> list[TraceEvent]:
        return [event for event in self._events if event.name == name]

    def clear(self) -> None:
        self._events.clear()
