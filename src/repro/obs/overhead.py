"""Observability hot-path cost measurement (injected clock, DET001-clean).

The untraced fast path pays two things per protocol action:

* the **guard** — one ``tracer.enabled`` attribute read and a skipped
  branch per instrumentation site (~tens of ns);
* the **stamp** — one :meth:`CausalClock.stamp` per ``BaseEnv._emit``:
  an integer tick plus one frozen-dataclass :class:`CausalContext`
  construction (~hundreds of ns, amortized over the funnel's existing
  recipient sort and counter work — *per emission*, not per site).

This module owns the measurement loops so ``benchmarks/`` and ``repro
bench --suite obs`` share one implementation.  It never reads a clock
itself: callers inject one (``repro.runtime.wallclock.wall_timer`` in
production, a fake in tests), keeping the module clean under zuglint's
DET001 and the numbers testable.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.causal import CausalClock
from repro.obs.trace import NULL_TRACER, RecordingTracer

#: Loop length that dwarfs timer resolution while staying sub-second.
DEFAULT_CALLS = 100_000

#: Regression budget for the per-emission causal stamp (ns).  Measured
#: ~0.6 µs on the reference container (frozen-dataclass construction
#: dominates); the budget is deliberately loose — it catches accidental
#: O(n) work or allocation storms in the funnel, not scheduler jitter.
STAMP_BUDGET_NS = 2_000.0


def _time_loop(clock: Callable[[], float], body: Callable[[], object],
               calls: int) -> float:
    start = clock()
    for _ in range(calls):
        body()
    return clock() - start


def _per_call_ns(elapsed_s: float, baseline_s: float, calls: int) -> float:
    return max(0.0, elapsed_s - baseline_s) / calls * 1e9


def measure_obs_overhead(
    clock: Callable[[], float], calls: int = DEFAULT_CALLS
) -> dict[str, float]:
    """Per-call costs (ns) of the three observability hot paths.

    Returns ``calls`` plus:

    * ``null_guard_ns`` — the guarded no-op emit (per instrumentation
      site, tracing disabled);
    * ``causal_stamp_ns`` — ``CausalClock.stamp()`` (per emission,
      traced **and** untraced: the clock always ticks);
    * ``recording_emit_ns`` — a recording emit with a bound clock (per
      event, tracing enabled).

    All three subtract the bare loop's own cost, measured in-process so
    the comparison is against the same interpreter state.
    """
    causal = CausalClock("node-0")
    recording = RecordingTracer()
    recording.bind_clock("node-0", CausalClock("node-0"))
    digest = "ab" * 32

    def nothing() -> None:
        pass

    def guarded() -> None:
        if NULL_TRACER.enabled:
            NULL_TRACER.emit("bus.rx", 0.0, "node-0", digest=digest)

    def recorded() -> None:
        recording.emit("bus.rx", 0.0, "node-0", digest=digest)

    baseline_s = _time_loop(clock, nothing, calls)
    guard_s = _time_loop(clock, guarded, calls)
    stamp_s = _time_loop(clock, causal.stamp, calls)
    emit_s = _time_loop(clock, recorded, calls)
    recording.clear()
    return {
        "calls": float(calls),
        "null_guard_ns": _per_call_ns(guard_s, baseline_s, calls),
        "causal_stamp_ns": _per_call_ns(stamp_s, baseline_s, calls),
        "recording_emit_ns": _per_call_ns(emit_s, baseline_s, calls),
    }
