"""repro.obs — deterministic observability: tracing, metrics, spans, sinks.

Three parts (see DESIGN.md "Observability layer"):

* :mod:`repro.obs.trace` — structured tracing at named protocol points,
  stamped with virtual time + node id + a monotonic sequence; off by
  default via :data:`NULL_TRACER`.
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms with
  per-node registries and a cluster-level ``aggregate()`` that folds in
  every runtime Env's counters (sends, drops, decode errors, oversize
  frames).
* :mod:`repro.obs.spans` / :mod:`repro.obs.sinks` — span pairing into
  per-request phase latencies, and a byte-stable JSONL trace format read
  back by ``python -m repro.obs summary``.
"""

from repro.obs.causal import (
    LIFECYCLE,
    CausalClock,
    CausalContext,
    CausalDag,
    CausalEdge,
    HopStats,
    build_dag,
    event_id,
    lifecycle_chains,
    lifecycle_shape,
    merge_shards,
)
from repro.obs.check import (
    DEFAULT_TAIL_SLACK_S,
    OracleFinding,
    OracleReport,
    check_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    ClusterMetrics,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fold_env_counters,
)
from repro.obs.sinks import (
    JsonlTraceSink,
    NullSink,
    decode_event,
    encode_event,
    iter_trace,
    read_trace,
    write_trace,
)
from repro.obs.spans import (
    PHASES,
    PhaseStats,
    RequestSpan,
    SpanReport,
    ViewChangeStall,
    pair_request_spans,
    pair_view_changes,
)
from repro.obs.trace import (
    EVENT_TAXONOMY,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "LIFECYCLE",
    "CausalClock",
    "CausalContext",
    "CausalDag",
    "CausalEdge",
    "HopStats",
    "build_dag",
    "event_id",
    "lifecycle_chains",
    "lifecycle_shape",
    "merge_shards",
    "DEFAULT_TAIL_SLACK_S",
    "OracleFinding",
    "OracleReport",
    "check_trace",
    "EVENT_TAXONOMY",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "DEFAULT_LATENCY_BUCKETS_S",
    "ClusterMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "fold_env_counters",
    "JsonlTraceSink",
    "NullSink",
    "decode_event",
    "encode_event",
    "iter_trace",
    "read_trace",
    "write_trace",
    "PHASES",
    "PhaseStats",
    "RequestSpan",
    "SpanReport",
    "ViewChangeStall",
    "pair_request_spans",
    "pair_view_changes",
]
