"""Exception hierarchy for the ZugChain reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class at API boundaries while tests can assert on precise subclasses.
"""


class ReproError(Exception):
    """Base class of every error raised by this library."""


class CodecError(ReproError):
    """Raised when encoding or decoding wire data fails."""


class CryptoError(ReproError):
    """Raised on signature verification failure or malformed key material."""


class ChainError(ReproError):
    """Raised on blockchain integrity violations (bad links, hashes, pruning)."""


class ProtocolError(ReproError):
    """Raised when a protocol state machine receives an impossible input."""


class ConfigError(ReproError):
    """Raised for invalid system, bus, or scenario configuration."""
