"""Unsigned LEB128 varints and length-prefixed byte strings.

This is the primitive layer of the wire codec (:mod:`repro.wire`).  The paper
exchanges blockchain data in Protobuf; we reproduce the relevant property —
byte-accurate, compact, self-delimiting encoding — with the same varint
scheme Protobuf uses.
"""

from __future__ import annotations

from repro.util.errors import CodecError

_MAX_VARINT_BYTES = 10  # enough for any uint64


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise CodecError(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, new_offset)``.  Raises :class:`CodecError` on truncated
    or over-long input.
    """
    result = 0
    shift = 0
    pos = offset
    for _ in range(_MAX_VARINT_BYTES):
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise CodecError("varint longer than 10 bytes")


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`encode_uvarint` produces for ``value``."""
    if value < 0:
        raise CodecError(f"cannot size negative varint {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_bytes(payload: bytes) -> bytes:
    """Length-prefix ``payload`` with a varint."""
    return encode_uvarint(len(payload)) + payload


def decode_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a length-prefixed byte string; returns ``(payload, new_offset)``."""
    length, pos = decode_uvarint(data, offset)
    end = pos + length
    if end > len(data):
        raise CodecError("truncated byte string")
    return data[pos:end], end
