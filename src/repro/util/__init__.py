"""Shared low-level utilities: errors, varint encoding, deterministic RNG streams."""

from repro.util.errors import (
    ReproError,
    CodecError,
    CryptoError,
    ChainError,
    ProtocolError,
    ConfigError,
)
from repro.util.varint import (
    encode_uvarint,
    decode_uvarint,
    uvarint_size,
    encode_bytes,
    decode_bytes,
)
from repro.util.rng import RngRegistry

__all__ = [
    "ReproError",
    "CodecError",
    "CryptoError",
    "ChainError",
    "ProtocolError",
    "ConfigError",
    "encode_uvarint",
    "decode_uvarint",
    "uvarint_size",
    "encode_bytes",
    "decode_bytes",
    "RngRegistry",
]
