"""Deterministic random-number streams.

Every stochastic component of the simulation (network jitter, bus faults,
Byzantine behaviour, workload generation) draws from its own named substream
derived from one master seed.  This keeps runs reproducible even when the
set of components or their call order changes: adding jitter to one link
never perturbs the fault schedule of another.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of independent, deterministically seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use.

        The substream seed is a hash of the master seed and the name, so all
        substreams are statistically independent and stable across runs.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        material = f"{self._master_seed}:{name}".encode()
        seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry, e.g. one per simulated node."""
        material = f"{self._master_seed}:fork:{name}".encode()
        seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        return RngRegistry(seed)
