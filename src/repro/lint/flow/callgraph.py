"""Project-wide call graph for the flow analysis stage.

Resolution is name-based per module: a function body's calls are resolved
through (in order) the defining module's own classes/functions, its import
table, and — as a last resort — a unique project-wide name match.  Method
calls resolve through a class-attribute type map (``self._checkpoints =
CheckpointCollector(...)`` in ``__init__`` makes ``self._checkpoints.add``
resolve to ``CheckpointCollector.add``), parameter annotations, and local
constructor assignments.

Everything unresolvable stays unresolved; the flow rules treat unresolved
calls as opaque no-ops, which keeps the analysis sound against false
positives at the cost of missing flows through dynamic dispatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.engine import FileContext, Project

#: Attribute roots on ``self`` that never hold protocol state (counters,
#: tracing, and the runtime handle are observability/IO, not replica state).
OBSERVABILITY_ATTRS = frozenset({"stats", "tracer", "env"})


@dataclass
class FunctionInfo:
    """One top-level function or class method."""

    key: str                      # "module:Class.method" or "module:func"
    module: str
    path: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)   # includes "self"
    param_types: dict[str, str] = field(default_factory=dict)  # name -> class key

    @property
    def anchor(self) -> str:
        """Structural identity used for line-stable fingerprints."""
        return self.key

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One class definition plus the facts method resolution needs."""

    key: str                      # "module:Name"
    module: str
    path: str
    name: str
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)     # name -> function key
    attr_types: dict[str, str] = field(default_factory=dict)  # self.X -> class key


def _annotation_names(annotation: ast.AST | None) -> list[str]:
    """Candidate class names from an annotation (``X``, ``"X"``, ``X | None``)."""
    if annotation is None:
        return []
    if isinstance(annotation, ast.Name):
        return [annotation.id]
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip("'\"")
        return [name] if name.isidentifier() else []
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_names(annotation.left) + _annotation_names(annotation.right)
    return []


class CallGraph:
    """Indexed view of every class, method, and module function in a run."""

    def __init__(self, project: Project) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module -> local alias -> dotted import target
        self.imports: dict[str, dict[str, str]] = {}
        #: "module:NAME" -> integer value, for size-constant resolution
        self.int_constants: dict[str, int] = {}
        self._class_by_name: dict[str, list[str]] = {}
        self._func_by_name: dict[str, list[str]] = {}
        self._const_by_name: dict[str, list[str]] = {}
        self._local_types: dict[str, dict[str, str]] = {}
        for ctx in project.files:
            self._index_file(ctx)
        for fn in self.functions.values():
            fn.param_types = self._infer_param_types(fn)
        for cls in self.classes.values():
            self._infer_attr_types(cls)

    # -- indexing ---------------------------------------------------------------

    def _index_file(self, ctx: FileContext) -> None:
        module = ctx.module
        imports = self.imports.setdefault(module, {})
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        imports[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._register_class(ctx, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (isinstance(target, ast.Name)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, int)
                        and not isinstance(stmt.value.value, bool)):
                    key = f"{module}:{target.id}"
                    self.int_constants[key] = stmt.value.value
                    self._const_by_name.setdefault(target.id, []).append(key)

    def _register_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        qual = f"{class_name}.{node.name}" if class_name else node.name
        key = f"{ctx.module}:{qual}"
        params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
        info = FunctionInfo(
            key=key, module=ctx.module, path=ctx.path, name=node.name,
            class_name=class_name, node=node, params=params,
        )
        self.functions[key] = info
        if class_name is None:
            self._func_by_name.setdefault(node.name, []).append(key)

    def _register_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        key = f"{ctx.module}:{node.name}"
        info = ClassInfo(
            key=key, module=ctx.module, path=ctx.path, name=node.name, node=node,
            base_names=[base.id for base in node.bases if isinstance(base, ast.Name)],
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(ctx, stmt, class_name=node.name)
                info.methods[stmt.name] = f"{ctx.module}:{node.name}.{stmt.name}"
        self.classes[key] = info
        self._class_by_name.setdefault(node.name, []).append(key)

    # -- name resolution --------------------------------------------------------

    def resolve_class(self, module: str, name: str) -> str | None:
        key = f"{module}:{name}"
        if key in self.classes:
            return key
        target = self.imports.get(module, {}).get(name)
        if target and "." in target:
            target_module, _, symbol = target.rpartition(".")
            imported = f"{target_module}:{symbol}"
            if imported in self.classes:
                return imported
        candidates = self._class_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def resolve_module_function(self, module: str, name: str) -> str | None:
        key = f"{module}:{name}"
        if key in self.functions:
            return key
        target = self.imports.get(module, {}).get(name)
        if target and "." in target:
            target_module, _, symbol = target.rpartition(".")
            imported = f"{target_module}:{symbol}"
            if imported in self.functions:
                return imported
        candidates = self._func_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def resolve_int_constant(self, module: str, name: str) -> int | None:
        key = f"{module}:{name}"
        if key in self.int_constants:
            return self.int_constants[key]
        target = self.imports.get(module, {}).get(name)
        if target and "." in target:
            target_module, _, symbol = target.rpartition(".")
            imported = f"{target_module}:{symbol}"
            if imported in self.int_constants:
                return self.int_constants[imported]
        candidates = self._const_by_name.get(name, [])
        if len(candidates) == 1:
            return self.int_constants[candidates[0]]
        return None

    def method_on(self, class_key: str, method: str) -> FunctionInfo | None:
        """Look up ``method`` on a class, walking project-resolvable bases."""
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            fn_key = cls.methods.get(method)
            if fn_key is not None:
                return self.functions.get(fn_key)
            for base in cls.base_names:
                resolved = self.resolve_class(cls.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    # -- type inference ---------------------------------------------------------

    def _class_of_value(
        self,
        module: str,
        value: ast.AST,
        enclosing: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
    ) -> str | None:
        """Class key a value expression constructs or denotes, if inferable."""
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                resolved = self.resolve_class(module, func.id)
                if resolved is not None:
                    return resolved
                if enclosing is not None:
                    default = self._param_default(enclosing, func.id)
                    if isinstance(default, ast.Name):
                        return self.resolve_class(module, default.id)
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                # ClassName.classmethod(...) is taken to build a ClassName.
                return self.resolve_class(module, func.value.id)
        return None

    @staticmethod
    def _param_default(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str
    ) -> ast.AST | None:
        args = fn.args.posonlyargs + fn.args.args
        defaults = fn.args.defaults
        offset = len(args) - len(defaults)
        for index, arg in enumerate(args):
            if arg.arg == name and index >= offset:
                return defaults[index - offset]
        return None

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        for fn_key in cls.methods.values():
            fn = self.functions.get(fn_key)
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                targets: list[ast.AST] = []
                value: ast.AST | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                    value = node.value
                    names = _annotation_names(node.annotation)
                    if names and _is_self_attr(node.target):
                        resolved = self.resolve_class(cls.module, names[0])
                        if resolved is not None:
                            cls.attr_types.setdefault(node.target.attr, resolved)
                if value is None:
                    continue
                inferred = self._class_of_value(cls.module, value, fn.node)
                if inferred is None and isinstance(value, ast.Name):
                    inferred = fn.param_types.get(value.id) or self._annotated_param(
                        fn, value.id, cls.module
                    )
                if inferred is None:
                    continue
                for target in targets:
                    if _is_self_attr(target):
                        cls.attr_types.setdefault(target.attr, inferred)

    def _annotated_param(
        self, fn: FunctionInfo, name: str, module: str
    ) -> str | None:
        for arg in fn.node.args.posonlyargs + fn.node.args.args:
            if arg.arg == name:
                for candidate in _annotation_names(arg.annotation):
                    resolved = self.resolve_class(module, candidate)
                    if resolved is not None:
                        return resolved
        return None

    def _infer_param_types(self, fn: FunctionInfo) -> dict[str, str]:
        types: dict[str, str] = {}
        for arg in fn.node.args.posonlyargs + fn.node.args.args:
            for candidate in _annotation_names(arg.annotation):
                resolved = self.resolve_class(fn.module, candidate)
                if resolved is not None:
                    types[arg.arg] = resolved
                    break
        return types

    def local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Locals with inferable class types (constructor calls, annotations).

        Memoized per function key: every analyzer construction (the flow
        fixpoint alone builds two per function per pass) used to rewalk the
        body; the function set is fixed for the lifetime of the graph, so
        the map is computed once and shared by the flow and aio stages.
        """
        cached = self._local_types.get(fn.key)
        if cached is not None:
            return cached
        types = self._compute_local_types(fn)
        self._local_types[fn.key] = types
        return types

    def _compute_local_types(self, fn: FunctionInfo) -> dict[str, str]:
        types: dict[str, str] = dict(fn.param_types)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._class_of_value(fn.module, node.value, fn.node)
                    if inferred is not None:
                        types[target.id] = inferred
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                for candidate in _annotation_names(node.annotation):
                    resolved = self.resolve_class(fn.module, candidate)
                    if resolved is not None:
                        types[node.target.id] = resolved
                        break
        return types

    # -- call resolution --------------------------------------------------------

    def resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, str] | None = None,
    ) -> FunctionInfo | None:
        """The project function a call lands in, or None when opaque."""
        func = call.func
        types = local_types if local_types is not None else fn.param_types
        if isinstance(func, ast.Name):
            fn_key = self.resolve_module_function(fn.module, func.id)
            if fn_key is not None:
                return self.functions[fn_key]
            class_key = self.resolve_class(fn.module, func.id)
            if class_key is not None:
                return self.method_on(class_key, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        method = func.attr
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and fn.class_name is not None:
                own = f"{fn.module}:{fn.class_name}"
                return self.method_on(own, method)
            receiver_type = types.get(receiver.id)
            if receiver_type is not None:
                return self.method_on(receiver_type, method)
            class_key = self.resolve_class(fn.module, receiver.id)
            if class_key is not None:
                return self.method_on(class_key, method)
            target = self.imports.get(fn.module, {}).get(receiver.id)
            if target is not None:
                fn_key = f"{target}:{method}"
                return self.functions.get(fn_key)
            return None
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and fn.class_name is not None):
            own = self.classes.get(f"{fn.module}:{fn.class_name}")
            if own is not None:
                attr_type = self._attr_type_with_bases(own, receiver.attr)
                if attr_type is not None:
                    return self.method_on(attr_type, method)
        return None

    def _attr_type_with_bases(self, cls: ClassInfo, attr: str) -> str | None:
        seen: set[str] = set()
        stack = [cls.key]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            for base in info.base_names:
                resolved = self.resolve_class(info.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def build_call_graph(project: Project) -> CallGraph:
    """Build (or fetch the cached) call graph for this lint run."""
    graph = project.cache.get("flow.callgraph")
    if graph is None:
        graph = CallGraph(project)
        project.cache["flow.callgraph"] = graph
    return graph
