"""FLOW001–FLOW003 — interprocedural rules built on the flow analysis.

* **FLOW001** nondeterminism taint: wall-clock / ambient-RNG / ``id()`` /
  set-iteration-order values reaching hash, codec, emission, or
  replica-state sinks through any call depth — the interprocedural
  closure of DET001–DET004.
* **FLOW002** verify-before-mutate: a dispatcher-fed handler path that
  writes protocol state before the message's ``verify(...)`` /
  ``is_member(...)`` guards (must-analysis; cf. the guard idiom in
  ``repro.bft.replica._on_preprepare``).
* **FLOW003** handler coverage: every registered wire tag is reachable
  from some backend's dispatch set (directly or through the decode
  closure), and every dispatched codec class has a wire tag — the
  cross-module dual of PROTO001.

All three set :attr:`Finding.anchor` to a structural identity (function
key or class name) so baselines survive unrelated-line insertion and
file reordering.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import Finding, Project, Rule, register_rule
from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.summaries import (
    flow_analysis,
    gate_violations,
    taint_exempt_module,
    taint_findings,
)
from repro.lint.rules.protocol import _HANDLER_NAME_RE, _registrations

_MESSAGE_TYPES_RE = re.compile(r"MESSAGE_TYPES")


@register_rule
class InterproceduralTaintRule(Rule):
    code = "FLOW001"
    name = "nondeterminism-taint"
    description = (
        "a wall-clock, ambient-RNG, id(), or set-iteration-order value "
        "flows (through any call depth) into a hash, codec, emission, or "
        "replica-state sink — replicas would diverge on identical input"
    )
    scope = "project"
    stage = "flow"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = flow_analysis(project)
        for key in sorted(analysis.graph.functions):
            fn = analysis.graph.functions[key]
            if not fn.module.startswith("repro.") or taint_exempt_module(fn.module):
                continue
            for found in taint_findings(analysis, fn):
                yield Finding(
                    code=self.code,
                    message=f"{found.message} (in {fn.key})",
                    path=fn.path,
                    line=getattr(found.node, "lineno", fn.node.lineno),
                    col=getattr(found.node, "col_offset", 0),
                    anchor=f"{fn.key}#{found.sink}",
                )


@register_rule
class VerifyBeforeMutateRule(Rule):
    code = "FLOW002"
    name = "verify-before-mutate"
    description = (
        "a handler reachable from a message dispatcher mutates protocol "
        "state before any verify()/is_member() guard has run — unverified "
        "input can corrupt replica, chain, or export state"
    )
    scope = "project"
    stage = "flow"

    #: Packages holding protocol state machines; runtime/sim/obs mutate
    #: their own bookkeeping freely and are out of scope.
    _PREFIXES = ("repro.bft", "repro.core", "repro.export", "repro.chain", "repro.wire")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = flow_analysis(project)
        for key in sorted(analysis.entry_points):
            fn = analysis.graph.functions.get(key)
            if fn is None or not fn.module.startswith(self._PREFIXES):
                continue
            for violation in gate_violations(analysis, fn):
                yield Finding(
                    code=self.code,
                    message=(
                        f"handler {fn.key} {violation.message}; run the "
                        "signature/membership checks first"
                    ),
                    path=fn.path,
                    line=getattr(violation.node, "lineno", fn.node.lineno),
                    col=getattr(violation.node, "col_offset", 0),
                    anchor=f"{fn.key}#{violation.target}",
                )


def _wire_message_classes(graph: CallGraph) -> set[str]:
    """Class keys of repro.* classes defining both encode and decode."""
    return {
        key for key, cls in graph.classes.items()
        if cls.module.startswith("repro.")
        and {"encode", "decode"} <= cls.methods.keys()
    }


def _consumed_classes(project: Project, graph: CallGraph) -> dict[str, tuple[str, int]]:
    """Class keys dispatched on, mapped to (path, line) of first evidence.

    Evidence is a ``*MESSAGE_TYPES*`` tuple or an ``isinstance`` test in a
    handler-named function.
    """
    consumed: dict[str, tuple[str, int]] = {}

    def note(class_key: str | None, ctx_path: str, lineno: int) -> None:
        if class_key is not None and class_key not in consumed:
            consumed[class_key] = (ctx_path, lineno)

    for ctx in project.files:
        if not ctx.module.startswith("repro."):
            continue
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                names = [
                    t.id if isinstance(t, ast.Name) else t.attr
                    for t in node.targets
                    if isinstance(t, (ast.Name, ast.Attribute))
                ]
                if not any(_MESSAGE_TYPES_RE.search(n) for n in names):
                    continue
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Name):
                            note(graph.resolve_class(ctx.module, element.id),
                                 ctx.path, element.lineno)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2):
                # Only isinstance tests inside handler-named functions count.
                parent_fn = _enclosing_function(ctx, node)
                if parent_fn is None or not _HANDLER_NAME_RE.search(parent_fn.name):
                    continue
                targets = node.args[1]
                elements = (
                    targets.elts if isinstance(targets, (ast.Tuple, ast.List))
                    else [targets]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        note(graph.resolve_class(ctx.module, element.id),
                             ctx.path, element.lineno)
    return consumed


def _enclosing_function(ctx, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = ctx.parents.get(current)
    return None


def _decode_closure(graph: CallGraph, roots: set[str]) -> set[str]:
    """Classes reachable from ``roots`` through decode-method bodies.

    ``StateReply.decode`` calling ``Block.decode`` (possibly inside a
    ``get_list`` lambda) makes ``Block`` reachable: its tag is justified
    even though no dispatcher tests ``isinstance(msg, Block)``.
    """
    reachable = set(roots)
    worklist = list(roots)
    while worklist:
        class_key = worklist.pop()
        cls = graph.classes.get(class_key)
        if cls is None or "decode" not in cls.methods:
            continue
        # Chase same-class helpers (``decode`` delegating to ``read_from``)
        # so nested ``X.decode`` calls are found wherever they live.
        methods = ["decode"]
        seen_methods = {"decode"}
        while methods:
            fn = graph.functions.get(cls.methods.get(methods.pop(), ""))
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)):
                    continue
                receiver, attr = node.func.value.id, node.func.attr
                if receiver in ("cls", "self", cls.name) and attr in cls.methods \
                        and attr not in seen_methods:
                    seen_methods.add(attr)
                    methods.append(attr)
                    continue
                if attr != "decode":
                    continue
                target = graph.resolve_class(cls.module, receiver)
                if target is not None and target not in reachable:
                    reachable.add(target)
                    worklist.append(target)
    return reachable


@register_rule
class HandlerCoverageRule(Rule):
    code = "FLOW003"
    name = "handler-coverage"
    description = (
        "wire-registry/dispatch mismatch: a codec class some handler "
        "dispatches on has no wire tag (it cannot arrive off the wire), or "
        "a registered tag is unreachable from every dispatch set and "
        "decode closure (dead tag, or a missing handler branch)"
    )
    scope = "project"
    stage = "flow"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = build_call_graph(project)
        registered: dict[str, tuple[int | None, str, int, str]] = {}
        for ctx in project.files:
            if not ctx.module.startswith("repro."):
                continue
            for tag, name, lineno in _registrations(ctx):
                registered.setdefault(name, (tag, ctx.path, lineno, ctx.module))
        consumed = _consumed_classes(project, graph)
        if not registered or not consumed:
            # Partial invocations (single files, synthetic crates without a
            # registry) can't make coverage claims; stay silent.
            return
        wire_classes = _wire_message_classes(graph)
        registered_keys = {
            graph.resolve_class(module, name): name
            for name, (_tag, _path, _line, module) in registered.items()
        }
        registered_keys.pop(None, None)

        for class_key in sorted(consumed):
            if class_key not in wire_classes:
                continue
            if class_key in registered_keys:
                continue
            cls = graph.classes[class_key]
            path, line = consumed[class_key]
            yield Finding(
                code=self.code,
                message=(
                    f"handler dispatches on {cls.name} ({cls.module}) but it is "
                    "never registered with a wire tag — it can never arrive "
                    "off the wire"
                ),
                path=path,
                line=line,
                anchor=f"dispatched-unregistered:{cls.module}.{cls.name}",
            )

        reachable = _decode_closure(graph, set(consumed))
        for class_key in sorted(registered_keys):
            name = registered_keys[class_key]
            if class_key in reachable:
                continue
            tag, path, line, _module = registered[name]
            tag_text = f"tag {tag}" if tag is not None else "a wire tag"
            yield Finding(
                code=self.code,
                message=(
                    f"{tag_text} registers {name} but no dispatcher tests for it "
                    "and no reachable decode body constructs it — dead tag or "
                    "missing handler branch"
                ),
                path=path,
                line=line,
                anchor=f"registered-unreachable:{name}",
            )
