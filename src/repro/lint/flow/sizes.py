"""FLOW004 — symbolic ``encoded_size`` checking against the codec layout.

PROTO005 flags literal arithmetic *inside* ``encoded_size()`` bodies, so
the obvious evasion is to spread the arithmetic across helper methods
(``return self._header_size() + self._body_size()``).  This rule closes
that hole: it derives the field layout from the ``encode()`` body
(``put_uint`` → variable-width varint, ``put_fixed(x, N)`` → ``N``
constant bytes, ``put_bytes``/``put_str``/``put_list`` → variable) and
symbolically evaluates the ``encoded_size()`` expression with resolved
self-helpers inlined and module constants substituted.

Verdicts:

* size derived from the codec (``len(self.encode())`` or
  ``len(encode_message(self))``) — always clean;
* layout has variable-width fields but the size evaluates to a pure
  constant — finding (the constant cannot track payload sizes);
* layout is all-constant with total ``T`` and the size evaluates to a
  constant ``C != T`` — finding with both numbers;
* the expression mixes integer-literal arithmetic with calls the
  analysis cannot evaluate — finding (helper-composed hand arithmetic
  is exactly what drifts; derive from the codec instead).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.engine import Finding, Project, Rule, register_rule
from repro.lint.flow.callgraph import CallGraph, ClassInfo, FunctionInfo, build_call_graph

#: Writer calls producing a constant number of bytes (second arg).
_FIXED_PUTS = {"put_fixed"}
#: Writer calls producing a known 1-byte field.
_BYTE_PUTS = {"put_bool"}
#: Writer calls whose width depends on the value (varint or payload).
_VARIABLE_PUTS = {"put_uint", "put_bytes", "put_str", "put_list"}

_MAX_INLINE_DEPTH = 6


@dataclass
class Layout:
    """What one ``encode()`` body writes."""

    const_bytes: int = 0
    variable_fields: int = 0
    opaque: bool = False   # delegated/unrecognized encode; no layout claim


@dataclass
class SizeValue:
    """Symbolic value of an ``encoded_size`` expression."""

    const: int | None      # integer value when fully evaluated
    variable: bool         # depends on payload width (len(), varints, sums)
    unknown: bool          # contains calls the analysis cannot evaluate
    literal_arith: bool    # integer-literal arithmetic appears somewhere

    @staticmethod
    def constant(value: int, literal: bool = False) -> "SizeValue":
        return SizeValue(const=value, variable=False, unknown=False, literal_arith=literal)

    @staticmethod
    def var() -> "SizeValue":
        return SizeValue(const=None, variable=True, unknown=False, literal_arith=False)

    @staticmethod
    def opaque() -> "SizeValue":
        return SizeValue(const=None, variable=False, unknown=True, literal_arith=False)

    def combine(self, other: "SizeValue", const: int | None) -> "SizeValue":
        return SizeValue(
            const=const,
            variable=self.variable or other.variable,
            unknown=self.unknown or other.unknown,
            literal_arith=self.literal_arith or other.literal_arith,
        )


def _encode_layout(graph: CallGraph, cls: ClassInfo, fn: FunctionInfo,
                   depth: int = 0) -> Layout:
    """Field layout written by ``encode`` (helpers inlined, depth-limited)."""
    layout = Layout()
    if depth > _MAX_INLINE_DEPTH:
        layout.opaque = True
        return layout
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        method = func.attr
        if method in _VARIABLE_PUTS:
            layout.variable_fields += 1
        elif method in _BYTE_PUTS:
            layout.const_bytes += 1
        elif method in _FIXED_PUTS:
            if len(node.args) >= 2:
                width = _int_of(graph, fn.module, node.args[1])
                if width is None:
                    layout.opaque = True
                else:
                    layout.const_bytes += width
        elif (isinstance(func.value, ast.Name) and func.value.id == "self"):
            helper = graph.method_on(cls.key, method)
            if helper is not None and helper.name not in ("encode", "encoded_size"):
                sub = _encode_layout(graph, cls, helper, depth + 1)
                layout.const_bytes += sub.const_bytes
                layout.variable_fields += sub.variable_fields
                layout.opaque = layout.opaque or sub.opaque
        elif method == "encode":
            # Nested message encodes are variable-width payloads.
            layout.variable_fields += 1
    return layout


def _int_of(graph: CallGraph, module: str, node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        return graph.resolve_int_constant(module, node.id)
    return None


def _is_codec_derived(fn: FunctionInfo) -> bool:
    """``return len(self.encode())`` / ``return len(encode_message(self))``."""
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id == "len" and len(value.args) == 1):
            continue
        inner = value.args[0]
        if isinstance(inner, ast.Call):
            name = inner.func
            if isinstance(name, ast.Attribute) and name.attr == "encode":
                return True
            if isinstance(name, ast.Name) and "encode" in name.id:
                return True
    return False


class _SizeEvaluator:
    """Symbolic evaluation of a size expression with helper inlining."""

    def __init__(self, graph: CallGraph, cls: ClassInfo) -> None:
        self.graph = graph
        self.cls = cls

    def eval_function(self, fn: FunctionInfo, depth: int = 0) -> SizeValue:
        if depth > _MAX_INLINE_DEPTH:
            return SizeValue.opaque()
        result: SizeValue | None = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                value = self.eval(node.value, fn, depth)
                result = value if result is None else result.combine(
                    value, None if result.const != value.const else value.const
                )
        return result if result is not None else SizeValue.opaque()

    def eval(self, node: ast.AST, fn: FunctionInfo, depth: int) -> SizeValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return SizeValue.constant(node.value)
            return SizeValue.opaque()
        if isinstance(node, ast.Name):
            value = self.graph.resolve_int_constant(fn.module, node.id)
            if value is not None:
                return SizeValue.constant(value)
            return SizeValue.opaque()
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)):
            left = self.eval(node.left, fn, depth)
            right = self.eval(node.right, fn, depth)
            const: int | None = None
            if left.const is not None and right.const is not None:
                if isinstance(node.op, ast.Add):
                    const = left.const + right.const
                elif isinstance(node.op, ast.Sub):
                    const = left.const - right.const
                else:
                    const = left.const * right.const
            literal = (isinstance(node.left, ast.Constant)
                       or isinstance(node.right, ast.Constant))
            combined = left.combine(right, const)
            if literal:
                combined.literal_arith = True
            return combined
        if isinstance(node, ast.Call):
            return self._eval_call(node, fn, depth)
        if isinstance(node, ast.IfExp):
            left = self.eval(node.body, fn, depth)
            right = self.eval(node.orelse, fn, depth)
            const = left.const if left.const == right.const else None
            return left.combine(right, const)
        return SizeValue.opaque()

    def _eval_call(self, call: ast.Call, fn: FunctionInfo, depth: int) -> SizeValue:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "len":
                return SizeValue.var()
            if func.id == "sum":
                return SizeValue.var()
            if "varint" in func.id or "size" in func.id:
                # varint_size(x)-style width helpers are payload-dependent.
                return SizeValue.var()
            return SizeValue.opaque()
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
                and func.value.id == "self":
            if func.attr == "encoded_size":
                return SizeValue.opaque()
            helper = self.graph.method_on(self.cls.key, func.attr)
            if helper is not None:
                return self.eval_function(helper, depth + 1)
        return SizeValue.opaque()


@register_rule
class SummedEncodedSizeRule(Rule):
    code = "FLOW004"
    name = "summed-encoded-size"
    description = (
        "encoded_size() disagrees with the encode() field layout when "
        "helper methods are inlined and constants substituted — the "
        "interprocedural closure of PROTO005; derive the size from "
        "len(self.encode()) instead of hand-maintained arithmetic"
    )
    scope = "project"
    stage = "flow"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = build_call_graph(project)
        for class_key in sorted(graph.classes):
            cls = graph.classes[class_key]
            if not cls.module.startswith("repro."):
                continue
            encode_key = cls.methods.get("encode")
            sizer_key = cls.methods.get("encoded_size")
            if encode_key is None or sizer_key is None:
                continue
            encode_fn = graph.functions.get(encode_key)
            sizer_fn = graph.functions.get(sizer_key)
            if encode_fn is None or sizer_fn is None:
                continue
            if _is_codec_derived(sizer_fn):
                continue
            layout = _encode_layout(graph, cls, encode_fn)
            size = _SizeEvaluator(graph, cls).eval_function(sizer_fn)
            message = self._verdict(cls, layout, size)
            if message is None:
                continue
            yield Finding(
                code=self.code,
                message=message,
                path=cls.path,
                line=sizer_fn.node.lineno,
                col=sizer_fn.node.col_offset,
                anchor=f"{cls.module}.{cls.name}.encoded_size",
            )

    @staticmethod
    def _verdict(cls: ClassInfo, layout: Layout, size: SizeValue) -> str | None:
        if size.const is not None and not size.variable and not size.unknown:
            if layout.variable_fields and not layout.opaque:
                return (
                    f"{cls.name}.encoded_size() evaluates to the constant "
                    f"{size.const} but encode() writes "
                    f"{layout.variable_fields} variable-width field(s); the "
                    "size cannot track payloads — derive it from len(self.encode())"
                )
            if not layout.opaque and not layout.variable_fields \
                    and size.const != layout.const_bytes:
                return (
                    f"{cls.name}.encoded_size() evaluates to {size.const} but "
                    f"encode() writes exactly {layout.const_bytes} bytes; the "
                    "helper-composed arithmetic has drifted from the codec"
                )
            return None
        if size.unknown and size.literal_arith:
            return (
                f"{cls.name}.encoded_size() mixes integer-literal arithmetic "
                "with calls the analysis cannot evaluate; hand-maintained "
                "size formulas drift silently — derive from len(self.encode())"
            )
        return None
