"""repro.lint.flow — the interprocedural analysis stage.

Layered on the PR-1 ``Project``/``Rule`` engine: :mod:`callgraph` builds
a name-resolved project call graph, :mod:`summaries` computes
per-function summaries and runs the worklist taint/guard fixpoint, and
:mod:`rules`/:mod:`sizes` turn the results into the FLOW001–FLOW004
rule families.  Importing this package registers all four rules.
"""

from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.summaries import FlowAnalysis, FunctionSummary, flow_analysis

# Importing the rule modules registers FLOW001-FLOW004.
import repro.lint.flow.rules  # noqa: E402,F401  (import for side effect)
import repro.lint.flow.sizes  # noqa: E402,F401  (import for side effect)

__all__ = [
    "CallGraph",
    "FlowAnalysis",
    "FunctionSummary",
    "build_call_graph",
    "flow_analysis",
]
