"""Per-function summaries and the worklist fixpoint for the flow rules.

Each project function gets a :class:`FunctionSummary` describing how data
and authority move through it:

* ``returns_value_taint`` / ``returns_order_taint`` — the return value
  carries a nondeterministic value (wall clock, ambient RNG, ``id()``)
  or a set-iteration-order-dependent one;
* ``param_to_return`` — parameter indices whose taint flows to the return;
* ``param_sinks`` — parameter indices that reach a protocol-visible sink
  (hash, codec, emission, or replica-state write) inside the function;
* ``performs_verify`` — the body evaluates a signature/membership guard
  (``verify(...)``, ``is_member(...)``, or a callee that does);
* ``mutates`` — the body writes replica/protocol state (directly or via a
  resolved callee);
* ``verify_gate`` — every mutation path is preceded by a guard, i.e. the
  function is safe to hand unverified input.

Summaries depend on callees, so they are iterated to a fixpoint (the
lattice is finite and all facts grow monotonically).

Two deliberate weakenings keep the must-analysis practical:

* a statement *containing* a guard call marks all subsequent statements
  verified — rejection bookkeeping inside the guard-failure branch
  (``self.syncs_rejected += 1; return``) is therefore allowed;
* unresolved calls are opaque no-ops: they neither taint, verify, nor
  mutate.  Dynamic dispatch can hide flows, but never invents findings.

Order-taint is separate from value-taint because order-insensitive
reductions (``sorted``, ``len``, ``max``, ``min``, ``sum``, ``any``,
``all``) launder iteration order but not nondeterministic values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.astutil import call_name, terminal_name
from repro.lint.engine import Project
from repro.lint.flow.callgraph import (
    OBSERVABILITY_ATTRS,
    CallGraph,
    FunctionInfo,
    build_call_graph,
)
from repro.lint.rules.determinism import (
    _AMBIENT_RANDOM_FUNCS,
    _ORDER_SINKS,
    _RNG_EXEMPT_MODULE,
    _WALL_CLOCK_CALLS,
    _WALL_CLOCK_EXEMPT_PREFIX,
)

#: Protocol-visible sinks: the DET003 order sinks plus the remaining codec
#: writers and the fan-out emission helper.
TAINT_SINKS = frozenset(_ORDER_SINKS) | {"put_uint", "put_str", "put_fixed", "send_many"}

#: Ambient entropy calls beyond the wall clock / random module.
_ENTROPY_CALLS = {
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
}

#: Builtins through which taint flows from arguments to the result.
_PASSTHROUGH_BUILTINS = {
    "int", "float", "str", "bytes", "bytearray", "bool", "abs", "round",
    "divmod", "pow", "repr", "format", "tuple", "list", "dict", "zip",
    "enumerate", "reversed", "next", "iter",
}

#: Order-insensitive reductions: drop order-taint, keep value-taint.
_ORDER_SANITIZERS = {"sorted", "len", "max", "min", "sum", "any", "all"}

#: Method names that mutate their receiver when the call cannot be
#: resolved to a project function.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "insert", "remove", "discard",
    "pop", "popitem", "popleft", "clear", "update", "setdefault", "cancel",
    "install", "push", "write", "writelines", "put", "acquire", "release",
    "reset", "record", "set", "delete", "prune", "prune_below", "sort",
    "reverse", "try_acquire", "release_digest", "fast_forward",
    "discard_below",
})

_GUARD_NAMES = {"verify", "is_member"}

#: Modules whose functions are exempt from taint sourcing and findings.
_TAINT_EXEMPT_PREFIXES = (_WALL_CLOCK_EXEMPT_PREFIX,)
_TAINT_EXEMPT_MODULES = (_RNG_EXEMPT_MODULE,)

_MAX_FIXPOINT_PASSES = 12


def taint_exempt_module(module: str) -> bool:
    return module.startswith(_TAINT_EXEMPT_PREFIXES) or module in _TAINT_EXEMPT_MODULES


@dataclass
class Tv:
    """Taint value of one expression: provenance plus parameter deps."""

    value: frozenset[str] = frozenset()   # nondeterministic-value provenances
    order: frozenset[str] = frozenset()   # iteration-order provenances
    params: frozenset[int] = frozenset()  # parameter indices feeding the value

    def merged(self, *others: "Tv") -> "Tv":
        value, order, params = self.value, self.order, self.params
        for other in others:
            value |= other.value
            order |= other.order
            params |= other.params
        return Tv(value=value, order=order, params=params)

    @property
    def tainted(self) -> bool:
        return bool(self.value or self.order)


_CLEAN = Tv()


@dataclass
class FunctionSummary:
    """Interprocedural facts about one function, grown monotonically."""

    returns_value_taint: frozenset[str] = frozenset()
    returns_order_taint: frozenset[str] = frozenset()
    param_to_return: frozenset[int] = frozenset()
    param_sinks: dict[int, str] = field(default_factory=dict)
    performs_verify: bool = False
    mutates: bool = False
    verify_gate: bool = True

    def state(self) -> tuple:
        return (
            self.returns_value_taint, self.returns_order_taint,
            self.param_to_return, tuple(sorted(self.param_sinks.items())),
            self.performs_verify, self.mutates, self.verify_gate,
        )


@dataclass
class TaintFinding:
    node: ast.AST
    message: str
    sink: str


@dataclass
class GateViolation:
    node: ast.AST
    target: str      # dotted description of what is mutated
    message: str


def _is_lambda_or_def(node: ast.AST) -> bool:
    return isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef))


def _walk_no_lambda(node: ast.AST):
    """ast.walk that does not descend into lambdas or nested defs."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if not _is_lambda_or_def(child):
                stack.append(child)


def _mentions_self(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "self"
        for sub in _walk_no_lambda(node)
    )


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``self.builder._pending`` → ["self", "builder", "_pending"]."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
        while isinstance(current, ast.Subscript):
            current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


class _FunctionAnalyzer:
    """Single forward pass over one function body (taint + sinks)."""

    def __init__(
        self,
        fn: FunctionInfo,
        graph: CallGraph,
        summaries: dict[str, FunctionSummary],
        emit: bool,
    ) -> None:
        self.fn = fn
        self.graph = graph
        self.summaries = summaries
        self.emit = emit
        self.local_types = graph.local_types(fn)
        self.locals: dict[str, Tv] = {}
        self.summary = FunctionSummary()
        self.findings: list[TaintFinding] = []
        self._reported: set[tuple[int, str]] = set()

    def run(self) -> None:
        # Two passes over the body so loop-carried locals converge.
        for _ in range(2):
            self._walk_block(self.fn.node.body)

    # -- expression taint --------------------------------------------------------

    def eval(self, node: ast.AST) -> Tv:
        if node is None or isinstance(node, ast.Constant) or _is_lambda_or_def(node):
            return _CLEAN
        if isinstance(node, ast.Name):
            known = self.locals.get(node.id)
            if known is not None:
                return known
            index = self.fn.param_index(node.id)
            if index is not None and node.id != "self":
                return Tv(params=frozenset({index}))
            return _CLEAN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            inner = self._merge_children(node)
            return inner.merged(Tv(order=frozenset({"set iteration order"})))
        if isinstance(node, ast.Compare):
            # Comparison results are order-insensitive but value-dependent.
            merged = self._merge_children(node)
            return Tv(value=merged.value, params=merged.params)
        if isinstance(node, ast.IfExp):
            # Implicit flows through the condition are out of scope.
            return self.eval(node.body).merged(self.eval(node.orelse))
        if isinstance(node, ast.Attribute):
            return self.eval(node.value)
        return self._merge_children(node)

    def _merge_children(self, node: ast.AST) -> Tv:
        result = _CLEAN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                result = result.merged(self.eval(
                    child.value if isinstance(child, ast.keyword) else child
                ))
        return result

    def _eval_call(self, call: ast.Call) -> Tv:
        source = self._taint_source(call)
        args = [call.args] + [[kw.value for kw in call.keywords if kw.value is not None]]
        arg_taints = [self.eval(arg) for group in args for arg in group]
        if source is not None:
            return Tv(value=frozenset({source}))
        name = terminal_name(call.func)
        if name in _ORDER_SANITIZERS and isinstance(call.func, ast.Name):
            merged = _CLEAN.merged(*arg_taints) if arg_taints else _CLEAN
            return Tv(value=merged.value, params=merged.params)
        if name in {"set", "frozenset"} and isinstance(call.func, ast.Name):
            merged = _CLEAN.merged(*arg_taints) if arg_taints else _CLEAN
            return merged.merged(Tv(order=frozenset({"set iteration order"})))
        callee = self.graph.resolve_call(self.fn, call, self.local_types)
        if callee is not None:
            summary = self.summaries.get(callee.key)
            if summary is not None:
                result = Tv(
                    value=frozenset(
                        f"{desc} via {callee.name}()"
                        for desc in summary.returns_value_taint
                    ),
                    order=frozenset(
                        f"{desc} via {callee.name}()"
                        for desc in summary.returns_order_taint
                    ),
                )
                positional = self._positional_args(call, callee)
                for index, arg in positional.items():
                    if index in summary.param_to_return:
                        result = result.merged(self.eval(arg))
                return result
            return _CLEAN
        if isinstance(call.func, ast.Name) and call.func.id in _PASSTHROUGH_BUILTINS:
            return _CLEAN.merged(*arg_taints) if arg_taints else _CLEAN
        if isinstance(call.func, ast.Attribute):
            # Method call on a tainted receiver (``ts.to_bytes()``, ``.hex()``).
            receiver = self.eval(call.func.value)
            if receiver.tainted or receiver.params:
                return receiver.merged(*arg_taints) if arg_taints else receiver
        return _CLEAN

    def _taint_source(self, call: ast.Call) -> str | None:
        if taint_exempt_module(self.fn.module):
            return None
        name = call_name(call)
        if name in _WALL_CLOCK_CALLS:
            return f"wall clock {name}()"
        if name in _ENTROPY_CALLS:
            return f"ambient entropy {name}()"
        if name is not None and "." in name:
            root, _, leaf = name.rpartition(".")
            if root == "random" and leaf in _AMBIENT_RANDOM_FUNCS:
                return f"ambient RNG random.{leaf}()"
        if (isinstance(call.func, ast.Name) and call.func.id == "id"
                and len(call.args) == 1):
            return "id() value"
        return None

    def _positional_args(
        self, call: ast.Call, callee: FunctionInfo
    ) -> dict[int, ast.AST]:
        """Map callee parameter index -> argument expression."""
        offset = 1 if callee.params and callee.params[0] == "self" else 0
        mapping: dict[int, ast.AST] = {}
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            mapping[position + offset] = arg
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            index = callee.param_index(keyword.arg)
            if index is not None:
                mapping[index] = keyword.value
        return mapping

    # -- statements --------------------------------------------------------------

    def _walk_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                result = self.eval(stmt.value)
                self.summary.returns_value_taint |= result.value
                self.summary.returns_order_taint |= result.order
                self.summary.param_to_return |= result.params
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._handle_assign(stmt)
        if isinstance(stmt, ast.For):
            iterated = self.eval(stmt.iter)
            self._bind_target(stmt.target, iterated)
            self._check_sinks(stmt.iter)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._check_sinks(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._check_sinks(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body)
            for handler in stmt.handlers:
                self._walk_block(handler.body)
            self._walk_block(stmt.orelse)
            self._walk_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._check_sinks(item.context_expr)
            self._walk_block(stmt.body)
            return
        self._check_sinks(stmt)

    def _handle_assign(self, stmt: ast.stmt) -> None:
        value = stmt.value
        if value is None:
            return
        self._check_sinks(value)
        result = self.eval(value)
        if isinstance(stmt, ast.AugAssign):
            result = result.merged(self.eval(stmt.target))
            targets = [stmt.target]
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            targets = stmt.targets
        for target in targets:
            self._bind_target(target, result)

    def _bind_target(self, target: ast.AST, result: Tv) -> None:
        if isinstance(target, ast.Name):
            if result.tainted or result.params:
                self.locals[target.id] = result
            else:
                self.locals.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, result)
            return
        chain = _attr_chain(target)
        if chain and chain[0] == "self" and len(chain) > 1:
            if chain[1] in OBSERVABILITY_ATTRS:
                return
            attr = ".".join(chain)
            for index in result.params:
                self.summary.param_sinks.setdefault(index, f"state write {attr}")
            # Storing a set is fine; only *iterating* one into an ordered
            # sink diverges.  State writes therefore flag value-taint only.
            self._report_taint(
                target, Tv(value=result.value, params=result.params),
                f"replica state ({attr})",
            )

    def _check_sinks(self, node: ast.AST) -> None:
        for call in _walk_no_lambda(node):
            if not isinstance(call, ast.Call):
                continue
            sink = terminal_name(call.func)
            callee = self.graph.resolve_call(self.fn, call, self.local_types)
            if sink in TAINT_SINKS and callee is None:
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    if isinstance(arg, ast.Starred):
                        arg = arg.value
                    result = self.eval(arg)
                    for index in result.params:
                        self.summary.param_sinks.setdefault(index, f"{sink}()")
                    self._report_taint(arg, result, f"{sink}()")
            elif callee is not None:
                summary = self.summaries.get(callee.key)
                if summary is None or not summary.param_sinks:
                    continue
                positional = self._positional_args(call, callee)
                for index, arg in positional.items():
                    deep_sink = summary.param_sinks.get(index)
                    if deep_sink is None:
                        continue
                    result = self.eval(arg)
                    if deep_sink.startswith("state write"):
                        result = Tv(value=result.value, params=result.params)
                    for param in result.params:
                        self.summary.param_sinks.setdefault(
                            param, f"{deep_sink} via {callee.name}()"
                        )
                    self._report_taint(
                        arg, result, f"{deep_sink} via {callee.name}()"
                    )

    def _report_taint(self, node: ast.AST, result: Tv, sink: str) -> None:
        if not self.emit or not result.tainted:
            return
        lineno = getattr(node, "lineno", self.fn.node.lineno)
        provenance = sorted(result.value) + sorted(result.order)
        key = (lineno, sink)
        if key in self._reported:
            return
        self._reported.add(key)
        kind = "nondeterministic value" if result.value else "iteration-order-dependent value"
        self.findings.append(TaintFinding(
            node=node,
            sink=sink,
            message=f"{kind} ({provenance[0]}) reaches {sink}",
        ))


class _GateWalker:
    """Branch-sensitive verify-before-mutate walk over one function."""

    def __init__(
        self,
        fn: FunctionInfo,
        graph: CallGraph,
        summaries: dict[str, FunctionSummary],
        emit: bool,
        skip_keys: frozenset[str] = frozenset(),
    ) -> None:
        self.fn = fn
        self.graph = graph
        self.summaries = summaries
        self.emit = emit
        #: Callee keys whose own bodies are reported independently (entry
        #: points): suppress the caller-side duplicate of their findings.
        self.skip_keys = skip_keys
        self.local_types = graph.local_types(fn)
        self.state_derived: set[str] = set()
        self.mutates = False
        self.performs_verify = False
        self.violations: list[GateViolation] = []
        self._reported: set[tuple[int, str]] = set()

    def run(self) -> bool:
        """Walk the body; returns True when every mutation is guarded."""
        clean_start = not self.violations
        self._walk_block(self.fn.node.body, verified=False)
        return clean_start and not self.violations

    def _walk_block(self, stmts: list[ast.stmt], verified: bool) -> tuple[bool, bool]:
        """Returns (verified_after, terminated)."""
        for stmt in stmts:
            verified, terminated = self._walk_stmt(stmt, verified)
            if terminated:
                return verified, True
        return verified, False

    def _walk_stmt(self, stmt: ast.stmt, verified: bool) -> tuple[bool, bool]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return verified, False
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                # ``return message.verify(...)`` still performs the guard —
                # record it so callers crediting this callee see it.
                self._contains_guard(stmt.value)
                self._check_expr(stmt.value, verified)
            return verified, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return verified, True
        if isinstance(stmt, ast.If):
            guard_in_test = self._contains_guard(stmt.test)
            self._check_expr(stmt.test, verified)
            branch_verified = verified or guard_in_test
            body_verified, body_term = self._walk_block(stmt.body, branch_verified)
            else_verified, else_term = self._walk_block(stmt.orelse, branch_verified)
            if body_term and else_term:
                return branch_verified, True
            if body_term:
                return else_verified, False
            if else_term:
                return body_verified, False
            return body_verified and else_verified, False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, verified)
            self._note_state_derived_target(stmt.target, stmt.iter)
            after, _ = self._walk_block(stmt.body, verified)
            after2, _ = self._walk_block(stmt.orelse, after)
            return after2, False
        if isinstance(stmt, ast.While):
            guard_in_test = self._contains_guard(stmt.test)
            self._check_expr(stmt.test, verified)
            after, _ = self._walk_block(stmt.body, verified or guard_in_test)
            after2, _ = self._walk_block(stmt.orelse, after)
            return after2, False
        if isinstance(stmt, ast.Try):
            body_verified, body_term = self._walk_block(stmt.body, verified)
            handler_states = []
            for handler in stmt.handlers:
                handler_states.append(self._walk_block(handler.body, verified))
            else_verified, _ = self._walk_block(stmt.orelse, body_verified)
            merged = else_verified and all(v for v, _ in handler_states or [(True, False)])
            final_verified, final_term = self._walk_block(stmt.finalbody, merged)
            return final_verified, final_term and bool(stmt.finalbody)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, verified)
            return self._walk_block(stmt.body, verified)
        # Simple statement: assignments, expression calls, delete, assert.
        guarded = self._contains_guard(stmt)
        self._check_simple(stmt, verified)
        return verified or guarded, False

    # -- guards -------------------------------------------------------------------

    def _contains_guard(self, node: ast.AST) -> bool:
        found = False
        for call in _walk_no_lambda(node):
            if not isinstance(call, ast.Call):
                continue
            name = terminal_name(call.func)
            if name in _GUARD_NAMES or (name or "").startswith("verify_"):
                found = True
                continue
            callee = self.graph.resolve_call(self.fn, call, self.local_types)
            if callee is not None:
                summary = self.summaries.get(callee.key)
                if summary is not None and summary.performs_verify:
                    found = True
        if found:
            self.performs_verify = True
        return found

    # -- mutations ----------------------------------------------------------------

    def _check_simple(self, stmt: ast.stmt, verified: bool) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                self._check_mutation_target(target, stmt, verified,
                                            augmented=isinstance(stmt, ast.AugAssign))
            if isinstance(stmt, ast.Assign) and stmt.value is not None:
                for target in stmt.targets:
                    self._note_state_derived_target(target, stmt.value)
            self._check_expr(stmt.value, verified)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_mutation_target(target, stmt, verified, augmented=False)
            return
        self._check_expr(stmt, verified)

    def _note_state_derived_target(self, target: ast.AST, value: ast.AST | None) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        if _mentions_self(value) or any(
            isinstance(sub, ast.Name) and sub.id in self.state_derived
            for sub in _walk_no_lambda(value)
        ):
            self.state_derived.add(target.id)
        else:
            self.state_derived.discard(target.id)

    def _state_root(self, chain: list[str] | None) -> str | None:
        """Dotted target description when the chain is protocol state."""
        if not chain:
            return None
        root = chain[0]
        if root == "self":
            if len(chain) >= 2 and chain[1] in OBSERVABILITY_ATTRS:
                return None
            return ".".join(chain)
        if root in self.state_derived:
            return ".".join(chain)
        return None

    def _check_mutation_target(
        self, target: ast.AST, stmt: ast.stmt, verified: bool, augmented: bool
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_mutation_target(element, stmt, verified, augmented)
            return
        if isinstance(target, ast.Name):
            return  # rebinding a local is not a state mutation
        described = self._state_root(_attr_chain(target))
        if described is None:
            return
        self.mutates = True
        if not verified:
            self._violate(stmt, described, f"writes {described} before any verify/is_member guard")

    def _check_expr(self, node: ast.AST | None, verified: bool) -> None:
        if node is None:
            return
        for call in _walk_no_lambda(node):
            if not isinstance(call, ast.Call):
                continue
            if not isinstance(call.func, ast.Attribute):
                continue
            chain = _attr_chain(call.func.value)
            described = self._state_root(chain)
            if described is None and not (
                isinstance(call.func.value, ast.Name) and call.func.value.id == "self"
            ):
                continue
            method = call.func.attr
            callee = self.graph.resolve_call(self.fn, call, self.local_types)
            if callee is not None:
                summary = self.summaries.get(callee.key)
                if summary is None or not summary.mutates:
                    continue
                self.mutates = True
                if not verified and not summary.verify_gate \
                        and callee.key not in self.skip_keys:
                    self._violate(
                        call, f"{'.'.join(chain or ['self'])}.{method}",
                        f"calls {callee.name}() (which mutates protocol state) "
                        "before any verify/is_member guard",
                    )
            elif described is not None and method in MUTATING_METHODS:
                self.mutates = True
                if not verified:
                    self._violate(
                        call, f"{described}.{method}",
                        f"mutating call {described}.{method}() before any "
                        "verify/is_member guard",
                    )

    def _violate(self, node: ast.AST, target: str, message: str) -> None:
        self.mutates = True
        key = (getattr(node, "lineno", 0), target)
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(GateViolation(node=node, target=target, message=message))


@dataclass
class FlowAnalysis:
    """Everything the FLOW rules need, computed once per lint run."""

    graph: CallGraph
    summaries: dict[str, FunctionSummary]
    dispatchers: dict[str, str]         # function key -> dispatched param name
    entry_points: set[str]              # function keys fed unverified messages

    def summary_for(self, key: str) -> FunctionSummary | None:
        return self.summaries.get(key)


def _analyzable(fn: FunctionInfo) -> bool:
    return fn.module.startswith("repro.")


def _dispatch_param(fn: FunctionInfo) -> str | None:
    """Parameter isinstance-dispatched over >= 2 branches, if any."""
    counts: dict[str, int] = {}
    for node in _walk_no_lambda(fn.node):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Name) and node.func.id == "isinstance"):
            continue
        if len(node.args) != 2 or not isinstance(node.args[0], ast.Name):
            continue
        name = node.args[0].id
        if name in fn.params and name != "self":
            counts[name] = counts.get(name, 0) + 1
    for name, count in counts.items():
        if count >= 2:
            return name
    return None


def _find_dispatch(graph: CallGraph) -> tuple[dict[str, str], set[str]]:
    dispatchers: dict[str, str] = {}
    entries: set[str] = set()
    for key, fn in graph.functions.items():
        if not _analyzable(fn):
            continue
        param = _dispatch_param(fn)
        if param is None:
            continue
        dispatchers[key] = param
        entries.add(key)
        local_types = graph.local_types(fn)
        for node in _walk_no_lambda(fn.node):
            if not isinstance(node, ast.Call):
                continue
            passes_param = any(
                isinstance(arg, ast.Name) and arg.id == param
                for arg in node.args
            ) or any(
                isinstance(kw.value, ast.Name) and kw.value.id == param
                for kw in node.keywords
            )
            if not passes_param:
                continue
            callee = graph.resolve_call(fn, node, local_types)
            if callee is not None and _analyzable(callee):
                entries.add(callee.key)
    return dispatchers, entries


def compute_summaries(graph: CallGraph) -> dict[str, FunctionSummary]:
    """Worklist fixpoint over all analyzable functions."""
    summaries: dict[str, FunctionSummary] = {
        key: FunctionSummary() for key, fn in graph.functions.items()
        if _analyzable(fn)
    }
    for _ in range(_MAX_FIXPOINT_PASSES):
        changed = False
        for key in sorted(summaries):
            fn = graph.functions[key]
            analyzer = _FunctionAnalyzer(fn, graph, summaries, emit=False)
            analyzer.run()
            new = analyzer.summary
            if taint_exempt_module(fn.module):
                # Sanctioned wall-clock/RNG use never leaks taint outward.
                new.returns_value_taint = frozenset()
                new.returns_order_taint = frozenset()
                new.param_sinks = {}
            walker = _GateWalker(fn, graph, summaries, emit=False)
            gate = walker.run()
            new.performs_verify = walker.performs_verify
            new.mutates = walker.mutates
            new.verify_gate = gate
            if new.state() != summaries[key].state():
                summaries[key] = new
                changed = True
        if not changed:
            break
    return summaries


def flow_analysis(project: Project) -> FlowAnalysis:
    """Build (or fetch the cached) flow analysis for this lint run."""
    analysis = project.cache.get("flow.analysis")
    if analysis is None:
        graph = build_call_graph(project)
        summaries = compute_summaries(graph)
        dispatchers, entries = _find_dispatch(graph)
        analysis = FlowAnalysis(
            graph=graph, summaries=summaries,
            dispatchers=dispatchers, entry_points=entries,
        )
        project.cache["flow.analysis"] = analysis
    return analysis


def taint_findings(analysis: FlowAnalysis, fn: FunctionInfo) -> list[TaintFinding]:
    """FLOW001 findings for one function (emit pass with stable summaries)."""
    analyzer = _FunctionAnalyzer(fn, analysis.graph, analysis.summaries, emit=True)
    analyzer.run()
    return analyzer.findings


def gate_violations(analysis: FlowAnalysis, fn: FunctionInfo) -> list[GateViolation]:
    """FLOW002 violations for one entry-point function.

    Other entry points are suppressed as callees here: each is walked on
    its own, so a dispatcher forwarding to an unguarded handler yields
    exactly one finding — at the handler, where the fix belongs.
    """
    walker = _GateWalker(
        fn, analysis.graph, analysis.summaries, emit=True,
        skip_keys=frozenset(analysis.entry_points),
    )
    walker.run()
    return walker.violations
