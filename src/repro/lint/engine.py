"""zuglint core: findings, rule registry, suppressions, and the runner.

Two rule scopes exist:

* ``file`` rules see one parsed module at a time (:class:`FileContext`);
* ``project`` rules see every file in the run (:class:`Project`) and can
  cross-check facts between modules — e.g. "is this codec class ever
  registered?" needs both the message module and ``wire/tags.py``.

Findings carry a stable ``fingerprint`` so a checked-in baseline can
absorb known debt while new violations still fail the run.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

#: Code attached to files the linter could not parse.
SYNTAX_ERROR_CODE = "E999"

_SUPPRESS_RE = re.compile(
    r"#\s*zuglint:\s*(?P<kind>disable-file|disable)\s*=\s*(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class LintError(Exception):
    """Raised for unusable linter invocations (bad path, bad rule code)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location.

    ``anchor`` is an optional structural identity (e.g. a dotted function
    path like ``repro.core.node:ZugChainNode.handle_message``).  Rules that
    set it get fingerprints that survive unrelated-line insertion and file
    reordering; rules that leave it ``None`` keep the historical
    line-number fingerprint.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    anchor: str | None = None

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baseline files."""
        if self.anchor is not None:
            return f"{self.path}::{self.code}::{self.anchor}"
        return f"{self.path}::{self.code}::{self.line}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for ``path``.

    Rules scope exemptions by module (wall clocks are legal inside
    ``repro.runtime``), so the name must survive being invoked as
    ``src/repro/...``, ``repro/...``, or an absolute path.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[len(parts) - parts[::-1].index(anchor):]
            break
    else:
        for root in ("repro", "tests"):
            if root in parts:
                parts = parts[parts.index(root):]
                break
        else:
            parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class FileContext:
    """One parsed source file plus the metadata rules need."""

    path: str
    source: str
    tree: ast.Module
    module: str
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)
    _parents: dict[ast.AST, ast.AST] | None = None

    @classmethod
    def parse(cls, path: str, source: str, module: str | None = None) -> "FileContext":
        tree = ast.parse(source, filename=path)
        line_supp, file_supp = _parse_suppressions(source)
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=module if module is not None else module_name_for_path(path),
            line_suppressions=line_supp,
            file_suppressions=file_supp,
        )

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree, built on first use."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def suppressed(self, finding: Finding) -> bool:
        if {"all", finding.code} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(finding.line, set())
        return bool({"all", finding.code} & on_line)


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    line_supp: dict[int, set[str]] = {}
    file_supp: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {code.strip() for code in match.group("codes").split(",") if code.strip()}
        if match.group("kind") == "disable-file":
            file_supp |= codes
        else:
            line_supp.setdefault(lineno, set()).update(codes)
    return line_supp, file_supp


@dataclass
class Project:
    """All files of one lint run, for cross-module rules.

    ``cache`` lets expensive cross-module analyses (the flow pass builds a
    call graph and fixpoint summaries) run once per lint invocation and be
    shared by every rule that needs them.
    """

    files: list[FileContext]
    cache: dict = field(default_factory=dict)

    def by_module(self, module: str) -> FileContext | None:
        for ctx in self.files:
            if ctx.module == module:
                return ctx
        return None


#: Analysis stages, in pipeline order.  ``ast`` rules are single-pass
#: syntactic checks (DET/PROTO), ``flow`` rules run the interprocedural
#: dataflow analysis (FLOW), ``aio`` rules run the async concurrency
#: analysis (ASYNC), ``sm`` rules run the protocol state-machine and
#: quorum-safety analysis (SM).  ``--stage`` on the CLI selects subsets.
STAGES = ("ast", "flow", "aio", "sm")


class Rule:
    """Base class for lint rules; subclasses self-register via ``register_rule``."""

    code: str = ""
    name: str = ""
    description: str = ""
    scope: str = "file"  # "file" or "project"
    stage: str = "ast"   # one of STAGES

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the global registry."""
    if not cls.code:
        raise LintError(f"rule {cls.__name__} has no code")
    if cls.code in _RULES:
        raise LintError(f"duplicate rule code {cls.code}")
    if cls.stage not in STAGES:
        raise LintError(f"rule {cls.code} has unknown stage {cls.stage!r}")
    _RULES[cls.code] = cls()
    return cls


def all_rules() -> list[Rule]:
    return [_RULES[code] for code in sorted(_RULES)]


def rule_for_code(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        raise LintError(f"unknown rule code {code!r}") from None


def _selected_rules(
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
    stages: Iterable[str] | None = None,
) -> list[Rule]:
    rules = all_rules()
    if stages:
        wanted_stages = {stage.strip() for stage in stages}
        for stage in wanted_stages:
            if stage not in STAGES:
                raise LintError(
                    f"unknown stage {stage!r} (choose from {', '.join(STAGES)})"
                )
        rules = [rule for rule in rules if rule.stage in wanted_stages]
    if select:
        wanted = {code.strip() for code in select}
        for code in wanted:
            rule_for_code(code)  # validate
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.strip() for code in ignore}
        for code in dropped:
            rule_for_code(code)
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise LintError(f"no such file or directory: {path}")


def lint_contexts(
    contexts: list[FileContext],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    stages: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the (filtered) rule set over already-parsed contexts.

    All project-scope rules share one :class:`Project` (and therefore one
    ``project.cache``), so the call graph and the flow/aio analyses are
    built exactly once per invocation regardless of how many stages run.
    """
    rules = _selected_rules(select, ignore, stages)
    project = Project(files=contexts)
    findings: list[Finding] = []
    for rule in rules:
        if rule.scope == "project":
            raw: Iterable[Finding] = rule.check_project(project)
            per_path = {ctx.path: ctx for ctx in contexts}
            for finding in raw:
                ctx = per_path.get(finding.path)
                if ctx is None or not ctx.suppressed(finding):
                    findings.append(finding)
        else:
            for ctx in contexts:
                for finding in rule.check_file(ctx):
                    if not ctx.suppressed(finding):
                        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_sources(
    sources: dict[str, str] | list[tuple[str, str]],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    stages: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint in-memory sources (used heavily by the test suite).

    ``sources`` maps a pretend path (which also determines the module name,
    e.g. ``src/repro/sim/foo.py`` → ``repro.sim.foo``) to source text.
    """
    items = sources.items() if isinstance(sources, dict) else sources
    contexts = [FileContext.parse(path, text) for path, text in items]
    return lint_contexts(contexts, select=select, ignore=ignore, stages=stages)


def lint_paths(
    paths: Iterable[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    stages: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files/directories on disk; unparsable files yield ``E999``."""
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {filepath}: {exc}") from exc
        try:
            contexts.append(FileContext.parse(filepath, source))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    code=SYNTAX_ERROR_CODE,
                    message=f"syntax error: {exc.msg}",
                    path=filepath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            )
    findings.extend(lint_contexts(contexts, select=select, ignore=ignore, stages=stages))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
