"""Wall-time measurement of the zuglint stages (``repro bench --suite lint``).

Quantifies what the shared-``Project`` architecture buys: the flow, aio,
and sm stages all consume the same call graph and flow summaries, so in
a combined run only the first project-scope stage pays the build cost
and every later stage is incremental.  Each stage is timed twice:

* **standalone** — a fresh :class:`Project` per stage, the cost of
  running ``--stage X`` on its own (flow/aio/sm each rebuild the graph);
* **shared** — one project threaded through the stages in order, the
  cost each stage adds to a combined ``--stage ast,flow,aio,sm`` run.

Timing covers rule execution only (no reporting, no baseline I/O).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.lint.engine import (
    STAGES,
    FileContext,
    Project,
    _selected_rules,
    iter_python_files,
)
from repro.runtime.wallclock import wall_timer


def _parse_tree(paths: Iterable[str]) -> list[FileContext]:
    contexts: list[FileContext] = []
    for filepath in iter_python_files(paths):
        with open(filepath, encoding="utf-8") as handle:
            source = handle.read()
        try:
            contexts.append(FileContext.parse(filepath, source))
        except SyntaxError:
            continue  # the CLI reports E999; timing skips the file
    return contexts


def _run_stage(stage: str, project: Project, contexts: list[FileContext]) -> int:
    """Execute one stage's rules against ``project``; returns finding count."""
    count = 0
    for rule in _selected_rules(None, None, [stage]):
        if rule.scope == "project":
            count += sum(1 for _ in rule.check_project(project))
        else:
            for ctx in contexts:
                count += sum(1 for _ in rule.check_file(ctx))
    return count


def measure_lint_stages(
    paths: Iterable[str] = ("src", "tests"),
    timer: Callable[[], float] | None = None,
) -> dict:
    """Per-stage wall times, standalone vs shared-call-graph.

    Returns ``{"files": N, "parse_s": float, "stages": {stage: {
    "standalone_s": float, "shared_s": float, "findings": int}}}`` with
    stages in execution order.
    """
    timer = timer or wall_timer()
    start = timer()
    contexts = _parse_tree(paths)
    parse_s = timer() - start

    stages: dict[str, dict] = {}
    for stage in STAGES:
        project = Project(files=contexts)  # cold cache: full build cost
        start = timer()
        findings = _run_stage(stage, project, contexts)
        stages[stage] = {"standalone_s": timer() - start, "findings": findings}

    shared_project = Project(files=contexts)  # one cache across all stages
    for stage in STAGES:
        start = timer()
        _run_stage(stage, shared_project, contexts)
        stages[stage]["shared_s"] = timer() - start

    return {"files": len(contexts), "parse_s": parse_s, "stages": stages}
