"""zuglint stage 3: async concurrency analysis (ASYNC001–ASYNC006).

Importing this package registers the ASYNC rules.  The analysis itself
lives in :mod:`repro.lint.aio.facts` and shares the flow stage's call
graph through ``project.cache`` — one graph per lint invocation.
"""

from . import rules  # noqa: F401  (side-effect: rule registration)
from .facts import AioAnalysis, AsyncFacts, aio_analysis

__all__ = ["AioAnalysis", "AsyncFacts", "aio_analysis"]
