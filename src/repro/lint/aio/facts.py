"""Async facts for the aio analysis stage.

The concurrency rules need three interprocedural facts the flow stage
does not compute:

* **may_suspend** — calling this function can yield control back to the
  event loop.  An ``await`` is *not* automatically a suspension point:
  awaiting a project coroutine that never reaches a true suspension
  primitive runs to completion synchronously, so no interleaving can
  happen across it.  The fixpoint starts every project coroutine at
  "does not suspend" and grows monotonically; anything the call graph
  cannot resolve (asyncio primitives, stream methods, dynamic dispatch)
  is conservatively treated as suspending at the use site.
* **blocking** — the set of event-loop-blocking calls (``time.sleep``,
  sync socket/DNS/subprocess work, heavy key-derivation crypto) reachable
  from this function through resolved sync *or* async callees.  Stored as
  ``(description, via)`` pairs where ``via`` is the first callee on the
  path (or ``None`` for a direct call), which keeps the lattice finite
  under recursion.
* **lock attributes** — ``self.X = asyncio.Lock()`` (or Semaphore /
  Condition) assignments per class, so the atomicity rule can recognize
  ``async with self._lock:`` regions as protected.

Nested ``async def`` closures (the TCP runtime's connection handler) are
not registered in the call graph; :func:`iter_async_functions` finds them
per file and synthesizes a :class:`~repro.lint.flow.callgraph.FunctionInfo`
with the enclosing class context so ``self.…`` calls still resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.astutil import call_name, terminal_name
from repro.lint.engine import FileContext, Project
from repro.lint.flow.callgraph import CallGraph, FunctionInfo, build_call_graph

#: Event-loop-blocking calls, by statically resolvable dotted name.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep()",
    "socket.create_connection": "sync socket connect",
    "socket.getaddrinfo": "sync DNS lookup",
    "socket.gethostbyname": "sync DNS lookup",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "os.system": "os.system()",
    "os.popen": "os.popen()",
    "urllib.request.urlopen": "sync HTTP request",
    "requests.get": "sync HTTP request",
    "requests.post": "sync HTTP request",
    "requests.put": "sync HTTP request",
    "requests.delete": "sync HTTP request",
    "requests.request": "sync HTTP request",
    "hashlib.pbkdf2_hmac": "heavy key-derivation crypto",
    "hashlib.scrypt": "heavy key-derivation crypto",
}

#: asyncio lock-family constructors whose instances guard await spans.
_LOCK_CONSTRUCTORS = {"Lock", "Semaphore", "BoundedSemaphore", "Condition"}

#: Fragments identifying a lock-like receiver when no constructor
#: assignment is visible (``async with job_lock:``).
_LOCK_NAME_HINTS = ("lock", "mutex", "sem")

_MAX_FIXPOINT_PASSES = 12


@dataclass
class AsyncFacts:
    """Interprocedural async facts about one registered function."""

    is_async: bool = False
    may_suspend: bool = False
    #: (blocking-call description, first callee on the path or None).
    blocking: frozenset = frozenset()

    def state(self) -> tuple:
        return (self.is_async, self.may_suspend, self.blocking)


@dataclass
class AioAnalysis:
    """Everything the ASYNC rules need, computed once per lint run."""

    graph: CallGraph
    facts: dict[str, AsyncFacts]
    lock_attrs: dict[str, frozenset]    # class key -> {attr names}

    def facts_for(self, key: str) -> AsyncFacts | None:
        return self.facts.get(key)

    # -- suspension classification ------------------------------------------

    def call_may_suspend(self, fn: FunctionInfo, call: ast.Call,
                         local_types: dict[str, str] | None = None) -> bool:
        """Does ``await call`` yield control?  Unresolvable ⇒ yes."""
        callee = self.graph.resolve_call(fn, call, local_types)
        if callee is None:
            return True
        facts = self.facts.get(callee.key)
        if facts is None:
            return True
        if not facts.is_async:
            # Awaiting a resolved sync function is a bug in its own right
            # (ASYNC005 territory), not a suspension point.
            return False
        return facts.may_suspend

    def is_lock_receiver(self, fn: FunctionInfo, node: ast.AST) -> bool:
        """Is ``node`` (an ``async with`` context) a lock-family object?"""
        current = node
        # async with self._lock.acquire()-style wrappers never appear in
        # this codebase; handle the two real shapes: a bare receiver and
        # a receiver attribute on self.
        if isinstance(current, ast.Call):
            current = current.func
        if (isinstance(current, ast.Attribute)
                and isinstance(current.value, ast.Name)
                and current.value.id == "self"
                and fn.class_name is not None):
            owned = self.lock_attrs.get(f"{fn.module}:{fn.class_name}", frozenset())
            if current.attr in owned:
                return True
        name = terminal_name(current)
        if name is None:
            return False
        lowered = name.lower()
        return any(hint in lowered for hint in _LOCK_NAME_HINTS)


def _no_nested_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function definitions."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if not isinstance(child, (ast.Lambda, ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                stack.append(child)


def _suspension_candidates(fn: FunctionInfo) -> Iterator[ast.AST]:
    """AST nodes in ``fn``'s own body that *may* be suspension points."""
    for node in _no_nested_defs(fn.node):
        if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            yield node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            if any(gen.is_async for gen in node.generators):
                yield node


def node_suspends(analysis: AioAnalysis, fn: FunctionInfo, node: ast.AST,
                  local_types: dict[str, str] | None = None) -> bool:
    """Does one candidate node actually suspend, given current facts?"""
    if isinstance(node, ast.Await):
        if isinstance(node.value, ast.Call):
            return analysis.call_may_suspend(fn, node.value, local_types)
        return True  # awaiting a task/future always may suspend
    return True      # async for / async with / async comprehension


def _direct_blocking(fn: FunctionInfo) -> frozenset:
    found = set()
    for node in _no_nested_defs(fn.node):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name in BLOCKING_CALLS:
            found.add((BLOCKING_CALLS[name], None))
        elif (isinstance(node.func, ast.Name) and node.func.id == "open"
                and isinstance(fn.node, ast.AsyncFunctionDef)):
            found.add(("sync file I/O (open())", None))
    return frozenset(found)


def _resolved_callees(graph: CallGraph, fn: FunctionInfo) -> list[tuple[ast.Call, FunctionInfo]]:
    local_types = graph.local_types(fn)
    out = []
    for node in _no_nested_defs(fn.node):
        if isinstance(node, ast.Call):
            callee = graph.resolve_call(fn, node, local_types)
            if callee is not None:
                out.append((node, callee))
    return out


def _collect_lock_attrs(graph: CallGraph) -> dict[str, frozenset]:
    """Per class: self attrs assigned an asyncio lock-family constructor."""
    by_class: dict[str, set] = {}
    for cls in graph.classes.values():
        attrs: set = set()
        for fn_key in cls.methods.values():
            fn = graph.functions.get(fn_key)
            if fn is None:
                continue
            for node in _no_nested_defs(fn.node):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                ctor = terminal_name(node.value.func)
                if ctor not in _LOCK_CONSTRUCTORS:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs.add(target.attr)
        if attrs:
            by_class[cls.key] = attrs
    return {key: frozenset(attrs) for key, attrs in by_class.items()}


def compute_async_facts(graph: CallGraph) -> dict[str, AsyncFacts]:
    """Worklist fixpoint for may_suspend and the blocking-call closure."""
    facts: dict[str, AsyncFacts] = {}
    analyzable = {
        key: fn for key, fn in graph.functions.items()
        if fn.module.startswith(("repro.", "tests."))
    }
    for key, fn in analyzable.items():
        facts[key] = AsyncFacts(is_async=isinstance(fn.node, ast.AsyncFunctionDef))
    # Pre-resolve call sites once; resolution does not change across passes.
    callees = {key: _resolved_callees(graph, fn) for key, fn in analyzable.items()}
    shell = AioAnalysis(graph=graph, facts=facts, lock_attrs={})
    for _ in range(_MAX_FIXPOINT_PASSES):
        changed = False
        for key in sorted(analyzable):
            fn = analyzable[key]
            old = facts[key]
            local_types = graph.local_types(fn)
            suspend = old.may_suspend
            if old.is_async and not suspend:
                suspend = any(
                    node_suspends(shell, fn, node, local_types)
                    for node in _suspension_candidates(fn)
                )
            blocking = set(old.blocking) | _direct_blocking(fn)
            for _call, callee in callees[key]:
                sub = facts.get(callee.key)
                if sub is None:
                    continue
                for desc, via in sub.blocking:
                    blocking.add((desc, via or callee.name))
            new = AsyncFacts(is_async=old.is_async, may_suspend=suspend,
                             blocking=frozenset(blocking))
            if new.state() != old.state():
                facts[key] = new
                changed = True
        if not changed:
            break
    return facts


def aio_analysis(project: Project) -> AioAnalysis:
    """Build (or fetch the cached) aio analysis for this lint run.

    Reuses the one call graph cached on ``project.cache`` — the flow and
    aio stages share it; whichever runs first pays the construction cost.
    """
    analysis = project.cache.get("aio.analysis")
    if analysis is None:
        graph = build_call_graph(project)
        analysis = AioAnalysis(
            graph=graph,
            facts=compute_async_facts(graph),
            lock_attrs=_collect_lock_attrs(graph),
        )
        project.cache["aio.analysis"] = analysis
    return analysis


@dataclass
class AsyncFunction:
    """One async function to analyze: registered method or nested closure."""

    info: FunctionInfo          # synthetic for nested defs
    ctx: FileContext
    registered: bool


def iter_async_functions(project: Project, graph: CallGraph) -> Iterator[AsyncFunction]:
    """Every ``async def`` in analyzable modules, nested closures included.

    Nested defs get a synthetic :class:`FunctionInfo` carrying the
    enclosing class so ``self.…`` resolution works inside closures that
    capture ``self`` (the TCP connection handler does exactly this).
    """
    by_node = {id(fn.node): fn for fn in graph.functions.values()}
    for ctx in project.files:
        if not ctx.module.startswith("repro."):
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            registered = by_node.get(id(node))
            if registered is not None:
                yield AsyncFunction(info=registered, ctx=ctx, registered=True)
                continue
            enclosing = _enclosing_registered(ctx, graph, node)
            class_name = enclosing.class_name if enclosing is not None else None
            base = enclosing.key if enclosing is not None else f"{ctx.module}:"
            info = FunctionInfo(
                key=f"{base}.<{node.name}>",
                module=ctx.module,
                path=ctx.path,
                name=node.name,
                class_name=class_name,
                node=node,
                params=[arg.arg for arg in node.args.posonlyargs + node.args.args],
            )
            yield AsyncFunction(info=info, ctx=ctx, registered=False)


def _enclosing_registered(ctx: FileContext, graph: CallGraph,
                          node: ast.AST) -> FunctionInfo | None:
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for fn in graph.functions.values():
                if fn.node is current:
                    return fn
        current = ctx.parents.get(current)
    return None
