"""ASYNC001–ASYNC006: asyncio concurrency rules (the aio stage).

These are project-scope rules sharing one :class:`AioAnalysis` (and,
through it, the same call graph the flow stage uses) via
``project.cache``.  The connecting thread: ZugChain's juridical
guarantees assume each replica handles a message atomically, but the
TCP runtime multiplexes handlers on one event loop — every ``await`` is
a point where another handler can observe or mutate shared state.

=========  ==============================================================
ASYNC001   read-modify-write of ``self.*`` state spanning a suspension
           point without an ``asyncio.Lock`` (interprocedural: awaiting
           a callee that transitively suspends counts)
ASYNC002   fire-and-forget task — ``create_task`` result dropped, so
           exceptions vanish and the task is garbage-collectable
ASYNC003   event-loop-blocking call reachable from an async function
ASYNC004   resource acquired then awaited without try/finally release
           (cancellation leaks the writer/lock)
ASYNC005   coroutine called but never awaited
ASYNC006   unbounded ``asyncio.Queue`` — unbackpressured ingest buffer
=========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import call_name, dotted_name, enclosing_function, terminal_name
from repro.lint.engine import FileContext, Finding, Project, Rule, register_rule
from repro.lint.flow.callgraph import OBSERVABILITY_ATTRS, FunctionInfo
from repro.lint.flow.summaries import MUTATING_METHODS, _attr_chain

from .facts import (
    BLOCKING_CALLS,
    AioAnalysis,
    aio_analysis,
    iter_async_functions,
    node_suspends,
    _no_nested_defs,
    _suspension_candidates,
)

#: create_task-family entry points whose return value must be kept.
_TASK_SPAWNERS = {"create_task", "ensure_future"}

#: Task-group receivers own their children; dropping the handle is fine.
_GROUP_HINTS = ("group", "nursery")

#: asyncio module-level coroutine functions (awaiting is mandatory).
_ASYNCIO_COROUTINES = {
    "asyncio.sleep", "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
    "asyncio.open_connection", "asyncio.start_server", "asyncio.to_thread",
    "asyncio.shield",
}

_QUEUE_CONSTRUCTORS = {"Queue", "PriorityQueue", "LifoQueue"}


def _analyzed_module(module: str) -> bool:
    return module.startswith("repro.")


# ---------------------------------------------------------------------------
# ASYNC001 — await-atomicity
# ---------------------------------------------------------------------------


class _Region:
    """May-state for the atomicity walk: reads before/after a suspension.

    ``pending`` holds reads not yet separated from here by an ``await``;
    a suspension promotes them to ``stale``.  A write to a stale attr is
    a read-modify-write whose invariant another handler can break.
    Values are ``(read_lineno, read_locked, suspend_lineno)``.
    """

    __slots__ = ("pending", "stale")

    def __init__(self, pending=None, stale=None):
        self.pending: dict = dict(pending or {})
        self.stale: dict = dict(stale or {})

    def copy(self) -> "_Region":
        return _Region(self.pending, self.stale)

    def merge(self, other: "_Region") -> None:
        """Union of may-states; an unlocked sighting beats a locked one."""
        for attr, entry in other.pending.items():
            mine = self.pending.get(attr)
            if mine is None or (mine[1] and not entry[1]):
                self.pending[attr] = entry
        for attr, entry in other.stale.items():
            mine = self.stale.get(attr)
            if mine is None or (mine[1] and not entry[1]):
                self.stale[attr] = entry


class _AtomicityWalker:
    """Branch-sensitive walk of one async function body for ASYNC001."""

    def __init__(self, analysis: AioAnalysis, fn: FunctionInfo,
                 local_types: dict[str, str]) -> None:
        self.analysis = analysis
        self.fn = fn
        self.local_types = local_types
        self.lock_depth = 0
        self.state = _Region()
        self.violations: dict[tuple, tuple] = {}  # (attr, write line) -> info
        owned = frozenset()
        if fn.class_name is not None:
            owned = analysis.lock_attrs.get(
                f"{fn.module}:{fn.class_name}", frozenset())
        self.ignored_attrs = OBSERVABILITY_ATTRS | owned

    def run(self) -> list[tuple]:
        self._block(self.fn.node.body)
        return [self.violations[key] for key in sorted(self.violations)]

    # -- events -------------------------------------------------------------

    def _read(self, attr: str, node: ast.AST) -> None:
        if attr in self.ignored_attrs:
            return
        self.state.pending[attr] = (node.lineno, self.lock_depth > 0, None)

    def _write(self, attr: str, node: ast.AST) -> None:
        if attr in self.ignored_attrs:
            return
        entry = self.state.stale.get(attr)
        if entry is not None:
            read_line, read_locked, suspend_line = entry
            if not (read_locked and self.lock_depth > 0):
                key = (attr, node.lineno)
                self.violations.setdefault(
                    key, (attr, node, read_line, suspend_line))
        self.state.stale.pop(attr, None)
        self.state.pending.pop(attr, None)

    def _suspend(self, node: ast.AST) -> None:
        for attr, (read_line, locked, _first) in self.state.pending.items():
            if attr not in self.state.stale:
                self.state.stale[attr] = (read_line, locked, node.lineno)
        self.state.pending.clear()

    # -- expressions --------------------------------------------------------

    def _expr(self, node: ast.AST | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self._call(node.value)
                if self.analysis.call_may_suspend(self.fn, node.value,
                                                  self.local_types):
                    self._suspend(node)
            else:
                self._expr(node.value)
                self._suspend(node)
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if chain and chain[0] == "self" and len(chain) >= 2:
                self._read(chain[1], node)
            for child in ast.iter_child_nodes(node):
                self._expr(child)
            return
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            if any(gen.is_async for gen in node.generators):
                self._suspend(node)
        for child in ast.iter_child_nodes(node):
            self._expr(child)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        chain = _attr_chain(func) if isinstance(func, ast.Attribute) else None
        if chain and chain[0] == "self" and len(chain) >= 3:
            # Method call on a state attribute: the receiver is read, and
            # a mutating method writes it back.
            self._expr(func.value)
            if func.attr in MUTATING_METHODS:
                for arg in node.args:
                    self._expr(arg)
                for kw in node.keywords:
                    self._expr(kw.value)
                self._write(chain[1], node)
                return
        elif not (chain and chain[0] == "self" and len(chain) == 2):
            self._expr(func)
        for arg in node.args:
            self._expr(arg)
        for kw in node.keywords:
            self._expr(kw.value)

    # -- writes -------------------------------------------------------------

    def _write_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(elt)
        elif isinstance(target, ast.Starred):
            self._write_target(target.value)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            if isinstance(target, ast.Subscript):
                self._expr(target.slice)
            chain = _attr_chain(target)
            if chain and chain[0] == "self" and len(chain) >= 2:
                self._write(chain[1], target)

    # -- statements ---------------------------------------------------------

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self._write_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            self._expr(stmt.value)
            self._write_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            chain = _attr_chain(stmt.target)
            if chain and chain[0] == "self" and len(chain) >= 2:
                # x += ... loads the old value before evaluating the rhs.
                self._read(chain[1], stmt.target)
            self._expr(stmt.value)
            self._write_target(stmt.target)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self._expr(getattr(stmt, "value", None) or getattr(stmt, "exc", None))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(target)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr(item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, ast.AsyncWith):
            self._async_with(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return
        else:
            self._expr(stmt)

    def _branches(self, blocks: list[list[ast.stmt]]) -> None:
        entry = self.state
        exits: list[_Region] = []
        for block in blocks:
            self.state = entry.copy()
            self._block(block)
            exits.append(self.state)
        merged = exits[0]
        for other in exits[1:]:
            merged.merge(other)
        self.state = merged

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor) -> None:
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
        else:
            self._expr(stmt.iter)
        # Two passes expose loop-carried hazards (a read at the bottom of
        # iteration N is stale for the write at the top of iteration N+1);
        # the violation dict dedupes repeats.
        entry = self.state.copy()
        for _pass in range(2):
            if isinstance(stmt, ast.AsyncFor):
                self._suspend(stmt)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._write_target(stmt.target)
            self._block(stmt.body)
        self.state.merge(entry)  # the zero-iteration path
        self._block(stmt.orelse)

    def _async_with(self, stmt: ast.AsyncWith) -> None:
        lockish = False
        for item in stmt.items:
            self._expr(item.context_expr)
            if self.analysis.is_lock_receiver(self.fn, item.context_expr):
                lockish = True
        self._suspend(stmt)  # __aenter__ may suspend
        if lockish:
            self.lock_depth += 1
        self._block(stmt.body)
        if lockish:
            self.lock_depth -= 1
        self._suspend(stmt)  # __aexit__ may suspend

    def _try(self, stmt: ast.Try) -> None:
        entry = self.state.copy()
        self._block(stmt.body)
        after_body = self.state
        merged = entry
        merged.merge(after_body)
        for handler in stmt.handlers:
            self.state = merged.copy()
            self._block(handler.body)
            merged.merge(self.state)
        self.state = after_body.copy()
        self._block(stmt.orelse)
        merged.merge(self.state)
        self.state = merged
        self._block(stmt.finalbody)


@register_rule
class AwaitAtomicity(Rule):
    code = "ASYNC001"
    name = "await-atomicity-violation"
    description = (
        "read-modify-write of shared self.* state spans an await without "
        "an asyncio.Lock; another handler can interleave and fork state"
    )
    scope = "project"
    stage = "aio"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = aio_analysis(project)
        for afn in iter_async_functions(project, analysis.graph):
            fn = afn.info
            local_types = (analysis.graph.local_types(fn)
                           if afn.registered else dict(fn.param_types))
            walker = _AtomicityWalker(analysis, fn, local_types)
            for attr, node, read_line, suspend_line in walker.run():
                where = (f"awaits at line {suspend_line}"
                         if suspend_line is not None else "awaits")
                yield Finding(
                    code=self.code,
                    message=(
                        f"'self.{attr}' is read at line {read_line} and "
                        f"written here, but the function {where} in "
                        f"between without holding an asyncio.Lock — a "
                        f"concurrent handler can interleave"
                    ),
                    path=fn.path,
                    line=node.lineno,
                    col=node.col_offset,
                    anchor=f"{fn.anchor}.{attr}",
                )


# ---------------------------------------------------------------------------
# ASYNC002 — fire-and-forget tasks
# ---------------------------------------------------------------------------


def _is_task_spawn(node: ast.Call) -> bool:
    name = terminal_name(node.func)
    if name not in _TASK_SPAWNERS:
        return False
    if isinstance(node.func, ast.Attribute):
        receiver = terminal_name(node.func.value)
        if receiver is not None:
            lowered = receiver.lower()
            if lowered == "tg" or any(h in lowered for h in _GROUP_HINTS):
                return False  # TaskGroup-style owners keep their children
    return True


def _name_used_later(ctx: FileContext, name: str, after: ast.stmt) -> bool:
    scope = enclosing_function(after, ctx.parents) or ctx.tree
    for node in ast.walk(scope):
        if (isinstance(node, ast.Name) and node.id == name
                and isinstance(node.ctx, ast.Load)):
            return True
    return False


@register_rule
class FireAndForgetTask(Rule):
    code = "ASYNC002"
    name = "fire-and-forget-task"
    description = (
        "create_task result is dropped: exceptions vanish and the event "
        "loop may garbage-collect the running task"
    )
    scope = "project"
    stage = "aio"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for ctx in project.files:
            if not _analyzed_module(ctx.module):
                continue
            for stmt in ast.walk(ctx.tree):
                call: ast.Call | None = None
                dropped = None
                if (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)):
                    call, dropped = stmt.value, "discarded"
                elif (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and isinstance(stmt.value, ast.Call)):
                    target = stmt.targets[0].id
                    if target == "_":
                        call, dropped = stmt.value, "assigned to '_'"
                    elif not _name_used_later(ctx, target, stmt):
                        call, dropped = stmt.value, f"bound to unused '{target}'"
                if call is None or not _is_task_spawn(call):
                    continue
                spawner = call_name(call) or terminal_name(call.func)
                yield Finding(
                    code=self.code,
                    message=(
                        f"task from {spawner}() is {dropped} — store it, "
                        f"await it, or add a done-callback so failures "
                        f"surface"
                    ),
                    path=ctx.path,
                    line=call.lineno,
                    col=call.col_offset,
                    anchor=_stmt_anchor(ctx, stmt, "spawn"),
                )


def _stmt_anchor(ctx: FileContext, stmt: ast.AST, kind: str) -> str:
    fn = enclosing_function(stmt, ctx.parents)
    where = fn.name if fn is not None else "<module>"
    return f"{ctx.module}:{where}.{kind}"


# ---------------------------------------------------------------------------
# ASYNC003 — blocking calls in async context
# ---------------------------------------------------------------------------


@register_rule
class BlockingInAsync(Rule):
    code = "ASYNC003"
    name = "blocking-call-in-async"
    description = (
        "event-loop-blocking call (sleep, sync I/O, heavy crypto) reached "
        "from an async function, directly or through sync callees"
    )
    scope = "project"
    stage = "aio"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = aio_analysis(project)
        for afn in iter_async_functions(project, analysis.graph):
            fn = afn.info
            if not _analyzed_module(fn.module):
                continue
            local_types = (analysis.graph.local_types(fn)
                           if afn.registered else dict(fn.param_types))
            seen: set[tuple] = set()
            for node in _no_nested_defs(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in BLOCKING_CALLS:
                    desc = BLOCKING_CALLS[name]
                    key = (node.lineno, desc)
                    if key not in seen:
                        seen.add(key)
                        yield self._finding(
                            fn, node,
                            f"{desc} blocks the event loop inside async "
                            f"function '{fn.name}'",
                            desc,
                        )
                    continue
                if (isinstance(node.func, ast.Name)
                        and node.func.id == "open"):
                    desc = "sync file I/O (open())"
                    key = (node.lineno, desc)
                    if key not in seen:
                        seen.add(key)
                        yield self._finding(
                            fn, node,
                            f"open() is synchronous file I/O inside async "
                            f"function '{fn.name}'",
                            desc,
                        )
                    continue
                callee = analysis.graph.resolve_call(fn, node, local_types)
                if callee is None:
                    continue
                sub = analysis.facts_for(callee.key)
                if sub is None or sub.is_async or not sub.blocking:
                    continue  # async callees are flagged at their own site
                for desc, via in sorted(sub.blocking):
                    key = (node.lineno, desc)
                    if key in seen:
                        continue
                    seen.add(key)
                    through = f" (via {via})" if via else ""
                    yield self._finding(
                        fn, node,
                        f"call to {callee.name}() reaches {desc}{through} "
                        f"from async function '{fn.name}'",
                        desc,
                    )

    def _finding(self, fn: FunctionInfo, node: ast.Call, message: str,
                 desc: str) -> Finding:
        slug = desc.split("(")[0].strip().replace(" ", "-")
        return Finding(
            code=self.code, message=message, path=fn.path,
            line=node.lineno, col=node.col_offset,
            anchor=f"{fn.anchor}.{slug}",
        )


# ---------------------------------------------------------------------------
# ASYNC004 — cancellation-unsafe resources
# ---------------------------------------------------------------------------

_RELEASE_METHODS = {"close", "release", "wait_closed", "unlock", "aclose"}


def _acquisitions(fn: FunctionInfo, analysis: AioAnalysis) -> list[tuple]:
    """(resource name, kind, acquisition stmt) triples in ``fn``'s body."""
    out = []
    for stmt in _no_nested_defs(fn.node):
        if not (isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Await)
                and isinstance(stmt.value.value, ast.Call)):
            continue
        call = stmt.value.value
        name = terminal_name(call.func)
        if name == "open_connection" and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Tuple) and target.elts:
                last = target.elts[-1]
                if isinstance(last, ast.Name):
                    out.append((last.id, "stream writer", stmt))
            elif isinstance(target, ast.Name):
                out.append((target.id, "stream writer", stmt))
        elif (name == "acquire"
                and isinstance(call.func, ast.Attribute)
                and analysis.is_lock_receiver(fn, call.func.value)):
            receiver = dotted_name(call.func.value)
            if receiver is not None:
                out.append((receiver, "lock", stmt))
    return out


def _escape_line(fn: FunctionInfo, resource: str) -> int | None:
    """Line where the resource is stored/returned (ownership transferred)."""
    earliest: int | None = None
    for node in _no_nested_defs(fn.node):
        moved = False
        if isinstance(node, ast.Assign):
            if (isinstance(node.value, ast.Name) and node.value.id == resource
                    and any(not isinstance(t, ast.Name) for t in node.targets)):
                moved = True
            elif (isinstance(node.value, ast.Tuple)
                    and any(isinstance(e, ast.Name) and e.id == resource
                            for e in node.value.elts)):
                moved = True
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == resource:
                    moved = True
                    break
        if moved and (earliest is None or node.lineno < earliest):
            earliest = node.lineno
    return earliest


def _releases(block: list[ast.stmt], resource: str) -> bool:
    for stmt in block:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                    and dotted_name(node.func.value) == resource):
                return True
    return False


def _protected(ctx: FileContext, fn: FunctionInfo, suspension: ast.AST,
               resource: str) -> bool:
    current: ast.AST | None = suspension
    while current is not None and current is not fn.node:
        parent = ctx.parents.get(current)
        if isinstance(parent, ast.Try):
            if _releases(parent.finalbody, resource):
                return True
            for handler in parent.handlers:
                if _releases(handler.body, resource):
                    return True
        current = parent
    return False


@register_rule
class CancellationUnsafeResource(Rule):
    code = "ASYNC004"
    name = "cancellation-unsafe-resource"
    description = (
        "resource acquired, then awaited without try/finally release: "
        "cancellation at the await leaks the writer/lock"
    )
    scope = "project"
    stage = "aio"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = aio_analysis(project)
        for afn in iter_async_functions(project, analysis.graph):
            fn = afn.info
            if not _analyzed_module(fn.module):
                continue
            local_types = (analysis.graph.local_types(fn)
                           if afn.registered else dict(fn.param_types))
            for resource, kind, acq in _acquisitions(fn, analysis):
                escape = _escape_line(fn, resource)
                acq_end = acq.end_lineno or acq.lineno
                exposed = None
                for node in _suspension_candidates(fn):
                    line = node.lineno
                    if line <= acq_end:
                        continue
                    if escape is not None and line >= escape:
                        continue
                    if not node_suspends(analysis, fn, node, local_types):
                        continue
                    if _protected(afn.ctx, fn, node, resource):
                        continue
                    exposed = node
                    break
                if exposed is None:
                    continue
                yield Finding(
                    code=self.code,
                    message=(
                        f"{kind} '{resource}' is acquired here but the "
                        f"function awaits at line {exposed.lineno} without "
                        f"a try/finally (or except) releasing it — "
                        f"cancellation at that await leaks the {kind}"
                    ),
                    path=fn.path,
                    line=acq.lineno,
                    col=acq.col_offset,
                    anchor=f"{fn.anchor}.{resource.replace('.', '_')}",
                )


# ---------------------------------------------------------------------------
# ASYNC005 — unawaited coroutines
# ---------------------------------------------------------------------------


@register_rule
class UnawaitedCoroutine(Rule):
    code = "ASYNC005"
    name = "unawaited-coroutine"
    description = (
        "calling a coroutine function without awaiting it creates a "
        "coroutine object that never runs"
    )
    scope = "project"
    stage = "aio"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = aio_analysis(project)
        by_path = {ctx.path: ctx for ctx in project.files}
        for key, fn in sorted(analysis.graph.functions.items()):
            if not _analyzed_module(fn.module):
                continue
            ctx = by_path.get(fn.path)
            if ctx is None:
                continue
            local_types = analysis.graph.local_types(fn)
            for stmt in _no_nested_defs(fn.node):
                if not (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)):
                    continue
                call = stmt.value
                name = call_name(call)
                callee = analysis.graph.resolve_call(fn, call, local_types)
                is_coro = False
                label = name or terminal_name(call.func) or "<dynamic>"
                if callee is not None:
                    sub = analysis.facts_for(callee.key)
                    if sub is not None and sub.is_async:
                        is_coro = True
                        label = callee.name
                elif name in _ASYNCIO_COROUTINES:
                    is_coro = True
                if not is_coro:
                    continue
                yield Finding(
                    code=self.code,
                    message=(
                        f"coroutine '{label}' is called but never awaited "
                        f"— the body will not run"
                    ),
                    path=fn.path,
                    line=call.lineno,
                    col=call.col_offset,
                    anchor=f"{fn.anchor}.{label}",
                )


# ---------------------------------------------------------------------------
# ASYNC006 — unbounded queues
# ---------------------------------------------------------------------------


def _queue_constructor(ctx_module: str, node: ast.Call,
                       imports: dict[str, str]) -> str | None:
    name = call_name(node)
    if name is not None and "." in name:
        head, _, tail = name.rpartition(".")
        if head == "asyncio" and tail in _QUEUE_CONSTRUCTORS:
            return name
        return None
    if isinstance(node.func, ast.Name):
        target = imports.get(node.func.id)
        if target is not None and target.startswith("asyncio."):
            tail = target.rpartition(".")[2]
            if tail in _QUEUE_CONSTRUCTORS:
                return target
    return None


def _is_unbounded(node: ast.Call) -> bool:
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, int):
            return first.value <= 0
        return False  # a computed bound is a bound
    for kw in node.keywords:
        if kw.arg == "maxsize":
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, int):
                return kw.value.value <= 0
            return False
    return True  # default maxsize=0 is unbounded


@register_rule
class UnboundedQueue(Rule):
    code = "ASYNC006"
    name = "unbounded-asyncio-queue"
    description = (
        "asyncio.Queue with no maxsize grows without backpressure; a slow "
        "consumer turns ingest bursts into unbounded memory growth"
    )
    scope = "project"
    stage = "aio"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = aio_analysis(project)
        for ctx in project.files:
            if not _analyzed_module(ctx.module):
                continue
            imports = analysis.graph.imports.get(ctx.module, {})
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                ctor = _queue_constructor(ctx.module, node, imports)
                if ctor is None or not _is_unbounded(node):
                    continue
                yield Finding(
                    code=self.code,
                    message=(
                        f"{ctor}() has no maxsize — producers outrunning "
                        f"the consumer grow this buffer without bound; "
                        f"give it a maxsize so put() applies backpressure"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    anchor=_stmt_anchor(ctx, node, "queue"),
                )
