"""Baseline files: absorb known findings, fail loudly on new ones.

A baseline is a JSON document of finding fingerprints
(``path::CODE::line``).  The repo checks in an **empty** baseline
(`lint-baseline.json`), so any future violation is a hard CI failure
rather than quietly accreting; the mechanism exists so a large sweep can
be landed incrementally if that ever becomes necessary.
"""

from __future__ import annotations

import json
import os

from repro.lint.engine import Finding, LintError

#: Looked up in the current working directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def load_baseline(path: str) -> set[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("suppressed"), list):
        raise LintError(f"baseline {path} must be {{\"suppressed\": [...]}}")
    return {str(item) for item in data["suppressed"]}


def write_baseline(path: str, findings: list[Finding]) -> None:
    payload = {
        "tool": "zuglint",
        "suppressed": sorted({finding.fingerprint for finding in findings}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def find_default_baseline() -> str | None:
    return DEFAULT_BASELINE_NAME if os.path.exists(DEFAULT_BASELINE_NAME) else None


def apply_baseline(findings: list[Finding], suppressed: set[str]) -> list[Finding]:
    return [finding for finding in findings if finding.fingerprint not in suppressed]


def stale_entries(findings: list[Finding], suppressed: set[str]) -> list[str]:
    """Baseline fingerprints no longer matched by any current finding.

    Stale entries are debt that was paid off (or code that moved); they
    would silently re-absorb a future regression at the same anchor, so
    the CLI warns about them and ``--prune-baseline`` drops them.
    """
    live = {finding.fingerprint for finding in findings}
    return sorted(suppressed - live)


def prune_baseline(path: str, findings: list[Finding]) -> list[str]:
    """Rewrite ``path`` keeping only fingerprints still matched; return dropped."""
    suppressed = load_baseline(path)
    stale = stale_entries(findings, suppressed)
    if stale:
        payload = {
            "tool": "zuglint",
            "suppressed": sorted(suppressed - set(stale)),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return stale
