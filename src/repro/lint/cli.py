"""zuglint command line.

Usage::

    python -m repro.lint src/ tests/            # lint trees
    python -m repro.lint --list-rules           # show every rule code
    python -m repro.lint --format json src/     # machine output
    python -m repro.lint --format sarif --output lint.sarif src/
    python -m repro.lint --select DET001 src/   # run a subset
    python -m repro.lint --stage aio src/       # one analysis stage only
    python -m repro.lint --write-baseline src/  # absorb current findings
    python -m repro.lint --prune-baseline src/  # drop stale baseline entries

Exit codes: **0** clean, **1** findings reported, **2** usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

import repro.lint  # noqa: F401  (registers all rules)
from repro.lint import baseline as baseline_mod
from repro.lint.engine import STAGES, LintError, lint_paths
from repro.lint.reporters import REPORTERS, describe_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "zuglint: AST-based determinism (DET00x) and protocol-safety "
            "(PROTO00x) linter for the ZugChain reproduction."
        ),
        epilog=(
            "Suppress a finding inline with '# zuglint: disable=CODE' (or "
            "'disable-file=CODE' for a whole module). Exit codes: 0 clean, "
            "1 findings, 2 usage error."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the rendered report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. DET001,PROTO002)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--stage",
        metavar="STAGES",
        help=(
            "comma-separated analysis stages to run "
            f"({', '.join(STAGES)}; default: all)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of known findings to ignore "
            f"(default: ./{baseline_mod.DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries no longer matched by any finding, then lint",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def main(argv: list[str] | None = None, stream: IO[str] | None = None) -> int:
    out = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        describe_rules(out)
        return EXIT_CLEAN

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    stages = args.stage.split(",") if args.stage else None

    try:
        findings = lint_paths(args.paths, select=select, ignore=ignore, stages=stages)

        baseline_path = args.baseline or baseline_mod.find_default_baseline()
        if args.write_baseline:
            target = args.baseline or baseline_mod.DEFAULT_BASELINE_NAME
            baseline_mod.write_baseline(target, findings)
            print(f"zuglint: wrote {len(findings)} fingerprint(s) to {target}", file=out)
            return EXIT_CLEAN
        if args.prune_baseline:
            target = baseline_path or baseline_mod.DEFAULT_BASELINE_NAME
            dropped = baseline_mod.prune_baseline(target, findings)
            print(
                f"zuglint: pruned {len(dropped)} stale entr"
                f"{'y' if len(dropped) == 1 else 'ies'} from {target}",
                file=out,
            )
            baseline_path = target
        if baseline_path:
            suppressed = baseline_mod.load_baseline(baseline_path)
            stale = baseline_mod.stale_entries(findings, suppressed)
            if stale and not args.prune_baseline:
                print(
                    f"zuglint: warning: {len(stale)} stale baseline "
                    f"entr{'y' if len(stale) == 1 else 'ies'} in "
                    f"{baseline_path} (run --prune-baseline): "
                    + ", ".join(stale[:5])
                    + (", ..." if len(stale) > 5 else ""),
                    file=sys.stderr,
                )
            findings = baseline_mod.apply_baseline(findings, suppressed)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    reporter = REPORTERS[args.format]
    if args.output:
        with open(args.output, "w", encoding="utf-8") as sink:
            reporter(findings, sink)
        print(f"zuglint: wrote {args.format} report to {args.output}", file=out)
    else:
        reporter(findings, out)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
