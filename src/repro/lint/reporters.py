"""Finding reporters: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import IO

from repro.lint.engine import Finding, all_rules


def report_text(findings: list[Finding], stream: IO[str]) -> None:
    """One ``path:line:col: CODE message`` line per finding plus a summary."""
    for finding in findings:
        stream.write(finding.render() + "\n")
    if findings:
        by_code: dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        breakdown = ", ".join(f"{code}×{count}" for code, count in sorted(by_code.items()))
        stream.write(f"zuglint: {len(findings)} finding(s) ({breakdown})\n")
    else:
        stream.write("zuglint: clean\n")


def report_json(findings: list[Finding], stream: IO[str]) -> None:
    """Stable JSON document for tooling (CI annotations, baselines)."""
    payload = {
        "tool": "zuglint",
        "findings": [
            {
                "code": finding.code,
                "message": finding.message,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "fingerprint": finding.fingerprint,
            }
            for finding in findings
        ],
        "count": len(findings),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def report_sarif(findings: list[Finding], stream: IO[str]) -> None:
    """SARIF 2.1.0 document for code-scanning upload (GitHub et al.).

    Every result carries ``partialFingerprints["zuglint/fingerprint"]`` —
    the same anchor-based fingerprint the baseline machinery uses — so
    consumers dedupe findings across line-shifting edits exactly like the
    local baseline does.
    """
    rules_meta = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"zuglint/fingerprint": finding.fingerprint},
        }
        for finding in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "zuglint",
                        "rules": rules_meta,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    json.dump(document, stream, indent=2, sort_keys=True)
    stream.write("\n")


def describe_rules(stream: IO[str]) -> None:
    for rule in all_rules():
        stream.write(f"{rule.code}  {rule.name}\n    {rule.description}\n")


REPORTERS = {"text": report_text, "json": report_json, "sarif": report_sarif}
