"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO

from repro.lint.engine import Finding, all_rules


def report_text(findings: list[Finding], stream: IO[str]) -> None:
    """One ``path:line:col: CODE message`` line per finding plus a summary."""
    for finding in findings:
        stream.write(finding.render() + "\n")
    if findings:
        by_code: dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        breakdown = ", ".join(f"{code}×{count}" for code, count in sorted(by_code.items()))
        stream.write(f"zuglint: {len(findings)} finding(s) ({breakdown})\n")
    else:
        stream.write("zuglint: clean\n")


def report_json(findings: list[Finding], stream: IO[str]) -> None:
    """Stable JSON document for tooling (CI annotations, baselines)."""
    payload = {
        "tool": "zuglint",
        "findings": [
            {
                "code": finding.code,
                "message": finding.message,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "fingerprint": finding.fingerprint,
            }
            for finding in findings
        ],
        "count": len(findings),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def describe_rules(stream: IO[str]) -> None:
    for rule in all_rules():
        stream.write(f"{rule.code}  {rule.name}\n    {rule.description}\n")


REPORTERS = {"text": report_text, "json": report_json}
