"""zuglint — repo-specific determinism & protocol-safety static analysis.

The reproduction rests on two contracts nothing else enforces:

* **Determinism** — simulated components take time from ``env.now()`` and
  randomness from :mod:`repro.util.rng` seeded streams.  A single
  ``time.time()`` or module-level ``random.random()`` makes runs
  irreproducible; an unsorted ``set`` feeding a hash makes replicas
  diverge silently.
* **Protocol safety** — every message that crosses a process boundary has
  a unique wire tag, a registered decoder, and a round-trippable codec
  (:mod:`repro.wire.registry`).

zuglint walks Python ASTs and flags violations of both families.  Rules
are small plugins registered by code (``DET00x`` determinism, ``PROTO00x``
protocol safety); findings can be suppressed inline with
``# zuglint: disable=CODE`` or absorbed by a checked-in baseline file.

Run it as ``python -m repro.lint src/ tests/`` or via the ``repro-lint``
console script.
"""

from repro.lint.engine import (
    FileContext,
    Finding,
    LintError,
    Project,
    Rule,
    all_rules,
    lint_paths,
    lint_sources,
    register_rule,
    rule_for_code,
)

# Importing the rule modules registers every shipped rule (the flow
# package carries the interprocedural FLOW001-FLOW004 stage, the aio
# package the async concurrency ASYNC001-ASYNC006 stage, the sm package
# the protocol state-machine SM001-SM006 stage).
import repro.lint.rules  # noqa: E402,F401  (import for side effect)
import repro.lint.flow  # noqa: E402,F401  (import for side effect)
import repro.lint.aio  # noqa: E402,F401  (import for side effect)
import repro.lint.sm  # noqa: E402,F401  (import for side effect)

__all__ = [
    "FileContext",
    "Finding",
    "LintError",
    "Project",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_sources",
    "register_rule",
    "rule_for_code",
]
