"""DET00x — determinism rules.

The simulation's central invariant is bit-for-bit reproducibility: the
same seed must produce the same chain, the same latencies, the same
export payloads.  Every rule here flags a construct that silently breaks
that invariant — wall clocks, ambient randomness, unordered iteration
feeding hashes or wire bytes, identity-based ordering, and exact float
comparison on virtual-time deadlines.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import call_name, dotted_name, terminal_name
from repro.lint.engine import FileContext, Finding, Rule, register_rule

#: Modules in which real wall-clock access is the whole point (the asyncio
#: runtime bridges virtual time to real sockets).
_WALL_CLOCK_EXEMPT_PREFIX = "repro.runtime"

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}

#: ``random.<fn>()`` module-level calls that draw from the ambient,
#: process-global RNG.  (Type annotations like ``rng: random.Random`` are
#: not calls and are never flagged.)
_AMBIENT_RANDOM_FUNCS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

_RNG_EXEMPT_MODULE = "repro.util.rng"

#: Callees whose argument order becomes protocol-visible: hashes, Merkle
#: commitments, wire writers, message emission.
_ORDER_SINKS = {
    "sha256",
    "sha512",
    "blake2b",
    "merkle_root",
    "encode_message",
    "put_list",
    "put_bytes",
    "sign",
    "send",
    "broadcast",
}

#: Names that denote an absolute point in virtual time.
_DEADLINE_HINTS = ("deadline", "expiry", "expires", "fire_at", "due_at")


@register_rule
class WallClockRule(Rule):
    code = "DET001"
    name = "wall-clock"
    description = (
        "wall-clock access (time.time/monotonic/perf_counter, datetime.now, ...) "
        "outside repro.runtime; simulated code must use env.now()"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module.startswith(_WALL_CLOCK_EXEMPT_PREFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee in _WALL_CLOCK_CALLS:
                yield Finding(
                    code=self.code,
                    message=(
                        f"wall-clock call {callee}() breaks determinism; "
                        "take time from env.now() / the kernel clock"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )


@register_rule
class AmbientRandomRule(Rule):
    code = "DET002"
    name = "ambient-random"
    description = (
        "module-level random.* calls or unseeded random.Random() outside "
        "repro.util.rng; randomness must come from seeded RngRegistry streams"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == _RNG_EXEMPT_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                continue
            if func.attr == "Random" and not node.args and not node.keywords:
                message = (
                    "unseeded random.Random() is seeded from the OS; "
                    "derive streams via repro.util.rng.RngRegistry"
                )
            elif func.attr == "SystemRandom":
                message = "random.SystemRandom() is nondeterministic by design"
            elif func.attr in _AMBIENT_RANDOM_FUNCS:
                message = (
                    f"module-level random.{func.attr}() uses the ambient global RNG; "
                    "draw from a named RngRegistry stream instead"
                )
            else:
                continue
            yield Finding(
                code=self.code,
                message=message,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
            )


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Does ``node`` produce elements in hash order (sets, dict views)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("keys", "values", "items"):
            return True
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
    return False


def _comprehension_over_unordered(node: ast.AST) -> bool:
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return any(_is_unordered_iterable(gen.iter) for gen in node.generators)
    return False


def _sink_callee(node: ast.Call) -> str | None:
    name = terminal_name(node.func)
    return name if name in _ORDER_SINKS else None


@register_rule
class UnorderedIterationRule(Rule):
    code = "DET003"
    name = "unordered-iteration"
    description = (
        "iteration over a set or dict view feeding a hash, codec writer, or "
        "message emission without sorted(); replicas diverge silently"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                sink = _sink_callee(node)
                if sink is None:
                    continue
                args: list[ast.AST] = list(node.args)
                args.extend(
                    kw.value for kw in node.keywords if kw.arg != "domain"
                )
                for arg in args:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    if _is_unordered_iterable(inner) or _comprehension_over_unordered(inner):
                        yield Finding(
                            code=self.code,
                            message=(
                                f"unordered set/dict iteration feeds {sink}(); "
                                "wrap the iterable in sorted(...) for a canonical order"
                            ),
                            path=ctx.path,
                            line=inner.lineno,
                            col=inner.col_offset,
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if not _is_unordered_iterable(node.iter):
                    continue
                for inner in node.body:
                    for sub in ast.walk(inner):
                        if isinstance(sub, ast.Call) and (sink := _sink_callee(sub)):
                            yield Finding(
                                code=self.code,
                                message=(
                                    f"loop over unordered set/dict view calls {sink}(); "
                                    "iterate sorted(...) so emission order is canonical"
                                ),
                                path=ctx.path,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                            break
                    else:
                        continue
                    break


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _contains_id_call(node: ast.AST) -> bool:
    return any(_is_id_call(sub) for sub in ast.walk(node))


@register_rule
class IdOrderingRule(Rule):
    code = "DET004"
    name = "id-ordering"
    description = (
        "ordering by id() — CPython addresses vary run to run, so any "
        "id()-keyed sort or comparison is nondeterministic"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
                if any(isinstance(op, ordering_ops) for op in node.ops) and any(
                    _is_id_call(operand) for operand in operands
                ):
                    yield Finding(
                        code=self.code,
                        message="ordering comparison on id(); use a stable key instead",
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
            elif isinstance(node, ast.keyword) and node.arg == "key":
                value = node.value
                keyed_by_id = (
                    isinstance(value, ast.Name) and value.id == "id"
                ) or (isinstance(value, ast.Lambda) and _contains_id_call(value.body))
                if keyed_by_id:
                    yield Finding(
                        code=self.code,
                        message="sort key uses id(); object addresses differ across runs",
                        path=ctx.path,
                        line=value.lineno,
                        col=value.col_offset,
                    )


def _mentions_deadline(node: ast.AST) -> bool:
    name = terminal_name(node)
    if name is not None:
        lowered = name.lower()
        if any(hint in lowered for hint in _DEADLINE_HINTS):
            return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None and callee.split(".")[-1] == "now":
            return True
    return False


def _imports_asyncio_sleep(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "asyncio":
            if any(alias.name == "sleep" for alias in node.names):
                return True
    return False


@register_rule
class EventLoopClockRule(Rule):
    code = "DET006"
    name = "event-loop-clock"
    description = (
        "event-loop time reads (loop.time(), asyncio.sleep with a literal "
        "delay) in protocol code outside the runtime adapters, and the "
        "deprecated ambient asyncio.get_event_loop() anywhere in repro.*; "
        "protocol code must take time from env.now() and delays from "
        "env.set_timer()"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        in_runtime = ctx.module.startswith(_WALL_CLOCK_EXEMPT_PREFIX)
        sleep_imported = _imports_asyncio_sleep(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            # The deprecated ambient loop lookup is flagged even inside the
            # runtime adapters: the sanctioned APIs are get_running_loop()
            # or an explicitly passed loop.
            if callee in ("asyncio.get_event_loop", "get_event_loop"):
                yield Finding(
                    code=self.code,
                    message=(
                        "asyncio.get_event_loop() is deprecated and binds an "
                        "ambient loop; use asyncio.get_running_loop() or "
                        "accept an explicit loop"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )
                continue
            if in_runtime:
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "time":
                receiver = terminal_name(func.value)
                if receiver is not None and "loop" in receiver.lower():
                    yield Finding(
                        code=self.code,
                        message=(
                            f"{receiver}.time() reads the event-loop clock in "
                            "protocol code; take time from env.now()"
                        ),
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                    continue
            is_sleep = callee == "asyncio.sleep" or (
                callee == "sleep" and sleep_imported
            )
            if is_sleep and node.args:
                delay = node.args[0]
                if (
                    isinstance(delay, ast.Constant)
                    and isinstance(delay.value, (int, float))
                    and not isinstance(delay.value, bool)
                    and delay.value > 0
                ):
                    yield Finding(
                        code=self.code,
                        message=(
                            f"asyncio.sleep({delay.value}) hard-codes a wall-clock "
                            "delay in protocol code; arm env.set_timer() so the "
                            "simulator and transports share one timebase"
                        ),
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )


#: Receiver attribute names that identify metric write calls.
_METRIC_WRITE_ATTRS = ("observe", "inc")

#: Receiver name fragments that identify a metric object.
_METRIC_RECEIVER_HINTS = ("counter", "gauge", "histogram", "metric")


def _is_tracer_emit(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    receiver = terminal_name(func.value)
    return receiver is not None and "tracer" in receiver.lower()


def _is_metric_write(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_WRITE_ATTRS):
        return False
    receiver = terminal_name(func.value)
    return receiver is not None and any(
        hint in receiver.lower() for hint in _METRIC_RECEIVER_HINTS
    )


def _ambient_format_target(node: ast.AST) -> str | None:
    """Describe ``node`` if formatting it has no canonical rendering."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "a dict display"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set display"
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in ("set", "frozenset", "dict", "vars", "locals", "globals"):
            return f"{name}()"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "keys", "values", "items",
        ):
            return f".{node.func.attr}()"
    return None


def _emission_args(node: ast.Call) -> Iterator[ast.AST]:
    yield from node.args
    for keyword in node.keywords:
        yield keyword.value


@register_rule
class ObservabilityEmissionRule(Rule):
    code = "DET007"
    name = "obs-emission"
    description = (
        "trace/metric emission reading the wall clock or formatting an "
        "ambient object (f-string/str/repr over a dict, set, or vars()); "
        "trace fields must be scalars derived from protocol state and "
        "timestamps must come from env.now()"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_trace = _is_tracer_emit(node)
            if not is_trace and not _is_metric_write(node):
                continue
            for arg in _emission_args(node):
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and call_name(sub) in _WALL_CLOCK_CALLS:
                        yield Finding(
                            code=self.code,
                            message=(
                                f"{call_name(sub)}() inside trace/metric emission; "
                                "stamp events with env.now() so identical-seed "
                                "runs emit identical records"
                            ),
                            path=ctx.path,
                            line=sub.lineno,
                            col=sub.col_offset,
                        )
                    elif isinstance(sub, ast.FormattedValue):
                        target = _ambient_format_target(sub.value)
                        if target is not None:
                            yield Finding(
                                code=self.code,
                                message=(
                                    f"f-string formats {target} in a trace/metric "
                                    "field; container renderings are not canonical "
                                    "— emit sorted scalars instead"
                                ),
                                path=ctx.path,
                                line=sub.lineno,
                                col=sub.col_offset,
                            )
                    elif (
                        is_trace
                        and isinstance(sub, ast.Call)
                        and terminal_name(sub.func) in ("str", "repr", "format")
                        and sub.args
                    ):
                        target = _ambient_format_target(sub.args[0])
                        if target is not None:
                            yield Finding(
                                code=self.code,
                                message=(
                                    f"{terminal_name(sub.func)}() over {target} in a "
                                    "trace field has no canonical rendering; emit "
                                    "sorted scalars instead"
                                ),
                                path=ctx.path,
                                line=sub.lineno,
                                col=sub.col_offset,
                            )


#: Modules allowed to mint contexts and mutate causal clocks: the emission
#: funnel and the transports (``repro.runtime``) and the causal machinery
#: itself (``repro.obs`` — stamp/merge/observe and the codecs).
_CAUSAL_EXEMPT_PREFIXES = ("repro.runtime", "repro.obs")

#: CausalClock state only the funnel/receive path may assign.
_CAUSAL_CLOCK_ATTRS = {"origin", "lamport", "events", "last_event", "inbound", "carry"}

#: Tracer-computed causal annotations protocol code must never pass.
_CAUSAL_EMIT_KWARGS = {"idx", "lamport", "cause"}


def _causal_receiver(node: ast.AST) -> str | None:
    """The receiver's dotted name, if it names a causal clock."""
    name = dotted_name(node) or terminal_name(node)
    if name is None:
        return None
    lowered = name.lower()
    if "causal" in lowered or "clock" in lowered:
        return name
    return None


@register_rule
class CausalFunnelRule(Rule):
    code = "DET008"
    name = "causal-funnel"
    description = (
        "CausalContext construction or CausalClock mutation outside the "
        "emission funnel (repro.runtime) and the causal machinery "
        "(repro.obs); contexts are minted by BaseEnv._emit only and clock "
        "state is owned by stamp/merge/observe — protocol code forging "
        "either breaks happens-before"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module.startswith(_CAUSAL_EXEMPT_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr not in _CAUSAL_CLOCK_ATTRS:
                        continue
                    receiver = _causal_receiver(target.value)
                    if receiver is None:
                        continue
                    yield Finding(
                        code=self.code,
                        message=(
                            f"assignment to {receiver}.{target.attr} outside the "
                            "emission funnel; CausalClock state is owned by "
                            "BaseEnv._emit / run_inbound and the bound tracer"
                        ),
                        path=ctx.path,
                        line=target.lineno,
                        col=target.col_offset,
                    )
            elif isinstance(node, ast.Call):
                if terminal_name(node.func) == "CausalContext":
                    yield Finding(
                        code=self.code,
                        message=(
                            "CausalContext constructed outside the emission "
                            "funnel; contexts are minted by CausalClock.stamp() "
                            "inside BaseEnv._emit only"
                        ),
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                elif _is_tracer_emit(node):
                    for keyword in node.keywords:
                        if keyword.arg in _CAUSAL_EMIT_KWARGS:
                            yield Finding(
                                code=self.code,
                                message=(
                                    f"tracer.emit(..., {keyword.arg}=...) forges a "
                                    "causal annotation; idx/lamport/cause are "
                                    "assigned by the bound CausalClock"
                                ),
                                path=ctx.path,
                                line=keyword.value.lineno,
                                col=keyword.value.col_offset,
                            )


@register_rule
class FloatDeadlineEqualityRule(Rule):
    code = "DET005"
    name = "float-deadline-eq"
    description = (
        "exact float ==/!= against a timer deadline or now(); float "
        "arithmetic makes exact hits unreliable — compare with <=/>="
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_mentions_deadline(operand) for operand in operands):
                yield Finding(
                    code=self.code,
                    message=(
                        "exact equality on a virtual-time deadline; "
                        "use an ordering comparison (<=, >=) or an epsilon"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )
