"""PROTO00x — protocol-safety rules.

Replicated-state-machine deployments fail less from clever Byzantine
attacks than from mundane serialization gaps: a message type that was
never registered, two types silently sharing a wire tag, a handler that
swallows a decode error and desynchronizes one replica.  These rules
cross-check the codec surface (`repro.wire.registry`) against the message
modules so those gaps fail the build instead of a night run.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.astutil import enclosing_function, terminal_name
from repro.lint.engine import FileContext, Finding, Project, Rule, register_rule

#: Modules whose ``encode``/``decode`` classes must be registered with the
#: wire envelope registry.
_MESSAGE_MODULE_RE = re.compile(r"^repro\.(bft|core|export|wire)\.messages$")

#: The canonical tag table and the registration entry point.
_TAG_TABLE_NAME = "WIRE_TAGS"
_REGISTER_FUNC = "register_message_type"

_HANDLER_NAME_RE = re.compile(r"^(on_|_on_|handle_|_handle_?)|receive|deliver|dispatch")

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}


def _codec_classes(ctx: FileContext) -> Iterator[ast.ClassDef]:
    """Public classes defining both ``encode`` and ``decode``."""
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if {"encode", "decode"} <= methods:
            yield node


def _dict_table_entries(value: ast.Dict) -> list[tuple[int | None, str, int]]:
    entries: list[tuple[int | None, str, int]] = []
    for key, val in zip(value.keys, value.values):
        tag = key.value if isinstance(key, ast.Constant) and isinstance(key.value, int) else None
        name = terminal_name(val)
        if name is not None:
            entries.append((tag, name, (key or val).lineno))
    return entries


def _items_receiver(node: ast.expr) -> str | None:
    """Name ``T`` when ``node`` is the expression ``T.items()``."""
    if (
        isinstance(node, ast.Call)
        and not node.args
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "items"
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id
    return None


def _iter_table_names(node: ast.expr) -> list[str]:
    """Module-level table names a registration loop iterates over.

    Understands ``TABLE.items()`` (dict tables), bare ``TABLE`` sequence
    iteration, and the computed-tag idioms ``enumerate(TABLE, start=...)``
    and ``zip(TAGS, CLASSES)``.
    """
    receiver = _items_receiver(node)
    if receiver is not None:
        return [receiver]
    if isinstance(node, ast.Name):
        return [node.id]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("enumerate", "zip")
    ):
        return [arg.id for arg in node.args if isinstance(arg, ast.Name)]
    return []


def _registration_driven_tables(tree: ast.Module) -> tuple[set[str], set[int]]:
    """Tables consumed by a ``register_message_type`` loop/comprehension.

    Recognizes the driven-registration idioms::

        for tag, cls in TABLE.items():
            register_message_type(tag, cls)

        for offset, cls in enumerate(MESSAGE_TYPES):
            register_message_type(BASE_TAG + offset, cls)

        for tag, cls in zip(TAGS, MESSAGE_TYPES):
            register_message_type(tag, cls)

    and their comprehension forms, for *any* table name.  A table that is
    merely defined but never fed to the registrar yields no facts (no junk
    entries from unrelated dicts of classes).  Returns the consumed table
    names plus the ids of the register calls inside those loops, so the
    direct-call scan does not re-yield them with loop-variable "classes".
    """
    consumed: set[str] = set()
    driven_calls: set[int] = set()

    def _register_calls(node: ast.AST) -> list[ast.Call]:
        return [
            sub for sub in ast.walk(node)
            if isinstance(sub, ast.Call) and terminal_name(sub.func) == _REGISTER_FUNC
        ]

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            tables = _iter_table_names(node.iter)
            if not tables:
                continue
            calls = [call for stmt in node.body for call in _register_calls(stmt)]
            if calls:
                consumed.update(tables)
                driven_calls.update(id(call) for call in calls)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            calls = _register_calls(node.elt)
            if not calls:
                continue
            for gen in node.generators:
                tables = _iter_table_names(gen.iter)
                if tables:
                    consumed.update(tables)
                    driven_calls.update(id(call) for call in calls)
    return consumed, driven_calls


def _registrations(ctx: FileContext) -> Iterator[tuple[int | None, str, int]]:
    """Yield ``(tag, class_name, lineno)`` registration facts in one file.

    Facts come from three statically visible shapes:

    - the canonical literal ``WIRE_TAGS = {tag: Class}`` table,
    - any dict-literal table consumed by a ``register_message_type``
      loop or comprehension over ``TABLE.items()``,
    - list/tuple class tables fed through ``enumerate``/``zip``/plain
      iteration into the registrar — the tags are computed at runtime, so
      these yield ``tag=None`` (registered, tag value unknown),
    - direct ``register_message_type(tag, Class)`` calls.

    Registrations computed beyond that (tags from expressions, classes
    behind aliases) are invisible to static analysis and intentionally
    ignored.
    """
    driven, driven_calls = _registration_driven_tables(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if isinstance(node.value, ast.Dict):
                if _TAG_TABLE_NAME in targets or any(t in driven for t in targets):
                    yield from _dict_table_entries(node.value)
            elif isinstance(node.value, (ast.List, ast.Tuple, ast.Set)):
                if any(t in driven for t in targets):
                    for elt in node.value.elts:
                        name = terminal_name(elt)
                        if name is not None:
                            yield None, name, elt.lineno
        elif isinstance(node, ast.Call) and id(node) not in driven_calls:
            callee = terminal_name(node.func)
            if callee == _REGISTER_FUNC and len(node.args) >= 2:
                tag_node, cls_node = node.args[0], node.args[1]
                tag = tag_node.value if isinstance(tag_node, ast.Constant) and isinstance(tag_node.value, int) else None
                name = terminal_name(cls_node)
                if name is not None:
                    yield tag, name, node.lineno


@register_rule
class UnregisteredCodecRule(Rule):
    code = "PROTO001"
    name = "unregistered-codec"
    description = (
        "a class with encode/decode in a repro.*.messages module that is "
        "never registered with register_message_type — it cannot cross a "
        "process boundary and silently escapes round-trip tests"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        registered: set[str] = set()
        saw_registry = False
        for ctx in project.files:
            for _tag, name, _line in _registrations(ctx):
                registered.add(name)
                saw_registry = True
        if not saw_registry:
            # Single-file invocations can't see wire/tags.py; stay silent
            # rather than flag every message class in sight.
            return
        for ctx in project.files:
            if not _MESSAGE_MODULE_RE.match(ctx.module):
                continue
            for cls in _codec_classes(ctx):
                if cls.name not in registered:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"codec class {cls.name} defines encode/decode but is never "
                            "passed to register_message_type (wire/tags.py)"
                        ),
                        path=ctx.path,
                        line=cls.lineno,
                        col=cls.col_offset,
                    )


@register_rule
class DuplicateWireTagRule(Rule):
    code = "PROTO002"
    name = "duplicate-wire-tag"
    description = (
        "the same wire tag statically assigned to two different classes "
        "(across WIRE_TAGS tables and register_message_type calls)"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        first_owner: dict[int, tuple[str, str, int]] = {}
        for ctx in project.files:
            for tag, name, lineno in _registrations(ctx):
                if tag is None:
                    continue
                owner = first_owner.get(tag)
                if owner is None:
                    first_owner[tag] = (name, ctx.path, lineno)
                elif owner[0] != name:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"wire tag {tag} assigned to {name} but already owned by "
                            f"{owner[0]} ({owner[1]}:{owner[2]}); tags are stable API"
                        ),
                        path=ctx.path,
                        line=lineno,
                        col=0,
                    )


def _is_trivial_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@register_rule
class SwallowedExceptionRule(Rule):
    code = "PROTO003"
    name = "swallowed-exception"
    description = (
        "bare except, or except Exception with an empty body — in a message "
        "handler this turns a decode/verify failure into silent replica "
        "divergence"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    code=self.code,
                    message="bare except catches everything including KeyboardInterrupt; name the exception",
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )
                continue
            broad = terminal_name(node.type) in ("Exception", "BaseException")
            if broad and _is_trivial_body(node.body):
                func = enclosing_function(node, ctx.parents)
                where = (
                    f"in handler {func.name}()"
                    if func is not None and _HANDLER_NAME_RE.search(func.name)
                    else "here"
                )
                yield Finding(
                    code=self.code,
                    message=(
                        f"except {terminal_name(node.type)}: pass {where} swallows failures "
                        "silently; log, re-raise, or narrow the exception"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == name:
            return item
    return None


def _has_literal_arithmetic(node: ast.AST) -> bool:
    """Any binary arithmetic with an integer-literal operand under ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.BinOp):
            continue
        for operand in (sub.left, sub.right):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, int)
                and not isinstance(operand.value, bool)
            ):
                return True
    return False


@register_rule
class EncodedSizeDriftRule(Rule):
    code = "PROTO005"
    name = "encoded-size-drift"
    description = (
        "encoded_size() computed with hand-maintained integer arithmetic "
        "instead of being derived from the codec; such bodies cannot be "
        "statically shown to agree with len(encode()), and a drift skews "
        "every wire_size()-based cost in the simulation"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _method(node, "encode") is None:
                continue
            sizer = _method(node, "encoded_size")
            if sizer is None:
                continue
            if _has_literal_arithmetic(sizer):
                yield Finding(
                    code=self.code,
                    message=(
                        f"{node.name}.encoded_size() uses literal arithmetic that "
                        "can silently disagree with len(encode()); return "
                        "len(self.encode()) (or a value derived from the codec)"
                    ),
                    path=ctx.path,
                    line=sizer.lineno,
                    col=sizer.col_offset,
                )


@register_rule
class MutableDefaultRule(Rule):
    code = "PROTO004"
    name = "mutable-default"
    description = (
        "mutable default argument ([], {}, set(), ...) — shared across calls, "
        "a classic source of state bleeding between nodes in one process"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and terminal_name(default.func) in _MUTABLE_CONSTRUCTORS
                )
                if mutable:
                    yield Finding(
                        code=self.code,
                        message=(
                            "mutable default argument is evaluated once and shared "
                            "across calls; default to None and create inside"
                        ),
                        path=ctx.path,
                        line=default.lineno,
                        col=default.col_offset,
                    )
