"""Rule plugins.  Importing this package registers every shipped rule."""

from repro.lint.rules import determinism, protocol  # noqa: F401

__all__ = ["determinism", "protocol"]
