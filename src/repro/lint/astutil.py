"""Small AST helpers shared by zuglint rules."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` access chains; ``None`` for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, if statically resolvable."""
    return dotted_name(node.func)


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a name/attribute chain (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Nearest function definition containing ``node``."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None
