"""SM001–SM006 — protocol state-machine & quorum-safety rules.

* **SM001** quorum-threshold provenance: a comparison gating a
  vote/prepare/commit/checkpoint set must flow from ``config.quorum`` /
  ``prepared_quorum`` / ``f``-derived expressions.  Raw integer literals,
  off-by-one ``>= f`` where ``f+1`` is meant, and locally re-derived
  ``2*f`` arithmetic bypassing ``BftConfig`` are flagged.
* **SM002** signer-set dedup: quorum counts must be over deduplicated
  signer ids; ``len(list)`` counting that admits duplicate votes from one
  replica is flagged.
* **SM003** phase-transition safety: phase flags (``prepared``,
  ``committed``, ``certified``) may only flip behind the matching quorum
  check — in-function or at every resolvable call site (telescoping with
  FLOW002's verify-before-mutate).
* **SM004** view/seq monotonicity: assignments to view/sequence state
  must be provably non-decreasing or sit on a view-change/state-sync
  sanctioned path.
* **SM005** integer-kind confusion: a lightweight kind lattice (seq vs
  view vs node-id vs wire-tag vs height) flags cross-kind comparison and
  additive arithmetic.
* **SM006** handler exception-escape: exceptions that can propagate out
  of an isinstance-dispatch path wedge the node on Byzantine input —
  the dual of PROTO003's swallowed-exception check.

All six anchor findings to structural identities (function key plus the
gate/attr/exception involved) so baselines survive line insertion and
file reordering.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import Finding, Project, Rule, register_rule
from repro.lint.sm.facts import (
    SM_PREFIXES,
    SmAnalysis,
    _SANCTIONED_FN_RE,
    sm_analysis,
)


def _scoped(analysis: SmAnalysis):
    for key in sorted(analysis.functions):
        facts = analysis.functions[key]
        if facts.fn.module.startswith(SM_PREFIXES):
            yield facts


def _is_quorum_gate(gate) -> bool:
    """The comparison is (at least trying to be) a quorum decision."""
    if not gate.counted.voteish:
        return False
    threshold = gate.threshold
    if threshold.kind in ("quorum", "f_plus", "bare_f", "derived"):
        return True
    return threshold.kind == "literal" and (threshold.value or 0) >= 2


@register_rule
class QuorumProvenanceRule(Rule):
    code = "SM001"
    name = "quorum-threshold-provenance"
    description = (
        "a comparison gating a vote/prepare/commit/checkpoint set does not "
        "flow from config.quorum/prepared_quorum/f-derived expressions — "
        "raw literals, off-by-one >= f, or locally re-derived 2*f "
        "arithmetic silently weakens BFT safety"
    )
    scope = "project"
    stage = "sm"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = sm_analysis(project)
        for facts in _scoped(analysis):
            fn = facts.fn
            for gate in facts.gates:
                if not gate.counted.voteish:
                    continue
                problem = self._problem(gate)
                if problem is None:
                    continue
                yield Finding(
                    code=self.code,
                    message=(
                        f"quorum gate in {fn.key} compares "
                        f"{gate.counted.label} {gate.op} "
                        f"{gate.threshold.label}: {problem}"
                    ),
                    path=fn.path,
                    line=gate.lineno,
                    col=gate.col,
                    anchor=f"{fn.key}#{gate.counted.label}{gate.op}{gate.threshold.label}",
                )

    @staticmethod
    def _problem(gate) -> str | None:
        threshold = gate.threshold
        if threshold.kind == "literal" and (threshold.value or 0) >= 2:
            return (
                "raw integer literal instead of a BftConfig-derived "
                "threshold; the bound silently diverges when n or f change"
            )
        if threshold.kind == "bare_f" and gate.op in (">=", "<"):
            return (
                "off-by-one against the bare fault bound f — f matching "
                "messages may all come from faulty replicas; f+1 is the "
                "smallest set guaranteed to contain a correct one"
            )
        if threshold.kind == "derived" and not gate.in_config:
            return (
                "locally re-derived quorum arithmetic bypasses BftConfig; "
                "use config.quorum/prepared_quorum so every site agrees"
            )
        return None


@register_rule
class SignerDedupRule(Rule):
    code = "SM002"
    name = "signer-set-dedup"
    description = (
        "a quorum decision counts a duplicable sequence (list/tuple) "
        "rather than a deduplicated signer set — one replica voting twice "
        "counts twice, so f faulty replicas can fake a quorum"
    )
    scope = "project"
    stage = "sm"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = sm_analysis(project)
        for facts in _scoped(analysis):
            fn = facts.fn
            for gate in facts.gates:
                if not _is_quorum_gate(gate):
                    continue
                if gate.counted.dedup != "duplicable":
                    continue
                yield Finding(
                    code=self.code,
                    message=(
                        f"quorum count in {fn.key} measures "
                        f"len({gate.counted.label}) over a list/tuple that "
                        "admits duplicate votes — count distinct signer ids "
                        "(set or per-sender dict) instead"
                    ),
                    path=fn.path,
                    line=gate.lineno,
                    col=gate.col,
                    anchor=f"{fn.key}#dedup:{gate.counted.label}",
                )


@register_rule
class PhaseTransitionRule(Rule):
    code = "SM003"
    name = "phase-transition-safety"
    description = (
        "a protocol phase flag (prepared/committed/certified) flips "
        "without the matching quorum check dominating it, in-function or "
        "at every resolvable call site — the replica advances phase on "
        "insufficient evidence"
    )
    scope = "project"
    stage = "sm"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = sm_analysis(project)
        for facts in _scoped(analysis):
            fn = facts.fn
            unguarded = [ps for ps in facts.phase_sets if not ps.guarded]
            if not unguarded:
                continue
            sites = analysis.reverse_calls.get(fn.key, [])
            is_root = fn.key in analysis.flow.dispatchers
            if not is_root:
                if sites and all(site.quorum_guarded for site in sites):
                    continue  # every caller ran the quorum check first
                if not sites:
                    continue  # opaque callers: stay silent, not wrong
            for ps in unguarded:
                yield Finding(
                    code=self.code,
                    message=(
                        f"{fn.key} sets .{ps.attr} = True without a "
                        "dominating quorum check"
                        + ("" if is_root else
                           " and at least one call site is unguarded")
                        + " — gate the transition on the matching "
                        "config.quorum comparison"
                    ),
                    path=fn.path,
                    line=ps.lineno,
                    col=ps.col,
                    anchor=f"{fn.key}#phase:{ps.attr}",
                )


@register_rule
class MonotonicityRule(Rule):
    code = "SM004"
    name = "view-seq-monotonicity"
    description = (
        "view/sequence state is assigned a value not provably "
        "non-decreasing, outside any view-change/state-sync sanctioned "
        "path — a replayed or Byzantine message could rewind the replica"
    )
    scope = "project"
    stage = "sm"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = sm_analysis(project)
        for facts in _scoped(analysis):
            fn = facts.fn
            if _SANCTIONED_FN_RE.search(fn.name):
                continue
            unproved = [ev for ev in facts.mono_events if not ev.proved]
            if not unproved:
                continue
            is_root = fn.key in analysis.flow.dispatchers
            sites = analysis.reverse_calls.get(fn.key, [])
            for ev in unproved:
                if not is_root:
                    if not sites:
                        continue  # opaque callers: stay silent
                    if all(ev.attr in site.compare_attrs for site in sites):
                        continue  # every caller compares the counter first
                yield Finding(
                    code=self.code,
                    message=(
                        f"{fn.key} assigns self.{ev.attr} a value not "
                        "provably >= its current value; guard with a "
                        "comparison or use max(), or move the write onto a "
                        "view-change/state-sync path"
                    ),
                    path=fn.path,
                    line=ev.lineno,
                    col=ev.col,
                    anchor=f"{fn.key}#mono:{ev.attr}",
                )


@register_rule
class KindConfusionRule(Rule):
    code = "SM005"
    name = "integer-kind-confusion"
    description = (
        "cross-kind integer comparison or arithmetic (seq vs view vs "
        "node-id vs wire-tag vs height) — the interpreter can't catch it, "
        "and such confusions silently corrupt protocol decisions"
    )
    scope = "project"
    stage = "sm"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = sm_analysis(project)
        for facts in _scoped(analysis):
            fn = facts.fn
            for conflict in facts.kind_conflicts:
                yield Finding(
                    code=self.code,
                    message=(
                        f"{fn.key} mixes integer kinds in a "
                        f"{conflict.operation}: {conflict.left} is "
                        f"{conflict.kinds[0]}-kinded but {conflict.right} "
                        f"is {conflict.kinds[1]}-kinded"
                    ),
                    path=fn.path,
                    line=conflict.lineno,
                    col=conflict.col,
                    anchor=f"{fn.key}#kind:{conflict.left}:{conflict.right}",
                )


@register_rule
class HandlerEscapeRule(Rule):
    code = "SM006"
    name = "handler-exception-escape"
    description = (
        "an exception raised on the message path can propagate out of an "
        "isinstance-dispatch handler — one malformed or Byzantine message "
        "wedges the whole node; catch it at the dispatch boundary and "
        "count it instead"
    )
    scope = "project"
    stage = "sm"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = sm_analysis(project)
        for root in sorted(analysis.escapes):
            facts = analysis.functions[root]
            fn = facts.fn
            for fact in analysis.escapes[root]:
                origin = analysis.functions.get(fact.origin)
                origin_line = fact.lineno
                where = (
                    f"{fact.origin} (line {origin_line})"
                    if origin is not None else fact.origin
                )
                yield Finding(
                    code=self.code,
                    message=(
                        f"{fact.exc} raised in {where} can escape the "
                        f"dispatch path {fn.key} — a hostile message "
                        "crashes the node instead of being counted and "
                        "dropped"
                    ),
                    path=fn.path,
                    line=fn.node.lineno,
                    col=fn.node.col_offset,
                    anchor=f"{fn.key}#{fact.exc}@{fact.origin}",
                )
