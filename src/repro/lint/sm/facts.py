"""Protocol state-machine & quorum-safety analysis (the ``sm`` stage).

PBFT-style safety rests on arithmetic nothing in Python enforces: commit
and checkpoint decisions need ``2f+1`` *distinct* signers, reply matching
needs ``f+1``, phase flags (`prepared`, `committed`, `certified`) may only
flip behind the matching quorum check, and view/sequence counters must
never move backwards outside a sanctioned view-change/state-sync path.
This module extracts those facts once per lint run — reusing the shared
flow call graph and summaries — and the SM rules in :mod:`.rules` report
on them.

The analysis follows the flow stage's soundness policy: everything
unresolvable stays unresolved and is treated as opaque, so the stage
prefers missed findings over false positives.
"""

from __future__ import annotations

import ast
import re
import weakref
from dataclasses import dataclass, field

from repro.lint.astutil import terminal_name
from repro.lint.engine import Project
from repro.lint.flow.callgraph import CallGraph, ClassInfo, FunctionInfo
from repro.lint.flow.summaries import (
    FlowAnalysis,
    _attr_chain,
    _walk_no_lambda,
    flow_analysis,
)

#: Modules the sm stage analyzes: the consensus core plus everything that
#: handles protocol messages or feeds the evidence chain.
SM_PREFIXES = ("repro.bft", "repro.core", "repro.export", "repro.chain", "repro.wire")

#: Packages whose ``raise`` statements SM006 treats as message-path
#: validation.  Raises authored in data-structure modules (``repro.chain``
#: accessors, ``repro.wire`` codecs) are precondition guards on arguments
#: the caller already bounds; flagging them drowns the real escapes.
RAISE_ORIGIN_PREFIXES = ("repro.bft", "repro.core", "repro.export")

#: Collection names that denote vote/endorsement sets for quorum purposes.
_VOTEISH_RE = re.compile(
    r"vote|prepare|commit|checkpoint|signer|signature|repl(?:y|ies)"
    r"|ack|view_change|vouch|endorse"
)

#: Phase flags a replica may only flip behind the matching quorum check.
PHASE_FLAGS = frozenset({"pre_prepared", "prepared", "committed", "certified"})

#: ``self.X`` attributes that must be non-decreasing (SM004).
_MONOTONIC_RE = re.compile(r"^view$|(?:^|_)(?:seq|sn|exec)$")

#: Function names sanctioned to rewind/reset monotonic state.
_SANCTIONED_FN_RE = re.compile(
    r"__init__|view_change|new_view|enter_view|fast_forward|sync|install|reset"
)

#: Integer-kind lattice for SM005 (name pattern -> kind).
_KIND_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("view", re.compile(r"^(?:new_|target_|old_)?view$|_view$")),
    ("seq", re.compile(r"^(?:seq|seqno|sn)$|_(?:seq|sn)$|(?:^|_)exec$")),
    ("tag", re.compile(r"^tag$|_tag$")),
    ("id", re.compile(r"_id$")),
    ("height", re.compile(r"^height$|_height$")),
)

_MAX_RAISE_PASSES = 12

_CATCH_ALL = frozenset({"*", "Exception", "BaseException"})


def _kind_of_name(name: str | None) -> str | None:
    if not name:
        return None
    for kind, pattern in _KIND_PATTERNS:
        if pattern.search(name):
            return kind
    return None


# -- threshold classification (SM001) -----------------------------------------


@dataclass(frozen=True)
class Threshold:
    """Provenance class of a quorum-gate threshold expression."""

    kind: str       # "quorum" | "f_plus" | "bare_f" | "literal" | "derived" | "unknown"
    label: str
    value: int | None = None


_UNKNOWN = Threshold("unknown", "?")


def _is_fault_operand(node: ast.AST) -> bool:
    """``f``-flavoured operand: the fault bound being re-derived locally."""
    if isinstance(node, ast.Name):
        return node.id == "f" or "fault" in node.id
    chain = _attr_chain(node)
    if chain:
        return chain[-1] == "f" or "fault" in chain[-1]
    return False


def classify_threshold(
    expr: ast.AST, locals_map: dict[str, ast.AST], depth: int = 0
) -> Threshold:
    """Where a quorum-comparison threshold flows from."""
    if depth > 6:
        return _UNKNOWN
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, int) and not isinstance(expr.value, bool):
            return Threshold("literal", repr(expr.value), expr.value)
        return _UNKNOWN
    chain = _attr_chain(expr)
    if chain is not None and isinstance(expr, (ast.Attribute, ast.Name)):
        last = chain[-1]
        dotted = ".".join(chain)
        if isinstance(expr, ast.Name) and expr.id in locals_map:
            # What the local is *bound to* beats what it is named: a local
            # ``quorum = 2 * self.config.f + 1`` is still re-derived.  The
            # label stays the local's name — it is what the source spells.
            inner = classify_threshold(locals_map[expr.id], locals_map, depth + 1)
            if inner.kind != "unknown":
                return Threshold(inner.kind, expr.id, inner.value)
        if "quorum" in last:
            return Threshold("quorum", dotted)
        if last == "f" and len(chain) >= 2:
            return Threshold("bare_f", dotted)
        if isinstance(expr, ast.Name) and expr.id == "f":
            return Threshold("bare_f", expr.id)
        return _UNKNOWN
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        left = classify_threshold(expr.left, locals_map, depth + 1)
        right = classify_threshold(expr.right, locals_map, depth + 1)
        sides = {left.kind, right.kind}
        if "derived" in sides:
            return Threshold("derived", f"{left.label} ± {right.label}")
        for main, const in ((left, expr.right), (right, expr.left)):
            if not (isinstance(const, ast.Constant) and isinstance(const.value, int)):
                continue
            if main.kind == "quorum":
                return Threshold("quorum", main.label)
            if main.kind == "bare_f":
                if isinstance(expr.op, ast.Add) and const.value >= 1:
                    return Threshold("f_plus", f"{main.label} + {const.value}")
                return Threshold("derived", f"{main.label} - {const.value}")
        return _UNKNOWN
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
        if _is_fault_operand(expr.left) or _is_fault_operand(expr.right):
            return Threshold("derived", "k * f")
        inner = classify_threshold(expr.left, locals_map, depth + 1)
        if inner.kind == "unknown":
            inner = classify_threshold(expr.right, locals_map, depth + 1)
        if inner.kind in ("quorum", "bare_f", "f_plus"):
            return Threshold("derived", f"k * {inner.label}")
        return _UNKNOWN
    return _UNKNOWN


# -- counted-collection classification (SM001/SM002) ---------------------------


@dataclass(frozen=True)
class Counted:
    """A vote-set count appearing on one side of a comparison."""

    label: str            # best-effort display name of the counted collection
    dedup: str            # "deduped" | "duplicable" | "unknown"
    voteish: bool


class _CollectionResolver:
    """Resolves the dedup discipline of a counted collection expression."""

    def __init__(
        self,
        graph: CallGraph,
        fn: FunctionInfo,
        locals_map: dict[str, ast.AST],
    ) -> None:
        self.graph = graph
        self.fn = fn
        self.locals_map = locals_map
        self.local_types = graph.local_types(fn)

    def resolve(self, expr: ast.AST, depth: int = 0) -> tuple[list[str], str]:
        """Returns (candidate names, dedup class) for a collection expr."""
        if depth > 6:
            return [], "unknown"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            names: list[str] = []
            if isinstance(expr, ast.SetComp):
                names, _ = self.resolve(expr.generators[0].iter, depth + 1)
            return names, "deduped"
        if isinstance(expr, ast.Dict):
            return [], "deduped"
        if isinstance(expr, (ast.List, ast.Tuple)):
            return [], "duplicable"
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            names, dedup = self.resolve(expr.generators[0].iter, depth + 1)
            return names, dedup
        if isinstance(expr, ast.Call):
            return self._resolve_call(expr, depth)
        if isinstance(expr, ast.Name):
            names = [expr.id]
            value = self.locals_map.get(expr.id)
            if value is not None:
                inner_names, dedup = self.resolve(value, depth + 1)
                return names + inner_names, dedup
            return names, "unknown"
        if isinstance(expr, ast.Attribute):
            return self._resolve_attr(expr)
        return [], "unknown"

    def _resolve_call(self, call: ast.Call, depth: int) -> tuple[list[str], str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset", "dict"):
                names: list[str] = []
                if call.args:
                    names, _ = self.resolve(call.args[0], depth + 1)
                return names, "deduped"
            if func.id in ("list", "tuple", "sorted") and call.args:
                return self.resolve(call.args[0], depth + 1)
            return [], "unknown"
        if isinstance(func, ast.Attribute):
            receiver_names, receiver_dedup = self.resolve(func.value, depth + 1)
            if func.attr in ("values", "keys", "items"):
                # Dict views over per-sender keys are deduplicated by key.
                return receiver_names, "deduped"
            if func.attr in ("setdefault", "get") and len(call.args) >= 2:
                _, default_dedup = self.resolve(call.args[1], depth + 1)
                return receiver_names, default_dedup
            if func.attr == "copy":
                return receiver_names, receiver_dedup
        return [], "unknown"

    def _resolve_attr(self, expr: ast.Attribute) -> tuple[list[str], str]:
        chain = _attr_chain(expr)
        names = [expr.attr] if chain is None else [part for part in chain if part != "self"]
        owner = self._owner_class(expr)
        if owner is not None:
            kind = _field_collection_kind(self.graph, owner, expr.attr)
            if kind in ("dict", "set", "frozenset"):
                return names, "deduped"
            if kind in ("list", "tuple"):
                return names, "duplicable"
        return names, "unknown"

    def _owner_class(self, expr: ast.Attribute) -> str | None:
        receiver = expr.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and self.fn.class_name is not None:
                return f"{self.fn.module}:{self.fn.class_name}"
            return self.local_types.get(receiver.id)
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and self.fn.class_name is not None):
            own = self.graph.classes.get(f"{self.fn.module}:{self.fn.class_name}")
            if own is not None:
                return self.graph._attr_type_with_bases(own, receiver.attr)
        return None


def _annotation_collection(annotation: ast.AST | None) -> str | None:
    """``tuple[Vote, ...]`` -> "tuple"; ``dict[str, Vote]`` -> "dict"."""
    root = annotation
    if isinstance(root, ast.Subscript):
        root = root.value
    if isinstance(root, ast.Name) and root.id in (
        "list", "tuple", "dict", "set", "frozenset", "List", "Tuple", "Dict",
        "Set", "FrozenSet",
    ):
        return root.id.lower()
    return None


def _value_collection(value: ast.AST | None) -> str | None:
    if isinstance(value, ast.Dict):
        return "dict"
    if isinstance(value, ast.List):
        return "list"
    if isinstance(value, (ast.Tuple,)):
        return "tuple"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.ListComp):
        return "list"
    if isinstance(value, ast.DictComp):
        return "dict"
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in (
            "dict", "list", "tuple", "set", "frozenset",
        ):
            return func.id
        # dataclasses.field(default_factory=dict) and friends.
        name = terminal_name(func)
        if name == "field":
            for kw in value.keywords:
                if kw.arg == "default_factory" and isinstance(kw.value, ast.Name):
                    if kw.value.id in ("dict", "list", "tuple", "set", "frozenset"):
                        return kw.value.id
    return None


def _field_collection_kind(graph: CallGraph, class_key: str, attr: str) -> str | None:
    """Collection kind of ``Class.attr``: annotation first, then assignments."""
    seen: set[str] = set()
    stack = [class_key]
    while stack:
        current = stack.pop(0)
        if current in seen:
            continue
        seen.add(current)
        cls = graph.classes.get(current)
        if cls is None:
            continue
        kind = _field_kind_on_class(cls)
        if attr in kind:
            return kind[attr]
        for base in cls.base_names:
            resolved = graph.resolve_class(cls.module, base)
            if resolved is not None:
                stack.append(resolved)
    return None


# Keyed by the AST node itself (weakly): id()-keyed caches are unsound
# here because collected nodes free their ids for unrelated classes.
_FIELD_KIND_CACHE: "weakref.WeakKeyDictionary[ast.AST, dict[str, str]]" = (
    weakref.WeakKeyDictionary()
)


def _field_kind_on_class(cls: ClassInfo) -> dict[str, str]:
    cached = _FIELD_KIND_CACHE.get(cls.node)
    if cached is not None:
        return cached
    kinds: dict[str, str] = {}
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotated = _annotation_collection(stmt.annotation)
            if annotated is not None:
                kinds.setdefault(stmt.target.id, annotated)
            elif stmt.value is not None:
                valued = _value_collection(stmt.value)
                if valued is not None:
                    kinds.setdefault(stmt.target.id, valued)
    for stmt in cls.node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            target: ast.AST | None = None
            value: ast.AST | None = None
            annotation: ast.AST | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            annotated = _annotation_collection(annotation)
            inferred = annotated or _value_collection(value)
            if inferred is not None:
                kinds.setdefault(target.attr, inferred)
    _FIELD_KIND_CACHE[cls.node] = kinds
    return kinds


# -- event records --------------------------------------------------------------


@dataclass(frozen=True)
class QuorumGate:
    """One comparison gating a counted set against a threshold."""

    lineno: int
    col: int
    op: str                 # normalized: count OP threshold; ">=", ">", "<", "<="
    counted: Counted
    threshold: Threshold
    in_config: bool         # inside a *Config class / config module


@dataclass(frozen=True)
class PhaseSet:
    """``X.prepared = True``-style phase-flag flip.

    ``guarded`` means *quorum*-dominated: a verify-style signature check
    alone is not sufficient evidence to advance phase (that asymmetry is
    the whole point of SM003 vs FLOW002).
    """

    attr: str
    lineno: int
    col: int
    guarded: bool


@dataclass(frozen=True)
class CallSite:
    """One resolvable call, with the guard state it executes under.

    ``guarded`` tracks verify-style guards (used by SM006 to discharge
    guard-conditional raises); ``quorum_guarded`` tracks quorum checks
    (used by SM003 to telescope phase transitions through helpers).
    """

    callee: str
    lineno: int
    guarded: bool
    quorum_guarded: bool
    compare_attrs: frozenset[str]
    caught: frozenset[str]


@dataclass(frozen=True)
class RaiseFact:
    """An exception that can leave the function it originates in."""

    exc: str
    origin: str             # function key of the raise statement
    lineno: int
    guard_conditional: bool  # only reachable when a verify-style guard fails


@dataclass(frozen=True)
class MonoEvent:
    """Assignment to monotonic state (``self.view``, ``self._next_seq``...)."""

    attr: str
    lineno: int
    col: int
    proved: bool            # provably non-decreasing in-function


@dataclass(frozen=True)
class KindConflict:
    """Cross-kind integer comparison/arithmetic (seq vs view vs id...)."""

    lineno: int
    col: int
    left: str
    right: str
    kinds: tuple[str, str]
    operation: str          # "compare" | "arith"


@dataclass
class SmFunction:
    """Per-function facts the SM rules consume."""

    fn: FunctionInfo
    gates: list[QuorumGate] = field(default_factory=list)
    phase_sets: list[PhaseSet] = field(default_factory=list)
    call_sites: list[CallSite] = field(default_factory=list)
    raises: list[RaiseFact] = field(default_factory=list)
    mono_events: list[MonoEvent] = field(default_factory=list)
    kind_conflicts: list[KindConflict] = field(default_factory=list)


# -- the branch-sensitive walker ------------------------------------------------


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_OP_TEXT = {ast.Gt: ">", ast.GtE: ">=", ast.Lt: "<", ast.LtE: "<="}


def _simple_locals(fn_node: ast.AST) -> dict[str, ast.AST]:
    """First simple assignment per local name (``x = expr``)."""
    locals_map: dict[str, ast.AST] = {}
    for node in _walk_no_lambda(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                locals_map.setdefault(target.id, node.value)
    return locals_map


class _SmWalker:
    """One branch-sensitive pass collecting every SM event in a function.

    Mirrors the flow stage's ``_GateWalker`` semantics — an ``if`` whose
    test contains a guard protects both branches; a guard-return pattern
    (``if not ok(): return``) leaves the continuation protected — but
    tracks *two* independent guard states:

    * ``verified`` — a verify/is_member-style signature check ran
      (FLOW002's notion; SM006 uses it to discharge raises).
    * ``quorum`` — a sanctioned quorum comparison ran, directly or inside
      a resolvable callee (``CommitCert.verify`` counting its signers).
      Only this state sanctions a phase-flag flip: a signature check
      alone is *not* evidence of 2f+1 agreement.
    """

    def __init__(
        self,
        fn: FunctionInfo,
        graph: CallGraph,
        flow: FlowAnalysis,
    ) -> None:
        self.fn = fn
        self.graph = graph
        self.flow = flow
        self.local_types = graph.local_types(fn)
        self.locals_map = _simple_locals(fn.node)
        self.resolver = _CollectionResolver(graph, fn, self.locals_map)
        self.facts = SmFunction(fn=fn)
        #: Function keys that perform a sanctioned quorum comparison,
        #: directly or transitively; injected by :func:`sm_analysis`
        #: before :meth:`run` (a fixpoint over the whole graph).
        self.quorum_performers: frozenset[str] = frozenset()
        self._caught: list[frozenset[str]] = []
        self._seen_compares: set[int] = set()
        #: >0 while walking a branch whose test contains a verify-style or
        #: quorum guard: raises there only fire when the guard fails, so a
        #: caller that already verified the message discharges them.
        self._guard_depth = 0

    # -- public ------------------------------------------------------------------

    def run(self) -> SmFunction:
        self._walk_block(self.fn.node.body, False, False, frozenset())
        self._scan_kinds()
        return self.facts

    def has_direct_quorum_gate(self) -> bool:
        """A sanctioned quorum comparison appears anywhere in the body."""
        for sub in _walk_no_lambda(self.fn.node):
            if isinstance(sub, ast.Compare):
                if self._sanctioned_gate(self._classify_compare(sub)):
                    return True
        return False

    def callee_keys(self) -> set[str]:
        """Every resolvable callee (for the quorum-performer fixpoint)."""
        out: set[str] = set()
        for sub in _walk_no_lambda(self.fn.node):
            if isinstance(sub, ast.Call):
                callee = self.graph.resolve_call(self.fn, sub, self.local_types)
                if callee is not None:
                    out.add(callee.key)
        return out

    # -- gates -------------------------------------------------------------------

    def _classify_compare(self, node: ast.Compare) -> QuorumGate | None:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            return None
        op_type = type(node.ops[0])
        if op_type not in _OP_TEXT:
            return None
        left, right = node.left, node.comparators[0]
        for count_side, thr_side, op in (
            (left, right, _OP_TEXT[op_type]),
            (right, left, _FLIP[_OP_TEXT[op_type]]),
        ):
            counted = self._counted(count_side)
            if counted is None:
                continue
            threshold = classify_threshold(thr_side, self.locals_map)
            in_config = bool(
                (self.fn.class_name or "").endswith("Config")
                or self.fn.module.endswith(".config")
            )
            return QuorumGate(
                lineno=node.lineno, col=node.col_offset, op=op,
                counted=counted, threshold=threshold, in_config=in_config,
            )
        return None

    def _counted(self, expr: ast.AST, depth: int = 0) -> Counted | None:
        """``len(X)`` / ``sum(.. for .. in X)`` / a local bound to one."""
        if depth > 4:
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id == "len" and len(expr.args) == 1:
                return self._collection_counted(expr.args[0])
            if expr.func.id == "sum" and expr.args:
                arg = expr.args[0]
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    return self._collection_counted(arg.generators[0].iter)
                return self._collection_counted(arg)
        if isinstance(expr, ast.Name):
            value = self.locals_map.get(expr.id)
            if value is not None:
                inner = self._counted(value, depth + 1)
                if inner is not None:
                    voteish = inner.voteish or bool(_VOTEISH_RE.search(expr.id))
                    return Counted(inner.label, inner.dedup, voteish)
        return None

    def _collection_counted(self, coll: ast.AST) -> Counted:
        names, dedup = self.resolver.resolve(coll)
        voteish = any(_VOTEISH_RE.search(name) for name in names)
        label = names[0] if names else "<collection>"
        return Counted(label, dedup, voteish)

    def _sanctioned_gate(self, gate: QuorumGate | None) -> bool:
        """A quorum comparison that counts as a phase-transition guard."""
        return gate is not None and gate.threshold.kind in ("quorum", "f_plus")

    def _record_compares(self, node: ast.AST) -> bool:
        """Classify every comparison under ``node``; True if any sanctions."""
        sanctioned = False
        for sub in _walk_no_lambda(node):
            if not isinstance(sub, ast.Compare) or id(sub) in self._seen_compares:
                continue
            self._seen_compares.add(id(sub))
            gate = self._classify_compare(sub)
            if gate is not None:
                self.facts.gates.append(gate)
                sanctioned = sanctioned or self._sanctioned_gate(gate)
        return sanctioned

    def _analyze_test(self, node: ast.AST) -> tuple[bool, bool]:
        """(verify-style guard present, quorum check present) under ``node``.

        Quorum credit for calls requires *resolving* the callee to a known
        quorum performer; an opaque ``message.verify(...)`` earns only the
        verify flag, never the quorum one.
        """
        quorum = self._record_compares(node)
        verify = False
        for call in _walk_no_lambda(node):
            if not isinstance(call, ast.Call):
                continue
            name = terminal_name(call.func)
            if name in ("verify", "is_member") or (name or "").startswith("verify_"):
                verify = True
            callee = self.graph.resolve_call(self.fn, call, self.local_types)
            if callee is not None:
                summary = self.flow.summaries.get(callee.key)
                if summary is not None and summary.performs_verify:
                    verify = True
                if callee.key in self.quorum_performers:
                    quorum = True
        return verify, quorum

    @staticmethod
    def _compare_attrs_in(node: ast.AST) -> frozenset[str]:
        """Terminal attr names compared under ``node`` (for SM004 guards)."""
        attrs: set[str] = set()
        for sub in _walk_no_lambda(node):
            if not isinstance(sub, ast.Compare):
                continue
            for side in [sub.left, *sub.comparators]:
                if isinstance(side, ast.Attribute):
                    attrs.add(side.attr)
        return frozenset(attrs)

    # -- statement walk ----------------------------------------------------------

    def _walk_block(
        self,
        stmts: list[ast.stmt],
        verified: bool,
        quorum: bool,
        cmp_attrs: frozenset[str],
    ) -> tuple[bool, bool, bool]:
        for stmt in stmts:
            verified, quorum, terminated = self._walk_stmt(
                stmt, verified, quorum, cmp_attrs)
            if terminated:
                return verified, quorum, True
        return verified, quorum, False

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        verified: bool,
        quorum: bool,
        cmp_attrs: frozenset[str],
    ) -> tuple[bool, bool, bool]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return verified, quorum, False
        if isinstance(stmt, ast.Raise):
            self._record_raise(stmt)
            return verified, quorum, True
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._analyze_test(stmt.value)
                self._scan_expr(stmt.value, verified, quorum, cmp_attrs)
            return verified, quorum, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return verified, quorum, True
        if isinstance(stmt, ast.If):
            verify_g, quorum_g = self._analyze_test(stmt.test)
            self._scan_expr(stmt.test, verified, quorum, cmp_attrs)
            branch_verified = verified or verify_g
            branch_quorum = quorum or quorum_g
            branch_attrs = cmp_attrs | self._compare_attrs_in(stmt.test)
            bump = 1 if (verify_g or quorum_g) else 0
            self._guard_depth += bump
            bv, bq, body_term = self._walk_block(
                stmt.body, branch_verified, branch_quorum, branch_attrs)
            ev, eq, else_term = self._walk_block(
                stmt.orelse, branch_verified, branch_quorum, branch_attrs)
            self._guard_depth -= bump
            if body_term and else_term:
                return branch_verified, branch_quorum, True
            if body_term:
                return ev, eq, False
            if else_term:
                return bv, bq, False
            return bv and ev, bq and eq, False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, verified, quorum, cmp_attrs)
            av, aq, _ = self._walk_block(stmt.body, verified, quorum, cmp_attrs)
            av2, aq2, _ = self._walk_block(stmt.orelse, av, aq, cmp_attrs)
            return av2, aq2, False
        if isinstance(stmt, ast.While):
            verify_g, quorum_g = self._analyze_test(stmt.test)
            self._scan_expr(stmt.test, verified, quorum, cmp_attrs)
            branch_attrs = cmp_attrs | self._compare_attrs_in(stmt.test)
            av, aq, _ = self._walk_block(
                stmt.body, verified or verify_g, quorum or quorum_g, branch_attrs)
            av2, aq2, _ = self._walk_block(stmt.orelse, av, aq, cmp_attrs)
            return av2, aq2, False
        if isinstance(stmt, ast.Try):
            caught: set[str] = set()
            for handler in stmt.handlers:
                caught.update(_handler_names(handler))
            self._caught.append(frozenset(caught))
            bv, bq, _ = self._walk_block(stmt.body, verified, quorum, cmp_attrs)
            self._caught.pop()
            handler_states = [
                self._walk_block(handler.body, verified, quorum, cmp_attrs)
                for handler in stmt.handlers
            ] or [(True, True, False)]
            ev, eq, _ = self._walk_block(stmt.orelse, bv, bq, cmp_attrs)
            merged_v = ev and all(v for v, _, _ in handler_states)
            merged_q = eq and all(q for _, q, _ in handler_states)
            fv, fq, final_term = self._walk_block(
                stmt.finalbody, merged_v, merged_q, cmp_attrs)
            return fv, fq, final_term and bool(stmt.finalbody)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, verified, quorum, cmp_attrs)
            return self._walk_block(stmt.body, verified, quorum, cmp_attrs)
        verify_g, quorum_g = self._analyze_test(stmt)
        self._scan_simple(stmt, verified, quorum, cmp_attrs)
        return verified or verify_g, quorum or quorum_g, False

    # -- event collection --------------------------------------------------------

    def _scan_simple(
        self,
        stmt: ast.stmt,
        verified: bool,
        quorum: bool,
        cmp_attrs: frozenset[str],
    ) -> None:
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target])
            value = stmt.value
            for target in targets:
                self._note_phase_set(target, value, quorum)
                self._note_mono(stmt, target, value, cmp_attrs)
        self._scan_expr(stmt, verified, quorum, cmp_attrs)

    def _scan_expr(
        self,
        node: ast.AST,
        verified: bool,
        quorum: bool,
        cmp_attrs: frozenset[str],
    ) -> None:
        self._record_compares(node)
        for sub in _walk_no_lambda(node):
            if isinstance(sub, ast.Call):
                callee = self.graph.resolve_call(self.fn, sub, self.local_types)
                if callee is not None:
                    self.facts.call_sites.append(CallSite(
                        callee=callee.key, lineno=sub.lineno, guarded=verified,
                        quorum_guarded=quorum, compare_attrs=cmp_attrs,
                        caught=self._caught_now(),
                    ))

    def _caught_now(self) -> frozenset[str]:
        merged: set[str] = set()
        for level in self._caught:
            merged.update(level)
        return frozenset(merged)

    def _note_phase_set(
        self, target: ast.AST, value: ast.AST | None, quorum: bool
    ) -> None:
        if not isinstance(target, ast.Attribute) or target.attr not in PHASE_FLAGS:
            return
        if not (isinstance(value, ast.Constant) and value.value is True):
            return
        self.facts.phase_sets.append(PhaseSet(
            attr=target.attr, lineno=target.lineno, col=target.col_offset,
            guarded=quorum,
        ))

    def _note_mono(
        self,
        stmt: ast.stmt,
        target: ast.AST,
        value: ast.AST | None,
        cmp_attrs: frozenset[str],
    ) -> None:
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        if not _MONOTONIC_RE.search(target.attr):
            return
        if isinstance(stmt, ast.AugAssign):
            proved = (isinstance(stmt.op, ast.Add)
                      and isinstance(value, ast.Constant)
                      and isinstance(value.value, int) and value.value >= 0)
        else:
            proved = (
                target.attr in cmp_attrs
                or self._nondecreasing(value, ("self", target.attr))
            )
        self.facts.mono_events.append(MonoEvent(
            attr=target.attr, lineno=target.lineno, col=target.col_offset,
            proved=proved,
        ))

    def _nondecreasing(
        self,
        value: ast.AST | None,
        target_chain: tuple[str, str],
        depth: int = 0,
    ) -> bool:
        """Value provably >= current ``self.X`` (max(), self.X + k, ...)."""
        if value is None or depth > 6:
            return False
        chain = _attr_chain(value)
        if chain is not None and tuple(chain) == target_chain:
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id == "max":
                return any(
                    self._nondecreasing(arg, target_chain, depth + 1)
                    for arg in value.args
                )
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
            for main, const in ((value.left, value.right),
                                (value.right, value.left)):
                if (isinstance(const, ast.Constant)
                        and isinstance(const.value, int) and const.value >= 0
                        and self._nondecreasing(main, target_chain, depth + 1)):
                    return True
        if isinstance(value, ast.Name):
            bound = self.locals_map.get(value.id)
            if bound is not None:
                return self._nondecreasing(bound, target_chain, depth + 1)
        return False

    def _record_raise(self, stmt: ast.Raise) -> None:
        # Escape depends on guard *branches*, not the verified state: a
        # raise after successful verification is content validation, not
        # a signature guard, and stays live for SM006.
        exc = stmt.exc
        if exc is None:
            return  # bare re-raise inside an except block
        name = terminal_name(exc.func) if isinstance(exc, ast.Call) else terminal_name(exc)
        if not name:
            return
        caught = self._caught_now()
        if name in caught or caught & _CATCH_ALL:
            return
        self.facts.raises.append(RaiseFact(
            exc=name, origin=self.fn.key, lineno=stmt.lineno,
            guard_conditional=self._guard_depth > 0,
        ))

    # -- kind lattice (SM005) ----------------------------------------------------

    def _scan_kinds(self) -> None:
        local_kinds: dict[str, str] = {}
        for name, value in self.locals_map.items():
            own = _kind_of_name(name)
            kind = own or self._kind_of(value, {})
            if kind is not None:
                local_kinds[name] = kind
        for node in _walk_no_lambda(self.fn.node):
            if isinstance(node, ast.Compare):
                if len(node.ops) != 1 or len(node.comparators) != 1:
                    continue
                if not isinstance(node.ops[0], (
                        ast.Eq, ast.NotEq, ast.Gt, ast.GtE, ast.Lt, ast.LtE)):
                    continue
                self._note_conflict(
                    node, node.left, node.comparators[0], local_kinds, "compare")
            elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                self._note_conflict(
                    node, node.left, node.right, local_kinds, "arith")

    def _note_conflict(
        self,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        local_kinds: dict[str, str],
        operation: str,
    ) -> None:
        lk = self._kind_of(left, local_kinds)
        rk = self._kind_of(right, local_kinds)
        if lk is None or rk is None or lk == rk:
            return
        self.facts.kind_conflicts.append(KindConflict(
            lineno=node.lineno, col=node.col_offset,
            left=_describe(left), right=_describe(right),
            kinds=(lk, rk), operation=operation,
        ))

    def _kind_of(
        self, expr: ast.AST | None, local_kinds: dict[str, str], depth: int = 0
    ) -> str | None:
        if expr is None or depth > 4:
            return None
        if isinstance(expr, ast.Name):
            return local_kinds.get(expr.id) or _kind_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return _kind_of_name(expr.attr)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
            lk = self._kind_of(expr.left, local_kinds, depth + 1)
            rk = self._kind_of(expr.right, local_kinds, depth + 1)
            if lk is not None and rk is not None and lk != rk:
                return None  # already reported as its own conflict
            return lk or rk
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("max", "min") and expr.args:
                kinds = {
                    self._kind_of(arg, local_kinds, depth + 1)
                    for arg in expr.args
                }
                kinds.discard(None)
                if len(kinds) == 1:
                    return kinds.pop()
        return None


def _describe(node: ast.AST) -> str:
    chain = _attr_chain(node)
    if chain is not None:
        return ".".join(chain)
    if isinstance(node, ast.Constant):
        return repr(node.value)
    return type(node).__name__.lower()


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return {"*"}
    names: set[str] = set()
    types = (handler.type.elts
             if isinstance(handler.type, ast.Tuple) else [handler.type])
    for node in types:
        name = terminal_name(node)
        if name:
            names.add(name)
        else:
            names.add("*")
    return names


# -- machine extraction ---------------------------------------------------------


@dataclass
class Machine:
    """Extracted per-replica protocol machine: message type -> handler."""

    class_key: str
    dispatcher: str                                  # dispatcher function key
    handlers: dict[str, str] = field(default_factory=dict)   # msg type -> fn key
    phase_sets: dict[str, list[PhaseSet]] = field(default_factory=dict)


def extract_machines(
    graph: CallGraph,
    flow: FlowAnalysis,
    functions: dict[str, SmFunction],
) -> dict[str, Machine]:
    """Phase graphs for every isinstance-dispatching replica class."""
    machines: dict[str, Machine] = {}
    for key, param in sorted(flow.dispatchers.items()):
        fn = graph.functions.get(key)
        if fn is None or fn.class_name is None:
            continue
        if not fn.module.startswith(SM_PREFIXES):
            continue
        class_key = f"{fn.module}:{fn.class_name}"
        machine = Machine(class_key=class_key, dispatcher=key)
        local_types = graph.local_types(fn)
        for node in _walk_no_lambda(fn.node):
            if not isinstance(node, ast.If):
                continue
            types = _isinstance_types(node.test, param)
            if not types:
                continue
            for sub in _walk_no_lambda(node):
                if not isinstance(sub, ast.Call):
                    continue
                callee = graph.resolve_call(fn, sub, local_types)
                if callee is None or callee.key == key:
                    continue
                for type_name in types:
                    machine.handlers.setdefault(type_name, callee.key)
        for handler_key in set(machine.handlers.values()) | {key}:
            facts = functions.get(handler_key)
            if facts is not None and facts.phase_sets:
                machine.phase_sets[handler_key] = list(facts.phase_sets)
        if machine.handlers:
            machines[class_key] = machine
    return machines


def _isinstance_types(test: ast.AST, param: str) -> list[str]:
    for node in _walk_no_lambda(test):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2):
            continue
        target, types = node.args
        if not (isinstance(target, ast.Name) and target.id == param):
            continue
        elts = types.elts if isinstance(types, ast.Tuple) else [types]
        names = [terminal_name(elt) for elt in elts]
        return [name for name in names if name]
    return []


# -- the analysis ---------------------------------------------------------------


@dataclass
class SmAnalysis:
    """Everything the SM rules need, computed once per lint run."""

    graph: CallGraph
    flow: FlowAnalysis
    functions: dict[str, SmFunction]
    reverse_calls: dict[str, list[CallSite]]     # callee key -> caller sites
    callers_of: dict[str, list[str]]             # callee key -> caller keys
    escapes: dict[str, list[RaiseFact]]          # dispatch root -> escaping
    machines: dict[str, Machine]


def _analyzable(fn: FunctionInfo) -> bool:
    return fn.module.startswith("repro.")


def sm_analysis(project: Project) -> SmAnalysis:
    """Build (or fetch the cached) state-machine analysis for this run."""
    analysis = project.cache.get("sm.analysis")
    if analysis is None:
        flow = flow_analysis(project)
        graph = flow.graph
        walkers: dict[str, _SmWalker] = {}
        for key in sorted(graph.functions):
            fn = graph.functions[key]
            if _analyzable(fn):
                walkers[key] = _SmWalker(fn, graph, flow)
        performers = _quorum_performers(walkers)
        functions: dict[str, SmFunction] = {}
        for key, walker in walkers.items():
            walker.quorum_performers = performers
            functions[key] = walker.run()
        reverse: dict[str, list[CallSite]] = {}
        callers: dict[str, list[str]] = {}
        for key, facts in functions.items():
            for site in facts.call_sites:
                reverse.setdefault(site.callee, []).append(site)
                callers.setdefault(site.callee, []).append(key)
        escapes = _propagate_raises(flow, functions)
        machines = extract_machines(graph, flow, functions)
        analysis = SmAnalysis(
            graph=graph, flow=flow, functions=functions,
            reverse_calls=reverse, callers_of=callers,
            escapes=escapes, machines=machines,
        )
        project.cache["sm.analysis"] = analysis
    return analysis


def _quorum_performers(walkers: dict[str, _SmWalker]) -> frozenset[str]:
    """Functions that run a sanctioned quorum check, transitively.

    Direct: the body contains a comparison against config.quorum-flavoured
    or ``f + k`` thresholds.  Transitive: any resolvable callee does
    (``CommitCert.verify`` counting its signers credits every caller) —
    mirroring how the flow stage's ``performs_verify`` telescopes.
    """
    performers = {
        key for key, walker in walkers.items()
        if walker.has_direct_quorum_gate()
    }
    edges = {key: walker.callee_keys() for key, walker in walkers.items()}
    changed = True
    while changed:
        changed = False
        for key, callees in edges.items():
            if key not in performers and callees & performers:
                performers.add(key)
                changed = True
    return frozenset(performers)


def _propagate_raises(
    flow: FlowAnalysis, functions: dict[str, SmFunction]
) -> dict[str, list[RaiseFact]]:
    """Fixpoint: which raise facts can escape each function.

    A callee's fact is discharged at a call site when the surrounding
    ``try`` catches the exception, or when the fact is guard-conditional
    (only reachable on verification failure) and the site runs in
    verified state.  Dispatch roots keep whatever survives.
    """
    facts: dict[str, frozenset[RaiseFact]] = {
        key: frozenset(fn.raises) for key, fn in functions.items()
    }
    for _ in range(_MAX_RAISE_PASSES):
        changed = False
        for key in sorted(functions):
            merged = set(facts[key]) | set(functions[key].raises)
            for site in functions[key].call_sites:
                incoming = facts.get(site.callee)
                if not incoming:
                    continue
                for fact in incoming:
                    if fact.exc in site.caught or site.caught & _CATCH_ALL:
                        continue
                    if fact.guard_conditional and site.guarded:
                        continue
                    merged.add(fact)
            new = frozenset(merged)
            if new != facts[key]:
                facts[key] = new
                changed = True
        if not changed:
            break
    escapes: dict[str, list[RaiseFact]] = {}
    for root in sorted(flow.dispatchers):
        fn = functions.get(root)
        if fn is None or not fn.fn.module.startswith(RAISE_ORIGIN_PREFIXES):
            continue
        relevant = [
            fact for fact in facts.get(root, frozenset())
            if _origin_module(fact, functions).startswith(RAISE_ORIGIN_PREFIXES)
        ]
        if relevant:
            unique = {(f.exc, f.origin): f for f in relevant}
            escapes[root] = [
                unique[k] for k in sorted(unique)
            ]
    return escapes


def _origin_module(fact: RaiseFact, functions: dict[str, SmFunction]) -> str:
    origin = functions.get(fact.origin)
    return origin.fn.module if origin is not None else ""
