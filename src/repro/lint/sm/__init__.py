"""Protocol state-machine & quorum-safety analysis stage (``sm``).

Importing this package registers SM001–SM006.  The heavy lifting lives
in :mod:`repro.lint.sm.facts`, which reuses the flow stage's shared call
graph and summaries (one build per lint invocation).
"""

from . import rules  # noqa: F401  (import for side effect: rule registration)
