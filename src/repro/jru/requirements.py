"""IEC 62625-style requirement checks.

§V-B, "Comparison to JRU Requirements": a data recorder has to prevent
data from being deleted, changed, or overwritten; ensure data integrity;
offer data extraction; and store events within 500 ms of arrival at a rate
of 10 events per second.  ``check_requirements`` evaluates a measured
scenario result against these bounds and produces the report used by the
JRU-requirements benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenarios.cluster import ScenarioResult
from repro.sim.resources import CostModel


@dataclass(frozen=True)
class JruRequirements:
    """The numeric requirements the paper cites."""

    store_deadline_s: float = 0.500
    min_events_per_s: float = 10.0
    max_shared_cpu_fraction: float = 0.15  # the paper's shared-device target


@dataclass
class RequirementCheck:
    name: str
    passed: bool
    measured: str
    required: str


@dataclass
class RequirementReport:
    checks: list[RequirementCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def add(self, name: str, passed: bool, measured: str, required: str) -> None:
        self.checks.append(RequirementCheck(name, passed, measured, required))

    def lines(self) -> list[str]:
        out = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            out.append(f"[{status}] {check.name}: measured {check.measured} (required {check.required})")
        return out


def check_requirements(
    result: ScenarioResult,
    requirements: JruRequirements | None = None,
    model: CostModel | None = None,
    persist_payload_bytes: int = 8192,
) -> RequirementReport:
    """Validate one measured run against the JRU requirements.

    The storage deadline covers ordering latency plus the block persist
    time (the paper adds 5.03 ms for writing an 8 kB-payload block).
    """
    requirements = requirements or JruRequirements()
    model = model or CostModel()
    report = RequirementReport()

    events_per_s = 1.0 / result.cycle_time_s
    report.add(
        "event rate",
        events_per_s >= requirements.min_events_per_s,
        f"{events_per_s:.1f} events/s",
        f">= {requirements.min_events_per_s:.0f} events/s",
    )

    block_bytes = persist_payload_bytes * 10  # block of 10 requests
    persist_s = model.disk_write_cost(block_bytes)
    store_latency = result.max_latency_s + persist_s
    report.add(
        "store deadline",
        store_latency <= requirements.store_deadline_s,
        f"{store_latency * 1000:.1f} ms (order {result.max_latency_s * 1000:.1f} + persist {persist_s * 1000:.2f})",
        f"<= {requirements.store_deadline_s * 1000:.0f} ms",
    )

    report.add(
        "no data loss",
        result.requests_logged >= result.requests_expected - 1,
        f"{result.requests_logged}/{result.requests_expected} requests logged",
        "every bus cycle logged",
    )

    report.add(
        "shared CPU budget",
        result.cpu_utilization <= requirements.max_shared_cpu_fraction,
        f"{result.cpu_utilization * 100:.1f} % of total CPU",
        f"<= {requirements.max_shared_cpu_fraction * 100:.0f} %",
    )

    return report
