"""Braband-style reliability analysis of a distributed JRU.

Braband & Schäbe (2021) argue via crash statistics that a JRU replicated
across commodity nodes reaches the reliability of the hardened device: the
probability that *all* replicas are destroyed in an accident is low enough
that at least one record survives.  This module reproduces that style of
analysis: per-node destruction probabilities (possibly positionally
correlated along the train), the survival probability of at least one (or
k) records, and the node count needed for a target.
"""

from __future__ import annotations

import math

from repro.util.errors import ConfigError


def survival_probability(
    destroy_probs: list[float],
    min_survivors: int = 1,
    correlation: float = 0.0,
) -> float:
    """Probability that at least ``min_survivors`` node records survive.

    ``destroy_probs[i]`` is node i's destruction probability in the
    incident.  ``correlation`` in [0, 1) mixes in a common-cause event that
    destroys every node at once (e.g. a fire spanning the whole train):
    with probability ``correlation`` all nodes fail together, otherwise
    failures are independent — a standard beta-factor common-cause model.
    """
    if not destroy_probs:
        raise ConfigError("need at least one node")
    if not 0 <= correlation < 1:
        raise ConfigError("correlation must be in [0, 1)")
    for p in destroy_probs:
        if not 0 <= p <= 1:
            raise ConfigError(f"probability {p} outside [0, 1]")
    if not 1 <= min_survivors <= len(destroy_probs):
        raise ConfigError("min_survivors outside [1, n]")

    n = len(destroy_probs)
    # P(at least k survive | independent) via dynamic programming over nodes.
    # dp[j] = probability that exactly j nodes survived so far.
    dp = [1.0] + [0.0] * n
    for p_destroy in destroy_probs:
        p_survive = 1.0 - p_destroy
        nxt = [0.0] * (n + 1)
        for j, prob in enumerate(dp):
            if prob == 0.0:
                continue
            nxt[j] += prob * p_destroy
            nxt[j + 1] += prob * p_survive
        dp = nxt
    independent = sum(dp[min_survivors:])
    return (1.0 - correlation) * independent  # common-cause event kills all


def data_loss_probability(
    per_node_destroy: float,
    n_nodes: int,
    correlation: float = 0.0,
) -> float:
    """Probability that *no* record survives (homogeneous nodes)."""
    if n_nodes < 1:
        raise ConfigError("need at least one node")
    survive = survival_probability([per_node_destroy] * n_nodes, 1, correlation)
    return 1.0 - survive


def required_nodes_for_target(
    per_node_destroy: float,
    target_loss_prob: float,
    correlation: float = 0.0,
    max_nodes: int = 64,
) -> int | None:
    """Smallest node count whose data-loss probability meets the target.

    Returns None when the target is unreachable (e.g. the common-cause
    floor ``correlation`` already exceeds it) within ``max_nodes``.
    """
    if not 0 < target_loss_prob < 1:
        raise ConfigError("target must be in (0, 1)")
    for n in range(1, max_nodes + 1):
        if data_loss_probability(per_node_destroy, n, correlation) <= target_loss_prob:
            return n
    return None


def mtbf_availability(mtbf_hours: float, mttr_hours: float) -> float:
    """Steady-state availability of one commodity node.

    Braband et al. assume commodity hardware with an MTBF of 20 000 h;
    combined with a repair time this gives the per-node availability used
    when sizing the replica group (a failed node is simply absent until
    the next maintenance).
    """
    if mtbf_hours <= 0 or mttr_hours < 0:
        raise ConfigError("MTBF must be positive and MTTR non-negative")
    return mtbf_hours / (mtbf_hours + mttr_hours)


def group_availability(node_availability: float, n: int, quorum: int) -> float:
    """Probability that at least ``quorum`` of ``n`` nodes are operational."""
    if not 0 <= node_availability <= 1:
        raise ConfigError("availability must be in [0, 1]")
    if not 1 <= quorum <= n:
        raise ConfigError("quorum outside [1, n]")
    total = 0.0
    for k in range(quorum, n + 1):
        total += (
            math.comb(n, k)
            * node_availability**k
            * (1 - node_availability) ** (n - k)
        )
    return total
