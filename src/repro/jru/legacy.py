"""The centralized JRU that ZugChain replaces.

A hardened device with a capacity-limited ring buffer in flash memory
(§II-A): events overwrite the oldest entries once the buffer is full, and
extraction requires physical access by authorized personnel.  The model
exists as the comparison point for the accident scenarios (a single copy
that is lost is lost entirely) and for the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import sha256
from repro.util.errors import ConfigError, ProtocolError
from repro.wire.messages import Request


@dataclass(frozen=True)
class LegacyJruConfig:
    """Sizing of the hardened recorder."""

    ring_capacity: int = 4096     # entries before overwrite
    extraction_key: str = "physical-key-1"


@dataclass
class _RingEntry:
    request: Request
    checksum: bytes


class LegacyJru:
    """Centralized recorder: one copy, ring buffer, keyed extraction."""

    def __init__(self, config: LegacyJruConfig | None = None) -> None:
        self.config = config or LegacyJruConfig()
        if self.config.ring_capacity < 1:
            raise ConfigError("ring capacity must be >= 1")
        self._ring: list[_RingEntry] = []
        self._write_pos = 0
        self.destroyed = False
        self.records_written = 0
        self.records_overwritten = 0

    def record(self, request: Request) -> None:
        """Log one event; overwrites the oldest once the ring is full."""
        if self.destroyed:
            return  # a destroyed device silently records nothing
        entry = _RingEntry(request=request, checksum=sha256(request.encode()))
        if len(self._ring) < self.config.ring_capacity:
            self._ring.append(entry)
        else:
            self._ring[self._write_pos] = entry
            self._write_pos = (self._write_pos + 1) % self.config.ring_capacity
            self.records_overwritten += 1
        self.records_written += 1

    def destroy(self) -> None:
        """The accident case: the device is damaged beyond recovery."""
        self.destroyed = True
        self._ring.clear()

    def tamper(self, index: int, forged: Request) -> None:
        """Physical tampering: silently replace one entry *and* its checksum.

        The integrity protection is a device-local checksum — an attacker
        with physical access recomputes it, which is exactly the weakness
        blockchain-based logging removes.
        """
        if 0 <= index < len(self._ring):
            self._ring[index] = _RingEntry(request=forged, checksum=sha256(forged.encode()))

    def extract(self, key: str) -> list[Request]:
        """Keyed extraction of the surviving buffer contents."""
        if key != self.config.extraction_key:
            raise ProtocolError("extraction requires the physical key")
        if self.destroyed:
            return []
        ordered = self._ring[self._write_pos:] + self._ring[: self._write_pos]
        out = []
        for entry in ordered:
            if entry.checksum != sha256(entry.request.encode()):
                continue  # bit rot detected by the checksum
            out.append(entry.request)
        return out

    @property
    def stored_count(self) -> int:
        return len(self._ring)
