"""JRU domain layer: legacy recorder model, requirements, reliability math.

* :mod:`repro.jru.legacy`       — the centralized JRU being replaced: ring
  buffer in flash, single point of failure, physical-key extraction;
* :mod:`repro.jru.requirements` — IEC 62625-style requirement checks the
  evaluation validates ZugChain against (§V-B "Comparison to JRU
  Requirements");
* :mod:`repro.jru.reliability`  — the Braband-et-al.-style survival
  analysis that justifies replacing one hardened device with replicated
  commodity nodes.
"""

from repro.jru.legacy import LegacyJru, LegacyJruConfig
from repro.jru.requirements import JruRequirements, RequirementReport, check_requirements
from repro.jru.reliability import (
    survival_probability,
    data_loss_probability,
    required_nodes_for_target,
    mtbf_availability,
)

__all__ = [
    "LegacyJru",
    "LegacyJruConfig",
    "JruRequirements",
    "RequirementReport",
    "check_requirements",
    "survival_probability",
    "data_loss_probability",
    "required_nodes_for_target",
    "mtbf_availability",
]
