"""Benchmark-trajectory recorder: perf claims that outlive their PR.

Every performance claim in this repository used to die with the PR that
made it — there was no artifact to diff the next optimization against.
:class:`BenchRecorder` fixes that: it collects wall-time samples per
suite (mean / median / p99 + throughput), plus explicit before/after
speedup entries for A/B claims like "the parallel sweep is ≥2× faster at
``--jobs 4``", and writes one ``BENCH_<date>.json`` artifact with a
stable schema that future sessions can extend and compare.

The recorder never reads a clock itself — callers inject one (use
:func:`repro.runtime.wallclock.wall_timer` in production, a fake in
tests), so this module stays clean under the determinism linter and the
schema is testable byte for byte.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Callable

SCHEMA = "zugchain-bench/1"


def _percentile(samples: list[float], q: float) -> float:
    """Upper-interpolation percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def summarize(samples: list[float]) -> dict[str, float]:
    """mean/median/p99/min/max of wall-time samples (seconds)."""
    if not samples:
        return {"count": 0, "mean_s": 0.0, "median_s": 0.0,
                "p99_s": 0.0, "min_s": 0.0, "max_s": 0.0}
    return {
        "count": len(samples),
        "mean_s": sum(samples) / len(samples),
        "median_s": _percentile(samples, 0.5),
        "p99_s": _percentile(samples, 0.99),
        "min_s": min(samples),
        "max_s": max(samples),
    }


class BenchRecorder:
    """Collects suite timings and speedup entries, writes one artifact."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.suites: dict[str, dict] = {}
        self.speedups: dict[str, dict] = {}

    # -- timing ----------------------------------------------------------------

    def time_call(self, fn: Callable[[], object]) -> tuple[float, object]:
        """Run ``fn`` once, returning (wall seconds, its result)."""
        start = self._clock()
        value = fn()
        return self._clock() - start, value

    def record_suite(
        self,
        name: str,
        samples_s: list[float],
        *,
        units: int = 0,
        sim_seconds: float = 0.0,
        jobs: int = 1,
        extra: dict | None = None,
    ) -> dict:
        """Record one suite's wall-time samples.

        ``units`` is the work count behind each sample (sweep points,
        requests, ...) and drives the throughput figure; ``sim_seconds``
        is the simulated time covered per sample, giving the
        sim-seconds-per-wall-second ratio the DES cares about.
        """
        stats = summarize(samples_s)
        mean = stats["mean_s"]
        entry = {
            **stats,
            "jobs": jobs,
            "units": units,
            "sim_seconds": sim_seconds,
            "throughput_units_per_s": (units / mean) if mean > 0 else 0.0,
            "sim_speedup": (sim_seconds / mean) if mean > 0 else 0.0,
        }
        if extra:
            entry.update(extra)
        self.suites[name] = entry
        return entry

    def record_speedup(
        self,
        name: str,
        *,
        before_s: float,
        after_s: float,
        jobs: int,
        extra: dict | None = None,
    ) -> dict:
        """Record a before/after wall-time comparison (e.g. serial vs --jobs N)."""
        entry = {
            "before_s": before_s,
            "after_s": after_s,
            "jobs": jobs,
            "speedup": (before_s / after_s) if after_s > 0 else 0.0,
        }
        if extra:
            entry.update(extra)
        self.speedups[name] = entry
        return entry

    # -- output -----------------------------------------------------------------

    def preload(self, path: str) -> None:
        """Adopt suites/speedups from an existing artifact at ``path``.

        Entries recorded in this session win over preloaded ones, so a
        partial run (``repro bench --suite obs``) extends the day's
        artifact instead of dropping the suites it didn't re-measure.
        Missing, unreadable, or foreign-schema files are ignored.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(previous, dict) or previous.get("schema") != SCHEMA:
            return
        for name, entry in previous.get("suites", {}).items():
            self.suites.setdefault(name, entry)
        for name, entry in previous.get("speedups", {}).items():
            self.speedups.setdefault(name, entry)

    def to_dict(self, date: str) -> dict:
        return {
            "schema": SCHEMA,
            "date": date,
            "host": {
                "cpu_count": os.cpu_count() or 1,
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "suites": {name: self.suites[name] for name in sorted(self.suites)},
            "speedups": {name: self.speedups[name] for name in sorted(self.speedups)},
        }

    def write(self, path: str, date: str) -> str:
        """Write the artifact to ``path`` (rendered with sorted keys)."""
        payload = json.dumps(self.to_dict(date), sort_keys=True, indent=2) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return path


def default_bench_path(date: str, directory: str = ".") -> str:
    """The conventional artifact name: ``BENCH_<date>.json``."""
    return os.path.join(directory, f"BENCH_{date}.json")
