"""The picklable per-point result envelope workers hand back.

A worker process cannot return the live :class:`~repro.scenarios.SimulatedCluster`
(kernels, networks, and tracers do not belong on a pipe), so it returns a
:class:`PointEnvelope`: the digested :class:`~repro.scenarios.ScenarioResult`
(plain scalars and dicts — including the aggregated cluster counters and,
for traced points, the per-phase latency breakdown), the chain head hash
for determinism checks, and optionally the raw trace events.

Trace payloads are the one potentially huge field, so they are *consumed*,
not retained: :meth:`PointEnvelope.consume_trace` hands the events out
exactly once and drops the reference, and the point cache strips them on
insert — a cached sweep suite never holds a full trace per point alive
(the failure mode of the old ``lru_cache`` memoization, which pinned
every result for the whole benchmark session).

``tests/sweep/test_pickle_roundtrip.py`` guards every field of the
envelope (and of ``ScenarioResult``/``ClusterMetrics``/phase snapshots)
against silently unpicklable additions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.obs.trace import TraceEvent
from repro.scenarios import ScenarioResult


@dataclass
class PointEnvelope:
    """One point's results, safe to pickle across a process boundary."""

    index: int                         # position in the spec's canonical order
    point_hash: str                    # SweepPoint.point_hash() of the input
    result: ScenarioResult
    head_hash: str = ""                # chain head block hash (hex), "" if empty chain
    chain_height: int = 0
    # Per-point trace shard: frozen scalar dataclasses, picklable by
    # construction (now carrying causal idx/lamport/cause annotations).
    trace_events: list[TraceEvent] | None = None

    def consume_trace(self) -> list[TraceEvent] | None:
        """Return the recorded trace events once, dropping the reference."""
        events, self.trace_events = self.trace_events, None
        return events

    def drop_trace(self) -> None:
        self.trace_events = None

    def to_dict(self) -> dict:
        """Deterministic plain-dict rendering (trace payload excluded)."""
        return {
            "index": self.index,
            "point_hash": self.point_hash,
            "head_hash": self.head_hash,
            "chain_height": self.chain_height,
            "result": asdict(self.result),
        }


@dataclass
class SweepRunStats:
    """Execution bookkeeping the merge attaches to a finished sweep."""

    executed: int = 0                  # points actually simulated this run
    cached: int = 0                    # points served from the point cache
    completion_order: list[int] = field(default_factory=list)
