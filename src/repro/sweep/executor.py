"""Point executors: serial in-process and sharded across worker processes.

Both executors consume ``(index, point)`` work items and produce
:class:`~repro.sweep.envelope.PointEnvelope` results *in whatever order
they complete* — ordering is explicitly not an executor concern, the
engine's merge reassembles canonical order from the envelope indexes.
That split is what makes the two execution modes provably equivalent:
each point runs the identical module-level :func:`run_point` function
from the identical frozen :class:`~repro.sweep.model.SweepPoint`, and
the only difference is which process hosts the call.

The process executor shards *by point*: each worker builds its own
:class:`~repro.scenarios.SimulatedCluster` from the point's seed, so no
simulation state ever crosses a process boundary — only the frozen
point in and the picklable envelope out.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Iterable, Sequence

from repro.obs.trace import RecordingTracer
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.sweep.envelope import PointEnvelope
from repro.sweep.model import SweepPoint
from repro.util.errors import ConfigError


def run_point(index: int, point: SweepPoint, keep_trace: bool = False) -> PointEnvelope:
    """Run one measurement point and envelope its results.

    This is the single execution path for every mode — serial, process
    pool, cache refill — so parallel and serial sweeps of one spec are
    the same computation by construction.
    """
    tracer = RecordingTracer() if point.trace else None
    cluster = SimulatedCluster(
        ScenarioConfig(
            system=point.system,
            cycle_time_s=point.cycle_time_s,
            payload_bytes=point.payload_bytes,
            seed=point.seed,
            bft_backend=point.bft_backend,
        ),
        tracer=tracer,
    )
    result = cluster.run(duration_s=point.duration_s, warmup_s=point.warmup_s)
    chain = cluster.nodes[cluster.ids[0]].chain
    head_hash = chain.head.block_hash.hex() if chain.height > 0 else ""
    events = None
    if tracer is not None and keep_trace:
        events = list(tracer.iter_events())
    return PointEnvelope(
        index=index,
        point_hash=point.point_hash(),
        result=result,
        head_hash=head_hash,
        chain_height=chain.height,
        trace_events=events,
    )


class SerialExecutor:
    """Run every point in this process, in spec order."""

    jobs = 1

    def run(self, items: Sequence[tuple[int, SweepPoint]],
            keep_trace: bool = False) -> Iterable[PointEnvelope]:
        for index, point in items:
            yield run_point(index, point, keep_trace)


class ProcessExecutor:
    """Shard points across a :class:`ProcessPoolExecutor`.

    Results are yielded as workers finish — deliberately *not* in
    submission order, so the engine's merge is exercised on every
    parallel run rather than only when the scheduler happens to reorder.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigError(f"need at least one worker, got jobs={jobs}")
        self.jobs = jobs

    def run(self, items: Sequence[tuple[int, SweepPoint]],
            keep_trace: bool = False) -> Iterable[PointEnvelope]:
        if not items:
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            pending: set[Future] = {
                pool.submit(run_point, index, point, keep_trace)
                for index, point in items
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()


def make_executor(jobs: int):
    """Pick the executor for a worker count (1 → serial)."""
    return SerialExecutor() if jobs <= 1 else ProcessExecutor(jobs)
