"""Per-point result cache keyed on (point hash, seed).

Replaces the old in-process ``functools.lru_cache`` memoization of
``benchmarks/_sweeps.sweep_point`` with an explicit cache that

* keys on the point's *content hash* plus its seed, so any change to any
  axis (duration, backend, trace flag, ...) is a miss — no accidental
  sharing between specs that merely look alike;
* strips trace payloads on insert (:meth:`PointEnvelope.drop_trace`), so
  a cached figure suite holds only digested scalars and dicts per point,
  never a full per-point trace for the whole benchmark session;
* is shareable across sweeps on purpose: Fig. 6 and Fig. 7 report
  different columns of the *same* runs, and a shared cache keeps that
  "simulate once, report twice" property of the old memoization.

Entries store the envelope with a neutral index; :meth:`get` re-stamps
the caller's position so one cached run can appear at different indexes
in different specs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sweep.envelope import PointEnvelope
from repro.sweep.model import SweepPoint


class PointCache:
    """Explicit (point hash, seed) → envelope cache with hit accounting."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], PointEnvelope] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, point: SweepPoint, index: int = 0) -> PointEnvelope | None:
        entry = self._entries.get(point.cache_key())
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return replace(entry, index=index)

    def put(self, point: SweepPoint, envelope: PointEnvelope) -> None:
        """Insert ``envelope``, dropping its trace payload first.

        The cache must never pin trace events: callers that want the raw
        trace consume it *before* the envelope is cached (the engine does
        this ordering), and everyone later gets the digested result.
        """
        entry = replace(envelope, index=-1)
        entry.drop_trace()
        self._entries[point.cache_key()] = entry

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
