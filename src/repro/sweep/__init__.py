"""repro.sweep — the parallel sweep engine behind the figure benchmarks.

The paper's figures are sweeps of independent, seed-isolated measurement
points.  This package makes that structure explicit and exploitable:

* :mod:`repro.sweep.model` — :class:`SweepPoint`/:class:`SweepSpec`
  value objects with stable content hashes and canonical point order;
* :mod:`repro.sweep.executor` — one ``run_point`` execution path behind
  a serial executor and a :class:`ProcessExecutor` sharded by point;
* :mod:`repro.sweep.engine` — ``run_sweep`` with a deterministic merge:
  results reassemble into spec order regardless of worker completion
  order, so serial and parallel runs are byte-identical;
* :mod:`repro.sweep.cache` — the explicit (point hash, seed) result
  cache replacing ad-hoc ``lru_cache`` memoization, trace payloads never
  retained;
* :mod:`repro.sweep.figures` — the paper's cycle/payload sweeps plus the
  ``ZUGCHAIN_BENCH_{SMOKE,TRACE,JOBS}`` settings the benchmarks use;
* :mod:`repro.sweep.bench` — the benchmark-trajectory recorder writing
  ``BENCH_<date>.json`` artifacts.
"""

from repro.sweep.bench import BenchRecorder, default_bench_path, summarize
from repro.sweep.cache import PointCache
from repro.sweep.engine import SweepResult, run_sweep
from repro.sweep.envelope import PointEnvelope, SweepRunStats
from repro.sweep.executor import ProcessExecutor, SerialExecutor, make_executor, run_point
from repro.sweep.figures import (
    DURATION_S,
    JOBS,
    POINT_CACHE,
    SMOKE,
    TRACE,
    WARMUP_S,
    cycle_sweep,
    cycle_sweep_result,
    payload_sweep,
    payload_sweep_result,
    sweep_point,
)
from repro.sweep.model import (
    BUS_CYCLES_S,
    DEFAULT_CYCLE_S,
    DEFAULT_PAYLOAD,
    PAYLOAD_BYTES,
    SweepPoint,
    SweepSpec,
    cycle_sweep_spec,
    grid_sweep_spec,
    payload_sweep_spec,
)

__all__ = [
    "BUS_CYCLES_S",
    "BenchRecorder",
    "DEFAULT_CYCLE_S",
    "DEFAULT_PAYLOAD",
    "DURATION_S",
    "JOBS",
    "PAYLOAD_BYTES",
    "POINT_CACHE",
    "PointCache",
    "PointEnvelope",
    "ProcessExecutor",
    "SMOKE",
    "SerialExecutor",
    "SweepPoint",
    "SweepResult",
    "SweepRunStats",
    "SweepSpec",
    "TRACE",
    "WARMUP_S",
    "cycle_sweep",
    "cycle_sweep_result",
    "cycle_sweep_spec",
    "default_bench_path",
    "grid_sweep_spec",
    "make_executor",
    "payload_sweep",
    "payload_sweep_result",
    "payload_sweep_spec",
    "run_point",
    "run_sweep",
    "summarize",
    "sweep_point",
]
