"""The sweep engine: cache lookup, executor fan-out, deterministic merge.

``run_sweep`` is the one entry point: it resolves each spec point against
the optional :class:`~repro.sweep.cache.PointCache`, farms the misses to
an executor (serial or process-sharded), and merges the envelopes back
into the spec's canonical point order — *regardless of worker completion
order*.  The merged :class:`SweepResult` therefore renders byte-identical
JSON for serial and parallel runs of the same spec and seed; the
determinism suite pins exactly that.

Merge contract:

* results are reassembled by envelope index into spec order — never by
  completion, never by dict insertion;
* the sweep-level metrics fold replays each point's aggregated cluster
  counters (:attr:`~repro.scenarios.ScenarioResult.metrics`) into one
  :class:`~repro.obs.metrics.MetricsRegistry` in that same canonical
  order, so counter totals and their sorted rendering cannot depend on
  scheduling;
* per-phase latency breakdowns travel inside each ``ScenarioResult``
  (they were computed in the worker from its private tracer) and are
  reported per point, keyed by the point's position.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.sweep.cache import PointCache
from repro.sweep.envelope import PointEnvelope, SweepRunStats
from repro.sweep.executor import make_executor
from repro.sweep.model import SweepPoint, SweepSpec
from repro.util.errors import ProtocolError


class SweepResult:
    """A finished sweep: envelopes in canonical order plus run stats."""

    def __init__(self, spec: SweepSpec, envelopes: list[PointEnvelope],
                 stats: SweepRunStats) -> None:
        self.spec = spec
        self.envelopes = envelopes
        self.stats = stats

    @property
    def results(self) -> list:
        """The per-point :class:`ScenarioResult` list, in spec order."""
        return [envelope.result for envelope in self.envelopes]

    @property
    def head_hashes(self) -> list[str]:
        """Chain head hash per point — the fixed-seed determinism anchor."""
        return [envelope.head_hash for envelope in self.envelopes]

    def merged_metrics(self) -> MetricsRegistry:
        """One registry folding every point's cluster counters, in order."""
        merged = MetricsRegistry(node=f"sweep:{self.spec.name}")
        for envelope in self.envelopes:
            merged.inc_from(envelope.result.metrics)
        return merged

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "spec_hash": self.spec.spec_hash(),
            "points": [envelope.to_dict() for envelope in self.envelopes],
            "merged_counters": self.merged_metrics().counter_values(),
        }

    def to_json(self) -> bytes:
        """Canonical JSON bytes; identical for serial and parallel runs."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()


def _merge(spec: SweepSpec, envelopes: Iterable[PointEnvelope],
           stats: SweepRunStats) -> SweepResult:
    by_index: dict[int, PointEnvelope] = {}
    for envelope in envelopes:
        if envelope.index in by_index:
            raise ProtocolError(f"duplicate sweep point index {envelope.index}")
        by_index[envelope.index] = envelope
    missing = [i for i in range(len(spec)) if i not in by_index]
    if missing:
        raise ProtocolError(f"sweep {spec.name!r} lost points {missing}")
    ordered = [by_index[i] for i in range(len(spec))]
    for index, (point, envelope) in enumerate(zip(spec, ordered)):
        if envelope.point_hash != point.point_hash():
            raise ProtocolError(
                f"sweep {spec.name!r} point {index}: envelope does not match spec"
            )
    return SweepResult(spec, ordered, stats)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: PointCache | None = None,
    executor=None,
    keep_trace: bool = False,
) -> SweepResult:
    """Run ``spec`` and return merged results in canonical point order.

    ``jobs`` selects the executor (1 = serial, N = process pool sharded
    by point) unless an explicit ``executor`` is injected; ``cache``
    short-circuits points whose (point hash, seed) key already ran.
    """
    stats = SweepRunStats()
    envelopes: list[PointEnvelope] = []
    pending: list[tuple[int, SweepPoint]] = []
    for index, point in enumerate(spec):
        hit = cache.get(point, index) if cache is not None else None
        if hit is not None:
            stats.cached += 1
            envelopes.append(hit)
        else:
            pending.append((index, point))

    executor = executor if executor is not None else make_executor(jobs)
    for envelope in executor.run(pending, keep_trace):
        stats.executed += 1
        stats.completion_order.append(envelope.index)
        if cache is not None:
            point = spec.points[envelope.index]
            cache.put(point, envelope)
        envelopes.append(envelope)
    return _merge(spec, envelopes, stats)
