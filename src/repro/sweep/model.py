"""Sweep specification model: explicit points, canonical order, stable hashes.

A sweep is a *list of independent measurement points*, each fully
described by a :class:`SweepPoint` — system under test, bus cycle,
payload size, run length, and seed.  Every point is seed-isolated (the
scenario builds its own :class:`~repro.util.rng.RngRegistry` from the
point's seed), which is precisely what makes point-level sharding across
worker processes safe: no state flows between points, so execution order
and placement cannot change any result.

Hashes are computed over a canonical JSON rendering (sorted keys,
fixed float repr), so a spec hash is stable across processes, runs, and
machines — it keys the per-point result cache and stamps merged sweep
output so serial and parallel runs of the same spec are comparable
byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable, Iterator

from repro.util.errors import ConfigError

#: The paper's sweep axes (§V-B).
BUS_CYCLES_S = (0.032, 0.064, 0.128, 0.256)
PAYLOAD_BYTES = (32, 1024, 4096, 8192)
DEFAULT_CYCLE_S = 0.064
DEFAULT_PAYLOAD = 1024


def _canonical_json(data: object) -> bytes:
    """Deterministic JSON bytes: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class SweepPoint:
    """One measurement point: everything a worker needs to run it.

    The point is a frozen value object — picklable, hashable, and
    self-contained, so it can cross a process boundary and still build
    the identical :class:`~repro.scenarios.ScenarioConfig`.
    """

    system: str = "zugchain"
    cycle_time_s: float = DEFAULT_CYCLE_S
    payload_bytes: int = DEFAULT_PAYLOAD
    duration_s: float = 24.0
    warmup_s: float = 3.0
    seed: int = 42
    trace: bool = False
    bft_backend: str = "pbft"

    def __post_init__(self) -> None:
        if self.system not in ("zugchain", "baseline"):
            raise ConfigError(f"unknown system {self.system!r}")
        if self.duration_s <= 0:
            raise ConfigError(f"point duration must be positive, got {self.duration_s}")

    def key(self) -> tuple:
        """Canonical ordering key: points sort by axes, never by index."""
        return (
            self.system, self.cycle_time_s, self.payload_bytes,
            self.duration_s, self.warmup_s, self.seed, self.trace,
            self.bft_backend,
        )

    def point_hash(self) -> str:
        """Stable content hash of this point (cache key half)."""
        return hashlib.sha256(_canonical_json(asdict(self))).hexdigest()

    def cache_key(self) -> tuple[str, int]:
        """(point hash, seed) — the per-point result-cache key."""
        return (self.point_hash(), self.seed)


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of points plus a human-readable name.

    Point order in the spec *is* the canonical output order: the merge
    step reassembles worker results into this order no matter which
    worker finished first.
    """

    name: str
    points: tuple[SweepPoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigError(f"sweep {self.name!r} has no points")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def spec_hash(self) -> str:
        """Stable content hash over the full point list."""
        return hashlib.sha256(
            _canonical_json([asdict(point) for point in self.points])
        ).hexdigest()

    def with_trace(self, trace: bool) -> "SweepSpec":
        return SweepSpec(
            name=self.name,
            points=tuple(replace(point, trace=trace) for point in self.points),
        )


def cycle_sweep_spec(
    system: str,
    *,
    duration_s: float,
    warmup_s: float,
    seed: int = 42,
    trace: bool = False,
    cycles: Iterable[float] = BUS_CYCLES_S,
    overload_duration_s: float | None = None,
) -> SweepSpec:
    """Fig. 6/7 left: bus cycles 32-256 ms at the default 1 kB payload.

    ``overload_duration_s`` lengthens the overloaded baseline point at
    the 32 ms minimum cycle so enough requests complete (through the
    growing backlog) to yield latency samples.
    """
    points = []
    for cycle in cycles:
        duration = duration_s
        if (overload_duration_s is not None
                and system == "baseline" and cycle <= 0.032):
            duration = overload_duration_s
        points.append(SweepPoint(
            system=system, cycle_time_s=cycle, payload_bytes=DEFAULT_PAYLOAD,
            duration_s=duration, warmup_s=warmup_s, seed=seed, trace=trace,
        ))
    return SweepSpec(name=f"cycles:{system}", points=tuple(points))


def payload_sweep_spec(
    system: str,
    *,
    duration_s: float,
    warmup_s: float,
    seed: int = 42,
    trace: bool = False,
    payloads: Iterable[int] = PAYLOAD_BYTES,
) -> SweepSpec:
    """Fig. 6/7 right: payloads 32 B - 8 kB at the 64 ms cycle."""
    points = tuple(
        SweepPoint(
            system=system, cycle_time_s=DEFAULT_CYCLE_S, payload_bytes=payload,
            duration_s=duration_s, warmup_s=warmup_s, seed=seed, trace=trace,
        )
        for payload in payloads
    )
    return SweepSpec(name=f"payloads:{system}", points=points)


def grid_sweep_spec(
    name: str,
    systems: Iterable[str],
    cycles: Iterable[float],
    payloads: Iterable[int],
    *,
    duration_s: float,
    warmup_s: float,
    seed: int = 42,
    trace: bool = False,
) -> SweepSpec:
    """Cartesian product sweep for the CLI's multi-value axes."""
    points = tuple(
        SweepPoint(
            system=system, cycle_time_s=cycle, payload_bytes=payload,
            duration_s=duration_s, warmup_s=warmup_s, seed=seed, trace=trace,
        )
        for system in systems
        for cycle in cycles
        for payload in payloads
    )
    return SweepSpec(name=name, points=points)
