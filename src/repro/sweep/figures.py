"""The paper's figure sweeps on the sweep engine, with env-driven settings.

This module is the benchmarks' entry point into :mod:`repro.sweep`: it
owns the smoke/trace/jobs knobs (environment variables, so the pytest
bench files and CI need no plumbing) and exposes the same three calls the
old ``benchmarks/_sweeps`` module had — ``sweep_point``, ``cycle_sweep``,
``payload_sweep`` — now backed by the explicit spec/executor/merge
pipeline and the shared :class:`~repro.sweep.cache.PointCache` (Fig. 6
and Fig. 7 report different columns of the same runs, so points simulate
once and serve both).

Environment knobs:

``ZUGCHAIN_BENCH_SMOKE=1``
    CI smoke mode: sharply reduced simulated duration so the whole figure
    suite executes in minutes.  Absolute numbers are not meaningful at
    this duration, so benchmarks skip their quantitative shape assertions
    and only prove the sweeps still run end to end.
``ZUGCHAIN_BENCH_TRACE=1``
    Every sweep point runs with a RecordingTracer attached, so the figure
    benchmarks double as an overhead regression check — tracing must not
    change any reported number.
``ZUGCHAIN_BENCH_JOBS=N``
    Worker processes per sweep (default 1 = serial).  Points are
    seed-isolated, so any N produces byte-identical merged results; N > 1
    just finishes sooner on a multi-core box.
"""

from __future__ import annotations

import os

from repro.scenarios import ScenarioResult
from repro.sweep.cache import PointCache
from repro.sweep.engine import SweepResult, run_sweep
from repro.sweep.model import (
    BUS_CYCLES_S,
    DEFAULT_CYCLE_S,
    DEFAULT_PAYLOAD,
    PAYLOAD_BYTES,
    SweepPoint,
    SweepSpec,
    cycle_sweep_spec,
    payload_sweep_spec,
)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


SMOKE = _env_flag("ZUGCHAIN_BENCH_SMOKE")
TRACE = _env_flag("ZUGCHAIN_BENCH_TRACE")
JOBS = max(1, int(os.environ.get("ZUGCHAIN_BENCH_JOBS", "1") or "1"))

#: Simulated duration per point.  The paper runs 5 minutes; 24 s preserves
#: every qualitative result (steady state is reached within seconds) while
#: keeping the full suite's wall time reasonable.
DURATION_S = 6.0 if SMOKE else 24.0
WARMUP_S = 1.5 if SMOKE else 3.0

#: The overloaded baseline at the 32 ms minimum cycle gets a longer run so
#: enough requests complete (through the growing backlog) to yield latency
#: samples.  Smoke mode keeps every point short.
OVERLOAD_DURATION_S = None if SMOKE else 40.0

#: Shared across all figure sweeps in this process, in place of the old
#: ``lru_cache``: digested results only, trace payloads never retained.
POINT_CACHE = PointCache()


def sweep_point(
    system: str,
    cycle_time_s: float,
    payload_bytes: int,
    duration_s: float = DURATION_S,
    seed: int = 42,
) -> ScenarioResult:
    """Run (cached) one measurement point with the suite's settings."""
    point = SweepPoint(
        system=system, cycle_time_s=cycle_time_s, payload_bytes=payload_bytes,
        duration_s=duration_s, warmup_s=WARMUP_S, seed=seed, trace=TRACE,
    )
    spec = SweepSpec(name=f"point:{system}", points=(point,))
    return run_sweep(spec, jobs=1, cache=POINT_CACHE).results[0]


def cycle_sweep(system: str, jobs: int | None = None) -> list[ScenarioResult]:
    """Fig. 6/7 left: bus cycles 32-256 ms at 1 kB payloads."""
    return cycle_sweep_result(system, jobs=jobs).results


def cycle_sweep_result(system: str, jobs: int | None = None) -> SweepResult:
    spec = cycle_sweep_spec(
        system, duration_s=DURATION_S, warmup_s=WARMUP_S, trace=TRACE,
        overload_duration_s=OVERLOAD_DURATION_S,
    )
    return run_sweep(spec, jobs=jobs if jobs is not None else JOBS,
                     cache=POINT_CACHE)


def payload_sweep(system: str, jobs: int | None = None) -> list[ScenarioResult]:
    """Fig. 6/7 right: payloads 32 B - 8 kB at the 64 ms cycle."""
    return payload_sweep_result(system, jobs=jobs).results


def payload_sweep_result(system: str, jobs: int | None = None) -> SweepResult:
    spec = payload_sweep_spec(
        system, duration_s=DURATION_S, warmup_s=WARMUP_S, trace=TRACE,
    )
    return run_sweep(spec, jobs=jobs if jobs is not None else JOBS,
                     cache=POINT_CACHE)
