"""The replica-local chain: append, validate, prune, headers-only fallback.

Pruning implements §III-D: after a confirmed export, blocks up to the
exported index are deleted, "keeping the last exported block to serve as
the first block for the pruned blockchain".  The signed data-center deletes
are retained as a :class:`PruneCertificate` so a transferred or audited
chain can justify why it does not start at genesis (error scenario ii).

If deletes are missed and memory runs out, replicas can fall back to
dropping block bodies while keeping headers (error scenario v) — hashes
remain available, so integrity of the retained chain is still verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block, genesis_block
from repro.util.errors import ChainError


@dataclass(frozen=True)
class PruneCertificate:
    """Proof that pruning below ``base_height`` was authorized by data centers."""

    base_height: int
    base_block_hash: bytes
    delete_signatures: dict[str, bytes]  # data-center id -> signature

    def signer_count(self) -> int:
        return len(self.delete_signatures)


@dataclass
class Blockchain:
    """Hash-linked block sequence with a movable base."""

    chain_id: str = "zugchain"
    _blocks: list[Block] = field(default_factory=list)
    _headers_only_heights: set[int] = field(default_factory=set)
    prune_certificate: PruneCertificate | None = None

    def __post_init__(self) -> None:
        if not self._blocks:
            self._blocks.append(genesis_block(self.chain_id))

    # -- reading --------------------------------------------------------------

    @property
    def base_height(self) -> int:
        return self._blocks[0].height

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self.head.height

    def __len__(self) -> int:
        return len(self._blocks)

    def block_at(self, height: int) -> Block:
        index = height - self.base_height
        if not 0 <= index < len(self._blocks):
            raise ChainError(
                f"height {height} outside stored range "
                f"[{self.base_height}, {self.height}]"
            )
        return self._blocks[index]

    def has_block(self, height: int) -> bool:
        return self.base_height <= height <= self.height

    def blocks_in_range(self, first: int, last: int) -> list[Block]:
        """Blocks with ``first <= height <= last`` (all must be stored)."""
        return [self.block_at(h) for h in range(first, last + 1)]

    def body_available(self, height: int) -> bool:
        return self.has_block(height) and height not in self._headers_only_heights

    def total_size_bytes(self) -> int:
        return sum(
            block.encoded_size()
            for block in self._blocks
            if block.height not in self._headers_only_heights
        )

    # -- writing --------------------------------------------------------------

    def append(self, block: Block) -> None:
        """Append after full validation against the current head."""
        head = self.head
        if block.height != head.height + 1:
            raise ChainError(f"expected height {head.height + 1}, got {block.height}")
        if block.header.prev_hash != head.block_hash:
            raise ChainError(f"block {block.height} does not link to current head")
        if not block.verify_payload():
            raise ChainError(f"block {block.height} payload does not match its header")
        if block.last_sn <= head.last_sn and head.height > 0:
            raise ChainError(
                f"block {block.height} sequence {block.last_sn} does not advance"
            )
        self._blocks.append(block)

    def prune_below(self, height: int, certificate: PruneCertificate) -> list[Block]:
        """Drop blocks strictly below ``height``; returns the removed blocks.

        ``height`` must reference a stored block, which becomes the new base.
        """
        if not self.has_block(height):
            raise ChainError(f"cannot prune to unknown height {height}")
        base = self.block_at(height)
        if certificate.base_height != height or certificate.base_block_hash != base.block_hash:
            raise ChainError("prune certificate does not match the requested base block")
        removed = [block for block in self._blocks if block.height < height]
        self._blocks = [block for block in self._blocks if block.height >= height]
        self._headers_only_heights = {
            h for h in self._headers_only_heights if h >= height
        }
        self.prune_certificate = certificate
        return removed

    def drop_bodies_below(self, height: int) -> int:
        """Memory-exhaustion fallback: keep headers, drop request bodies.

        Returns the number of blocks affected.  The genesis/base block is
        kept intact so the chain can still be re-linked.
        """
        affected = 0
        for block in self._blocks:
            if self.base_height < block.height < height and block.height not in self._headers_only_heights:
                self._headers_only_heights.add(block.height)
                affected += 1
        return affected

    # -- verification -----------------------------------------------------------

    def verify(self) -> None:
        """Full integrity check of the stored chain; raises on violation."""
        previous = None
        for block in self._blocks:
            if previous is not None:
                if block.height != previous.height + 1:
                    raise ChainError(f"gap before height {block.height}")
                if block.header.prev_hash != previous.block_hash:
                    raise ChainError(f"broken link at height {block.height}")
            if block.height not in self._headers_only_heights and not block.verify_payload():
                raise ChainError(f"payload mismatch at height {block.height}")
            previous = block
        if self.base_height > 0 and self.prune_certificate is None:
            raise ChainError("pruned chain is missing its prune certificate")

    def is_valid(self) -> bool:
        try:
            self.verify()
            return True
        except ChainError:
            return False

    @staticmethod
    def from_blocks(blocks: list[Block], chain_id: str = "zugchain",
                    prune_certificate: PruneCertificate | None = None) -> "Blockchain":
        """Reconstruct (e.g. on the data-center side) and verify a chain."""
        if not blocks:
            raise ChainError("cannot build a chain from zero blocks")
        chain = Blockchain.__new__(Blockchain)
        chain.chain_id = chain_id
        chain._blocks = list(blocks)
        chain._headers_only_heights = set()
        chain.prune_certificate = prune_certificate
        chain.verify()
        return chain
