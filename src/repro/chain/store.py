"""On-disk block persistence.

The paper persists the blockchain on disk to survive power loss (§V-B,
"to ensure data integrity after e.g., power loss, we persist the blockchain
on disk").  One file per block, named by height, verified on load.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.chain.block import Block
from repro.util.errors import ChainError


class BlockStore:
    """Directory-backed block storage with integrity checks on load."""

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(self, height: int) -> Path:
        return self._dir / f"block-{height:012d}.zc"

    def write(self, block: Block) -> Path:
        path = self._path(block.height)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(block.encode())
        os.replace(tmp, path)  # atomic publish
        return path

    def read(self, height: int) -> Block:
        path = self._path(height)
        if not path.exists():
            raise ChainError(f"no stored block at height {height}")
        block = Block.decode(path.read_bytes())
        if block.height != height:
            raise ChainError(
                f"stored file for height {height} contains block {block.height}"
            )
        if not block.verify_payload():
            raise ChainError(f"stored block {height} failed payload verification")
        return block

    def delete(self, height: int) -> bool:
        path = self._path(height)
        if path.exists():
            path.unlink()
            return True
        return False

    def heights(self) -> list[int]:
        out = []
        for path in self._dir.glob("block-*.zc"):
            try:
                out.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def load_all(self) -> list[Block]:
        return [self.read(height) for height in self.heights()]
