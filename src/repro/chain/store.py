"""On-disk block persistence.

The paper persists the blockchain on disk to survive power loss (§V-B,
"to ensure data integrity after e.g., power loss, we persist the blockchain
on disk").  One file per block, named by height, verified on load.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.chain.block import Block
from repro.util.errors import ChainError


class BlockStore:
    """Directory-backed block storage with integrity checks on load."""

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(self, height: int) -> Path:
        return self._dir / f"block-{height:012d}.zc"

    def write(self, block: Block) -> Path:
        path = self._path(block.height)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(block.encode())
        os.replace(tmp, path)  # atomic publish
        return path

    def read(self, height: int) -> Block:
        path = self._path(height)
        if not path.exists():
            raise ChainError(f"no stored block at height {height}")
        block = Block.decode(path.read_bytes())
        if block.height != height:
            raise ChainError(
                f"stored file for height {height} contains block {block.height}"
            )
        if not block.verify_payload():
            raise ChainError(f"stored block {height} failed payload verification")
        return block

    def delete(self, height: int) -> bool:
        path = self._path(height)
        if path.exists():
            path.unlink()
            return True
        return False

    def heights(self) -> list[int]:
        out = []
        for path in self._dir.glob("block-*.zc"):
            try:
                out.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def load_all(self) -> list[Block]:
        return [self.read(height) for height in self.heights()]


class MemoryBlockStore:
    """In-memory stand-in for :class:`BlockStore` with the same interface.

    Used by the simulated cluster to model per-node durable storage (§V-B)
    without touching the filesystem: a fail-stop crash destroys the node
    object but not its store, so ``recover_node`` can rehydrate the chain
    exactly as a real node would replay its disk after power loss.  Blocks
    round-trip through ``encode()``/``decode()`` so the store holds bytes,
    not live object references — recovery reads what was persisted, not
    what the dead node remembered.
    """

    def __init__(self) -> None:
        self._blocks: dict[int, bytes] = {}
        # Most recent stable checkpoint certificate, persisted alongside the
        # blocks (as a real deployment would fsync it with the chain) so a
        # recovering replica can fast-forward its watermarks before StateSync.
        self._checkpoint: bytes | None = None

    def write(self, block: Block) -> int:
        self._blocks[block.height] = block.encode()
        return block.height

    def read(self, height: int) -> Block:
        encoded = self._blocks.get(height)
        if encoded is None:
            raise ChainError(f"no stored block at height {height}")
        block = Block.decode(encoded)
        if block.height != height:
            raise ChainError(
                f"stored entry for height {height} contains block {block.height}"
            )
        if not block.verify_payload():
            raise ChainError(f"stored block {height} failed payload verification")
        return block

    def delete(self, height: int) -> bool:
        return self._blocks.pop(height, None) is not None

    def heights(self) -> list[int]:
        return sorted(self._blocks)

    def load_all(self) -> list[Block]:
        return [self.read(height) for height in self.heights()]

    def write_checkpoint(self, encoded_certificate: bytes) -> None:
        self._checkpoint = encoded_certificate

    def read_checkpoint(self) -> bytes | None:
        return self._checkpoint
