"""Blocks: headers, payload commitment, deterministic construction.

Replicas "deterministically bundle and hash" ordered requests once the
block-size threshold is reached (§III-C, Blockchain Application).  All
correct replicas therefore build byte-identical blocks, which is what makes
the per-block checkpoint digests comparable across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import DOMAIN_BLOCK, sha256
from repro.crypto.merkle import MerkleTree, merkle_root
from repro.util.errors import ChainError
from repro.wire.codec import Reader, Writer
from repro.wire.messages import SignedRequest

GENESIS_PREV_HASH = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Integrity-critical block metadata."""

    height: int
    prev_hash: bytes
    payload_root: bytes
    timestamp_us: int
    request_count: int
    last_sn: int  # consensus sequence number of the last included request

    @cached_property
    def block_hash(self) -> bytes:
        return sha256(
            self.prev_hash,
            self.payload_root,
            self.height.to_bytes(8, "big"),
            self.timestamp_us.to_bytes(8, "big"),
            self.request_count.to_bytes(4, "big"),
            self.last_sn.to_bytes(8, "big"),
            domain=DOMAIN_BLOCK,
        )

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.height)
        writer.put_fixed(self.prev_hash, 32)
        writer.put_fixed(self.payload_root, 32)
        writer.put_uint(self.timestamp_us)
        writer.put_uint(self.request_count)
        writer.put_uint(self.last_sn)
        return writer.getvalue()

    @classmethod
    def read_from(cls, reader: Reader) -> "BlockHeader":
        return cls(
            height=reader.get_uint(),
            prev_hash=reader.get_fixed(32),
            payload_root=reader.get_fixed(32),
            timestamp_us=reader.get_uint(),
            request_count=reader.get_uint(),
            last_sn=reader.get_uint(),
        )

    @classmethod
    def decode(cls, data: bytes) -> "BlockHeader":
        reader = Reader(data)
        header = cls.read_from(reader)
        reader.expect_end()
        return header

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class Block:
    """A header plus the ordered signed requests it commits to."""

    header: BlockHeader
    requests: tuple[SignedRequest, ...]

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash

    @property
    def last_sn(self) -> int:
        return self.header.last_sn

    def payload_leaves(self) -> list[bytes]:
        return [request.encode() for request in self.requests]

    def verify_payload(self) -> bool:
        """Check the Merkle commitment and request count against the header."""
        if len(self.requests) != self.header.request_count:
            return False
        return merkle_root(self.payload_leaves()) == self.header.payload_root

    def merkle_tree(self) -> MerkleTree:
        return MerkleTree(self.payload_leaves())

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_bytes(self.header.encode())
        writer.put_list(list(self.requests), lambda w, r: w.put_bytes(r.encode()))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        reader = Reader(data)
        header = BlockHeader.decode(reader.get_bytes())
        requests = reader.get_list(lambda r: SignedRequest.decode(r.get_bytes()))
        reader.expect_end()
        return cls(header=header, requests=tuple(requests))

    def encoded_size(self) -> int:
        return len(self.encode())


def genesis_block(chain_id: str = "zugchain") -> Block:
    """Deterministic height-0 block shared by all replicas at startup.

    The chain id is bound via the (otherwise unused) previous-hash field so
    distinct deployments produce distinct genesis hashes while the payload
    commitment remains a valid (empty) Merkle root.
    """
    header = BlockHeader(
        height=0,
        prev_hash=sha256(chain_id.encode(), domain=DOMAIN_BLOCK),
        payload_root=merkle_root([]),
        timestamp_us=0,
        request_count=0,
        last_sn=0,
    )
    return Block(header=header, requests=())


def build_block(
    prev: BlockHeader,
    requests: list[SignedRequest],
    timestamp_us: int,
    last_sn: int,
) -> Block:
    """Deterministically bundle ordered requests into the next block."""
    if not requests:
        raise ChainError("cannot build an empty block")
    if last_sn <= prev.last_sn and prev.height > 0:
        raise ChainError(
            f"block sequence must advance: last_sn {last_sn} <= previous {prev.last_sn}"
        )
    header = BlockHeader(
        height=prev.height + 1,
        prev_hash=prev.block_hash,
        payload_root=merkle_root([request.encode() for request in requests]),
        timestamp_us=timestamp_us,
        request_count=len(requests),
        last_sn=last_sn,
    )
    return Block(header=header, requests=tuple(requests))
