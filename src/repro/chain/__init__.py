"""Blockchain substrate: blocks, the hash-linked chain, pruning, persistence.

The chain stores totally ordered requests in blocks of configurable size
(10 requests in the evaluation).  Each block commits to its payload via a
Merkle root and to its predecessor via the header hash, so deleting,
reordering, or modifying logged events after the fact is detectable from a
single surviving copy (§III-A, R3).  Pruning after export keeps the last
exported block as the new base (§III-D) together with the data-center
delete certificates that justify the truncation.
"""

from repro.chain.block import Block, BlockHeader, GENESIS_PREV_HASH, build_block, genesis_block
from repro.chain.blockchain import Blockchain, PruneCertificate
from repro.chain.store import BlockStore

__all__ = [
    "Block",
    "BlockHeader",
    "GENESIS_PREV_HASH",
    "build_block",
    "genesis_block",
    "Blockchain",
    "PruneCertificate",
    "BlockStore",
]
