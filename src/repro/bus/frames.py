"""MVB process-data telegrams.

The MVB transfers process data as master telegram (port poll) followed by a
slave telegram carrying the value plus a check sequence.  We model the slave
telegram as :class:`ProcessDataFrame` — port, raw value bytes, and an 8-bit
checksum — and one bus cycle's full complement as :class:`BusCycleData`.

Frame sizes feed the payload-size accounting: real MVB frames carry up to
32 bytes of process data plus header and check sequence overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import CodecError
from repro.wire.codec import Reader, Writer

#: Header + check-sequence overhead per slave telegram, per IEC 61375-3-1.
FRAME_OVERHEAD_BYTES = 5
#: Maximum process data bytes in one telegram.
MAX_FRAME_DATA_BYTES = 32


def frame_checksum(port: int, data: bytes) -> int:
    """8-bit additive check sequence over port and data bytes.

    A simple stand-in for the MVB's CRC; enough to detect the single-bit
    corruptions our fault injector produces.
    """
    total = (port >> 8) + (port & 0xFF)
    for byte in data:
        total += byte
    return total & 0xFF


@dataclass(frozen=True)
class ProcessDataFrame:
    """One slave telegram: port address, data, check sequence."""

    port: int
    data: bytes
    checksum: int

    @staticmethod
    def create(port: int, data: bytes) -> "ProcessDataFrame":
        if len(data) > MAX_FRAME_DATA_BYTES:
            raise CodecError(
                f"frame data of {len(data)} bytes exceeds MVB maximum {MAX_FRAME_DATA_BYTES}"
            )
        return ProcessDataFrame(port=port, data=data, checksum=frame_checksum(port, data))

    @property
    def valid(self) -> bool:
        return self.checksum == frame_checksum(self.port, self.data)

    def wire_size(self) -> int:
        return FRAME_OVERHEAD_BYTES + len(self.data)

    def corrupted(self, bit_index: int) -> "ProcessDataFrame":
        """Copy with one data bit flipped and checksum left stale (bus error)."""
        if not self.data:
            return self
        byte_index = (bit_index // 8) % len(self.data)
        mask = 1 << (bit_index % 8)
        data = bytearray(self.data)
        data[byte_index] ^= mask
        return ProcessDataFrame(port=self.port, data=bytes(data), checksum=self.checksum)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.port)
        writer.put_bytes(self.data)
        writer.put_uint(self.checksum)
        return writer.getvalue()

    @classmethod
    def read_from(cls, reader: Reader) -> "ProcessDataFrame":
        port = reader.get_uint()
        data = reader.get_bytes()
        checksum = reader.get_uint()
        return cls(port=port, data=data, checksum=checksum)


@dataclass(frozen=True)
class BusCycleData:
    """All telegrams transmitted during one bus cycle."""

    cycle_no: int
    timestamp_us: int
    frames: tuple[ProcessDataFrame, ...]

    def wire_size(self) -> int:
        return sum(frame.wire_size() for frame in self.frames)

    def data_size(self) -> int:
        return sum(len(frame.data) for frame in self.frames)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.cycle_no)
        writer.put_uint(self.timestamp_us)
        writer.put_list(list(self.frames), lambda w, f: w.put_bytes(f.encode()))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "BusCycleData":
        reader = Reader(data)
        cycle_no = reader.get_uint()
        timestamp_us = reader.get_uint()
        frames = reader.get_list(
            lambda r: ProcessDataFrame.read_from(Reader(r.get_bytes()))
        )
        reader.expect_end()
        return cls(cycle_no=cycle_no, timestamp_us=timestamp_us, frames=tuple(frames))
