"""Train-dynamics signal generator (the testbed's DDC stand-in).

Produces the per-cycle signal values an ATP/control-system complement would
write to the bus during a journey: a speed profile with acceleration,
cruising, braking and station stops, door activity while stopped, brake
pipe pressure following brake demand, occasional ATP interventions and
emergency brakes, plus an opaque vendor-diagnostics channel.

Two knobs matter to the evaluation sweeps:

* ``target_payload_bytes`` pads each cycle with deterministic filler frames
  (simulating a fuller process-data complement) so the consolidated request
  reaches the sweep's payload size (32 B – 8 kB in Fig. 6/7);
* determinism — filler and dynamics derive from the cycle number and one
  seed, so every node observing the same cycle sees identical bytes.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from repro.bus.frames import MAX_FRAME_DATA_BYTES, ProcessDataFrame
from repro.bus.nsdb import Nsdb
from repro.bus.signals import SignalValue
from repro.util.errors import ConfigError
from repro.util.rng import RngRegistry

#: Port range used by deterministic filler frames (outside the NSDB catalog).
FILLER_PORT_BASE = 0x800


class _Phase(enum.Enum):
    ACCELERATING = "accelerating"
    CRUISING = "cruising"
    BRAKING = "braking"
    STOPPED = "stopped"


@dataclass(frozen=True)
class GeneratorConfig:
    """Journey and workload parameters."""

    max_speed_kmh: float = 160.0
    acceleration_kmh_s: float = 1.2
    braking_kmh_s: float = 2.0
    cruise_duration_s: float = 120.0
    stop_duration_s: float = 45.0
    emergency_brake_prob_per_cycle: float = 0.0005
    atp_intervention_prob_per_cycle: float = 0.001
    target_payload_bytes: int = 0  # 0 = no padding
    seed_name: str = "generator"


class TrainDynamicsGenerator:
    """Stateful signal source driven once per bus cycle."""

    def __init__(self, nsdb: Nsdb, config: GeneratorConfig, rng: RngRegistry) -> None:
        self._nsdb = nsdb
        self._config = config
        self._rng = rng.stream(config.seed_name)
        self._phase = _Phase.ACCELERATING
        self._phase_elapsed_s = 0.0
        self._speed_kmh = 0.0
        self._odometer_m = 0.0
        self._brake_demand_pct = 0.0
        self._doors_open_mask = 0
        self._emergency = False
        self._atp_intervention = False
        self._stops_made = 0

    # -- train physics --------------------------------------------------------

    @property
    def speed_kmh(self) -> float:
        return self._speed_kmh

    @property
    def phase(self) -> str:
        return self._phase.value

    @property
    def stops_made(self) -> int:
        return self._stops_made

    def _advance(self, dt_s: float) -> None:
        cfg = self._config
        self._phase_elapsed_s += dt_s

        if self._emergency:
            self._speed_kmh = max(0.0, self._speed_kmh - 2 * cfg.braking_kmh_s * dt_s)
            self._brake_demand_pct = 100.0
            if self._speed_kmh == 0.0:
                self._emergency = False
                self._phase = _Phase.STOPPED
                self._phase_elapsed_s = 0.0
        elif self._phase is _Phase.ACCELERATING:
            self._speed_kmh = min(cfg.max_speed_kmh, self._speed_kmh + cfg.acceleration_kmh_s * dt_s)
            self._brake_demand_pct = 0.0
            if self._speed_kmh >= cfg.max_speed_kmh:
                self._phase = _Phase.CRUISING
                self._phase_elapsed_s = 0.0
        elif self._phase is _Phase.CRUISING:
            self._brake_demand_pct = 0.0
            if self._phase_elapsed_s >= cfg.cruise_duration_s:
                self._phase = _Phase.BRAKING
                self._phase_elapsed_s = 0.0
        elif self._phase is _Phase.BRAKING:
            self._speed_kmh = max(0.0, self._speed_kmh - cfg.braking_kmh_s * dt_s)
            self._brake_demand_pct = 60.0
            if self._speed_kmh == 0.0:
                self._phase = _Phase.STOPPED
                self._phase_elapsed_s = 0.0
                self._stops_made += 1
        elif self._phase is _Phase.STOPPED:
            self._brake_demand_pct = 30.0
            self._doors_open_mask = 0b1111 if self._phase_elapsed_s < self._config.stop_duration_s * 0.8 else 0
            if self._phase_elapsed_s >= cfg.stop_duration_s:
                self._doors_open_mask = 0
                self._phase = _Phase.ACCELERATING
                self._phase_elapsed_s = 0.0

        self._odometer_m += self._speed_kmh / 3.6 * dt_s

        # Random safety events only while moving.
        if self._speed_kmh > 10.0:
            if not self._emergency and self._rng.random() < cfg.emergency_brake_prob_per_cycle:
                self._emergency = True
            self._atp_intervention = self._rng.random() < cfg.atp_intervention_prob_per_cycle
        else:
            self._atp_intervention = False

    # -- per-cycle output ------------------------------------------------------

    def signals_for_cycle(self, cycle_no: int, dt_s: float) -> list[SignalValue]:
        """Advance the dynamics by one cycle and emit the due signal values."""
        self._advance(dt_s)
        values: list[SignalValue] = []
        for definition in self._nsdb.due_in_cycle(cycle_no):
            values.append(SignalValue.of(definition, self._current_value(definition.name, cycle_no)))
        return values

    def _current_value(self, name: str, cycle_no: int):
        if name == "speed":
            return min(self._speed_kmh, 409.5)
        if name == "odometer":
            return self._odometer_m % 400_000.0
        if name == "brake_pipe_pressure":
            return max(0.0, 5.0 - self._brake_demand_pct / 25.0)
        if name == "emergency_brake":
            return self._emergency
        if name == "service_brake_demand":
            return self._brake_demand_pct
        if name == "driver_command":
            return 0b10 if self._phase in (_Phase.ACCELERATING, _Phase.CRUISING) else 0b01
        if name == "atp_intervention":
            return self._atp_intervention
        if name == "atp_mode":
            return 2 if self._speed_kmh > 0 else 1
        if name == "door_state":
            return self._doors_open_mask
        if name == "traction_effort":
            return 150.0 if self._phase is _Phase.ACCELERATING else 20.0
        if name == "pantograph_state":
            return 0b1
        if name == "horn_active":
            return False
        if name == "cab_active":
            return 1
        if name == "vendor_diagnostics":
            return self._opaque_diagnostics(cycle_no)
        raise ConfigError(f"generator has no model for signal {name!r}")

    def _opaque_diagnostics(self, cycle_no: int) -> bytes:
        width = self._nsdb.signal("vendor_diagnostics").width_bytes
        return hashlib.sha256(f"diag:{cycle_no}".encode()).digest()[:width]

    # -- frame assembly ---------------------------------------------------------

    def frames_for_cycle(self, cycle_no: int, dt_s: float) -> list[ProcessDataFrame]:
        """Signal frames plus deterministic filler up to the target payload size."""
        frames = [
            ProcessDataFrame.create(value.definition.port, value.raw)
            for value in self.signals_for_cycle(cycle_no, dt_s)
        ]
        target = self._config.target_payload_bytes
        if target:
            current = sum(len(frame.data) for frame in frames)
            frames.extend(_filler_frames(cycle_no, max(0, target - current)))
        return frames


def _filler_frames(cycle_no: int, nbytes: int) -> list[ProcessDataFrame]:
    """Deterministic padding frames (same bytes on every node for a cycle)."""
    frames = []
    port = FILLER_PORT_BASE
    remaining = nbytes
    counter = 0
    while remaining > 0:
        chunk = min(MAX_FRAME_DATA_BYTES, remaining)
        material = hashlib.sha256(f"filler:{cycle_no}:{counter}".encode()).digest()
        data = (material * ((chunk // len(material)) + 1))[:chunk]
        frames.append(ProcessDataFrame.create(port, data))
        port += 1
        counter += 1
        remaining -= chunk
    return frames
