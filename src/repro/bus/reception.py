"""Per-node bus reception: parse, filter for relevance, build requests.

"Nodes receive, parse, and filter the data according to relevance and for
higher efficiency as is common practice in JRUs, e.g., to log the speed
only upon changes" (§III-A).  The transformation is deterministic, so
correct nodes observing identical telegrams produce byte-identical request
payloads — the precondition for content-based duplicate filtering.

Frames with a failed check sequence are *still logged* (flagged), matching
the JRU's obligation to record what was on the bus; their payload then
legitimately diverges between nodes, and the communication layer logs each
divergent observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bus.frames import BusCycleData, ProcessDataFrame
from repro.bus.nsdb import Nsdb
from repro.wire.codec import Reader, Writer
from repro.wire.messages import Request


@dataclass
class RelevanceFilter:
    """Suppresses unchanged samples of change-only signals.

    Signals outside the NSDB (e.g. filler complement) and signals marked
    ``log_on_change_only=False`` always pass.  State is per node: a node
    that missed a cycle simply re-logs the next sample.
    """

    nsdb: Nsdb
    _last_raw: dict[int, bytes] = field(default_factory=dict)

    def apply(self, frames: tuple[ProcessDataFrame, ...]) -> list[ProcessDataFrame]:
        retained: list[ProcessDataFrame] = []
        for frame in frames:
            if not self.nsdb.has_port(frame.port):
                retained.append(frame)
                continue
            definition = self.nsdb.by_port(frame.port)
            if not definition.log_on_change_only:
                retained.append(frame)
                continue
            if self._last_raw.get(frame.port) != frame.data:
                self._last_raw[frame.port] = frame.data
                retained.append(frame)
        return retained

    def reset(self) -> None:
        self._last_raw.clear()


def encode_cycle_payload(frames: list[ProcessDataFrame]) -> bytes:
    """Deterministic payload: (port, data, valid) triples sorted by port."""
    writer = Writer()
    ordered = sorted(frames, key=lambda frame: frame.port)
    writer.put_list(
        ordered,
        lambda w, f: (w.put_uint(f.port), w.put_bytes(f.data), w.put_bool(f.valid)),
    )
    return writer.getvalue()


def decode_cycle_payload(payload: bytes) -> list[tuple[int, bytes, bool]]:
    """Inverse of :func:`encode_cycle_payload`, for analysis tooling."""
    reader = Reader(payload)
    entries = reader.get_list(
        lambda r: (r.get_uint(), r.get_bytes(), r.get_bool())
    )
    reader.expect_end()
    return entries


class BusReceiver:
    """One node's bus front end: telegrams in, consensus requests out."""

    def __init__(self, nsdb: Nsdb, source_link: str = "mvb0") -> None:
        self._filter = RelevanceFilter(nsdb=nsdb)
        self._source_link = source_link
        self.cycles_seen = 0
        self.cycles_empty_after_filter = 0
        self.invalid_frames_seen = 0

    @property
    def source_link(self) -> str:
        return self._source_link

    def on_cycle(self, cycle: BusCycleData, now_us: int) -> Request | None:
        """Consolidate one bus cycle into a request (None if fully filtered)."""
        self.cycles_seen += 1
        self.invalid_frames_seen += sum(1 for frame in cycle.frames if not frame.valid)
        retained = self._filter.apply(cycle.frames)
        if not retained:
            self.cycles_empty_after_filter += 1
            return None
        return Request(
            payload=encode_cycle_payload(retained),
            bus_cycle=cycle.cycle_no,
            recv_timestamp_us=now_us,
            source_link=self._source_link,
        )
