"""Juridically relevant train signals and their fixed-point encodings.

IEC 62625 requires the JRU to record speed, location, brake activity,
driver commands, ATP interventions, door activity, and similar events with
timestamps.  Each signal has an MVB port address, a fixed byte width, a
period (in bus cycles), and a relevance rule (log always vs. on change).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import CodecError, ConfigError


class SignalKind(enum.Enum):
    """Value semantics of a signal, selecting its codec."""

    UNSIGNED = "unsigned"        # raw unsigned integer
    FIXED_POINT = "fixed_point"  # unsigned with a scale factor (e.g. 0.1 km/h)
    BOOLEAN = "boolean"          # single flag
    BITFIELD = "bitfield"        # multiple flags, e.g. one per door
    OPAQUE = "opaque"            # pre-encrypted or vendor data, logged as-is


@dataclass(frozen=True)
class SignalDef:
    """Static description of one signal from the NSDB."""

    name: str
    port: int
    width_bytes: int
    kind: SignalKind = SignalKind.UNSIGNED
    scale: float = 1.0
    period_cycles: int = 1
    log_on_change_only: bool = False
    encrypted: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 0xFFF:
            raise ConfigError(f"{self.name}: MVB port {self.port:#x} outside 12-bit range")
        if self.width_bytes < 1:
            raise ConfigError(f"{self.name}: width must be >= 1 byte")
        if self.period_cycles < 1:
            raise ConfigError(f"{self.name}: period must be >= 1 cycle")
        if self.kind is SignalKind.FIXED_POINT and self.scale <= 0:
            raise ConfigError(f"{self.name}: fixed-point scale must be positive")

    def encode_value(self, value: float | int | bool | bytes) -> bytes:
        """Encode a decoded value into this signal's raw byte representation."""
        if self.kind is SignalKind.OPAQUE:
            if not isinstance(value, bytes) or len(value) != self.width_bytes:
                raise CodecError(f"{self.name}: opaque value must be {self.width_bytes} bytes")
            return value
        if self.kind is SignalKind.BOOLEAN:
            return (b"\x01" if value else b"\x00") * 1 + b"\x00" * (self.width_bytes - 1)
        if self.kind is SignalKind.BITFIELD:
            return int(value).to_bytes(self.width_bytes, "big")
        if self.kind is SignalKind.FIXED_POINT:
            raw = round(float(value) / self.scale)
        else:
            raw = int(value)
        if raw < 0:
            raise CodecError(f"{self.name}: negative raw value {raw}")
        limit = 1 << (8 * self.width_bytes)
        if raw >= limit:
            raise CodecError(f"{self.name}: value {value} overflows {self.width_bytes} bytes")
        return raw.to_bytes(self.width_bytes, "big")

    def decode_value(self, raw: bytes) -> float | int | bool | bytes:
        """Decode raw bytes into the signal's value domain."""
        if len(raw) != self.width_bytes:
            raise CodecError(f"{self.name}: expected {self.width_bytes} raw bytes, got {len(raw)}")
        if self.kind is SignalKind.OPAQUE:
            return raw
        if self.kind is SignalKind.BOOLEAN:
            return raw[0] != 0
        value = int.from_bytes(raw, "big")
        if self.kind is SignalKind.FIXED_POINT:
            return value * self.scale
        return value


@dataclass(frozen=True)
class SignalValue:
    """One observed signal sample on the bus."""

    definition: SignalDef
    raw: bytes

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def value(self) -> float | int | bool | bytes:
        return self.definition.decode_value(self.raw)

    @staticmethod
    def of(definition: SignalDef, value: float | int | bool | bytes) -> "SignalValue":
        return SignalValue(definition=definition, raw=definition.encode_value(value))
