"""Multifunction Vehicle Bus (MVB) substrate.

Replaces the testbed's physical MVB (SIBAS-KLIP master, DDC signal
generator, NSDB configuration) with a simulated time-triggered bus:

* :mod:`repro.bus.signals` — signal definitions and fixed-point encoding;
* :mod:`repro.bus.nsdb`    — node supervisor database (which signals exist,
  their ports, widths, cycle periods, filter rules) with the IEC 62625-style
  default catalog;
* :mod:`repro.bus.frames`  — process-data telegrams with checksums;
* :mod:`repro.bus.generator` — train-dynamics workload producing realistic
  signal traces (speed profile, braking, doors, ATP interventions);
* :mod:`repro.bus.master`  — the bus master polling loop delivering each
  cycle's telegrams to all attached devices;
* :mod:`repro.bus.faults`  — per-device reception faults (drops, bit
  corruption, cycle reordering) as observed on real MVBs;
* :mod:`repro.bus.reception` — per-node parse + relevance filter turning
  telegrams into consensus :class:`~repro.wire.messages.Request` payloads.
"""

from repro.bus.signals import SignalDef, SignalValue, SignalKind
from repro.bus.nsdb import Nsdb, standard_jru_catalog
from repro.bus.frames import ProcessDataFrame, BusCycleData
from repro.bus.generator import TrainDynamicsGenerator, GeneratorConfig
from repro.bus.master import MvbMaster, BusConfig
from repro.bus.faults import ReceptionFaultConfig, ReceptionFaults
from repro.bus.reception import BusReceiver, RelevanceFilter

__all__ = [
    "SignalDef",
    "SignalValue",
    "SignalKind",
    "Nsdb",
    "standard_jru_catalog",
    "ProcessDataFrame",
    "BusCycleData",
    "TrainDynamicsGenerator",
    "GeneratorConfig",
    "MvbMaster",
    "BusConfig",
    "ReceptionFaultConfig",
    "ReceptionFaults",
    "BusReceiver",
    "RelevanceFilter",
]
