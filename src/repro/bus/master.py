"""The MVB bus master polling loop.

The master (the testbed's SIBAS-KLIP AS318MVB) sets the cycle: every
``cycle_time_s`` it polls the signal writers and delivers the resulting
telegrams to every attached device in the same instant — the bus is a
synchronous, time-triggered broadcast medium.  Reception faults are applied
per device on delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bus.faults import ReceptionFaultConfig, ReceptionFaults
from repro.bus.frames import BusCycleData
from repro.bus.generator import TrainDynamicsGenerator
from repro.sim.kernel import Kernel
from repro.util.errors import ConfigError
from repro.util.rng import RngRegistry

#: Minimum MVB cycle time (§V-B: "bus cycles from 32 ms, the MVB's minimum").
MIN_CYCLE_TIME_S = 0.032


@dataclass(frozen=True)
class BusConfig:
    """Bus master parameters."""

    cycle_time_s: float = 0.064
    enforce_minimum: bool = True

    def __post_init__(self) -> None:
        if self.enforce_minimum and self.cycle_time_s < MIN_CYCLE_TIME_S:
            raise ConfigError(
                f"cycle time {self.cycle_time_s * 1000:.0f} ms below MVB minimum "
                f"{MIN_CYCLE_TIME_S * 1000:.0f} ms"
            )
        if self.cycle_time_s <= 0:
            raise ConfigError("cycle time must be positive")


class MvbMaster:
    """Drives the cycle schedule and fans telegrams out to attached devices."""

    def __init__(
        self,
        kernel: Kernel,
        generator: TrainDynamicsGenerator,
        config: BusConfig,
        rng: RngRegistry,
    ) -> None:
        self._kernel = kernel
        self._generator = generator
        self._config = config
        self._rng = rng
        self._devices: dict[str, tuple[Callable[[BusCycleData], None], ReceptionFaults]] = {}
        self._offline: set[str] = set()
        self._skew_s: dict[str, float] = {}
        self._cycle_no = 0
        self._running = False
        self.cycles_emitted = 0

    @property
    def cycle_time_s(self) -> float:
        return self._config.cycle_time_s

    @property
    def cycle_no(self) -> int:
        return self._cycle_no

    def attach(
        self,
        device_id: str,
        on_cycle: Callable[[BusCycleData], None],
        faults: ReceptionFaultConfig | None = None,
    ) -> None:
        """Subscribe a device to every bus cycle, with optional reception faults."""
        if device_id in self._devices:
            raise ConfigError(f"device {device_id!r} already attached")
        fault_state = ReceptionFaults(
            faults or ReceptionFaultConfig.none(),
            self._rng.stream(f"bus-faults:{device_id}"),
        )
        self._devices[device_id] = (on_cycle, fault_state)

    def device_faults(self, device_id: str) -> ReceptionFaults:
        return self._devices[device_id][1]

    def set_offline(self, device_id: str, offline: bool) -> None:
        """Power state: an offline device receives no cycles at all."""
        if offline:
            self._offline.add(device_id)
        else:
            self._offline.discard(device_id)

    def set_skew(self, device_id: str, offset_s: float) -> None:
        """Clock skew: deliver cycles to ``device_id`` ``offset_s`` late.

        Models a device whose local cycle clock has drifted — it still sees
        every telegram, but after the rest of the bus (§III-C gray failures).
        A zero offset restores synchronous delivery.
        """
        if offset_s < 0:
            raise ConfigError(f"bus skew must be non-negative, got {offset_s}")
        if offset_s > 0:
            self._skew_s[device_id] = offset_s
        else:
            self._skew_s.pop(device_id, None)

    def start(self) -> None:
        if self._running:
            raise ConfigError("bus master already running")
        self._running = True
        self._kernel.schedule(self._config.cycle_time_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._cycle_no += 1
        self.cycles_emitted += 1
        frames = self._generator.frames_for_cycle(self._cycle_no, self._config.cycle_time_s)
        cycle = BusCycleData(
            cycle_no=self._cycle_no,
            timestamp_us=int(self._kernel.now * 1e6),
            frames=tuple(frames),
        )
        for device_id, (on_cycle, fault_state) in self._devices.items():
            if device_id in self._offline:
                continue
            deliveries = list(fault_state.apply(cycle))
            skew = self._skew_s.get(device_id, 0.0)
            if skew > 0:
                # A skewed device's deliveries leave the synchronous instant;
                # the default argument pins the current cycle's telegrams.
                self._kernel.schedule(
                    skew,
                    lambda frames=deliveries, cb=on_cycle: [cb(d) for d in frames],
                )
            else:
                for delivery in deliveries:
                    on_cycle(delivery)
        self._kernel.schedule(self._config.cycle_time_s, self._tick)
