"""ProfiNet-style bus variant: cyclic IO plus acyclic alarms.

The paper's prototype reads an MVB, but "our approach is independent of
the underlying bus technology and can be extended to any bus, e.g.,
ProfiNet" (§II-A).  This module models the properties that differ from
the MVB:

* **cyclic IO data** exchanged on a fixed update interval (like the MVB's
  process data — reusing :class:`~repro.bus.frames.ProcessDataFrame`);
* **acyclic alarms** — event-driven frames (diagnosis, process alarms)
  that arrive *between* cycles, at arbitrary times.

For the recorder, alarms matter: they are exactly the "uniquely received,
urgent event" case — every alarm is consolidated into its own immediate
request rather than waiting for the next cycle boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.bus.frames import BusCycleData, ProcessDataFrame
from repro.bus.generator import TrainDynamicsGenerator
from repro.sim.kernel import Kernel
from repro.util.errors import ConfigError
from repro.util.rng import RngRegistry

#: Port range used for alarm frames (distinct from cyclic IO and filler).
ALARM_PORT_BASE = 0xF00


class AlarmKind(enum.Enum):
    DIAGNOSIS = 1        # device self-diagnosis (e.g. sensor degradation)
    PROCESS = 2          # process alarm (threshold crossing)
    PULL_PLUG = 3        # module removed / inserted


@dataclass(frozen=True)
class ProfinetConfig:
    """Bus parameters: cyclic update interval and alarm arrival rate."""

    update_interval_s: float = 0.064
    alarm_rate_per_s: float = 0.2     # mean Poisson rate of acyclic alarms

    def __post_init__(self) -> None:
        if self.update_interval_s <= 0:
            raise ConfigError("update interval must be positive")
        if self.alarm_rate_per_s < 0:
            raise ConfigError("alarm rate must be non-negative")


class ProfinetBus:
    """Cyclic IO + Poisson alarm source feeding the same device interface.

    Devices receive :class:`~repro.bus.frames.BusCycleData` for both cyclic
    updates and alarms — an alarm is delivered as a one-frame "cycle" with
    its own monotonically increasing event number, so the recorder's
    consolidation path (one request per delivery) applies unchanged.
    """

    def __init__(
        self,
        kernel: Kernel,
        generator: TrainDynamicsGenerator,
        config: ProfinetConfig,
        rng: RngRegistry,
    ) -> None:
        self._kernel = kernel
        self._generator = generator
        self._config = config
        self._rng = rng.stream("profinet-alarms")
        self._devices: dict[str, Callable[[BusCycleData], None]] = {}
        self._event_no = 0
        self._running = False
        self.cycles_emitted = 0
        self.alarms_emitted = 0

    def attach(self, device_id: str, on_delivery: Callable[[BusCycleData], None]) -> None:
        if device_id in self._devices:
            raise ConfigError(f"device {device_id!r} already attached")
        self._devices[device_id] = on_delivery

    def start(self) -> None:
        if self._running:
            raise ConfigError("bus already running")
        self._running = True
        self._kernel.schedule(self._config.update_interval_s, self._cyclic_tick)
        self._schedule_next_alarm()

    def stop(self) -> None:
        self._running = False

    # -- cyclic IO ----------------------------------------------------------------

    def _cyclic_tick(self) -> None:
        if not self._running:
            return
        self._event_no += 1
        self.cycles_emitted += 1
        frames = self._generator.frames_for_cycle(
            self._event_no, self._config.update_interval_s
        )
        self._deliver(BusCycleData(
            cycle_no=self._event_no,
            timestamp_us=int(self._kernel.now * 1e6),
            frames=tuple(frames),
        ))
        self._kernel.schedule(self._config.update_interval_s, self._cyclic_tick)

    # -- acyclic alarms --------------------------------------------------------------

    def _schedule_next_alarm(self) -> None:
        if self._config.alarm_rate_per_s <= 0:
            return
        delay = self._rng.expovariate(self._config.alarm_rate_per_s)
        self._kernel.schedule(delay, self._alarm_tick)

    def _alarm_tick(self) -> None:
        if not self._running:
            return
        self._event_no += 1
        self.alarms_emitted += 1
        kind = self._rng.choice(list(AlarmKind))
        payload = bytes([kind.value]) + self._rng.randbytes(6)
        frame = ProcessDataFrame.create(ALARM_PORT_BASE + kind.value, payload)
        self._deliver(BusCycleData(
            cycle_no=self._event_no,
            timestamp_us=int(self._kernel.now * 1e6),
            frames=(frame,),
        ))
        self._schedule_next_alarm()

    def _deliver(self, delivery: BusCycleData) -> None:
        for on_delivery in self._devices.values():
            on_delivery(delivery)
