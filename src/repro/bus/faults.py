"""Per-device bus reception faults.

Communication errors occur on real MVBs despite the robust design (the
paper cites bit flips, dropped cycles, and reordering, §III-B).  These
faults are *per receiving device*: the same telegram can arrive intact on
one node, corrupted on another, and not at all on a third — which is
exactly the divergence the ZugChain communication layer must tolerate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bus.frames import BusCycleData


@dataclass(frozen=True)
class ReceptionFaultConfig:
    """Probabilities of reception faults per bus cycle for one device."""

    drop_cycle_prob: float = 0.0
    corrupt_frame_prob: float = 0.0
    delay_cycle_prob: float = 0.0

    @staticmethod
    def none() -> "ReceptionFaultConfig":
        return ReceptionFaultConfig()

    @staticmethod
    def noisy(scale: float = 1.0) -> "ReceptionFaultConfig":
        """A realistic error profile: rare drops, occasional bit flips."""
        return ReceptionFaultConfig(
            drop_cycle_prob=0.002 * scale,
            corrupt_frame_prob=0.001 * scale,
            delay_cycle_prob=0.001 * scale,
        )


class ReceptionFaults:
    """Applies a fault configuration to one device's cycle stream.

    ``apply`` maps an incoming cycle to the list of cycles delivered *now*:
    dropped cycles vanish, delayed cycles are buffered and delivered
    together with the next cycle (reordering), corrupted cycles have one
    frame's data bit flipped with a stale checksum.
    """

    def __init__(self, config: ReceptionFaultConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng
        self._held: list[BusCycleData] = []
        self.cycles_dropped = 0
        self.cycles_delayed = 0
        self.frames_corrupted = 0

    def apply(self, cycle: BusCycleData) -> list[BusCycleData]:
        deliveries: list[BusCycleData] = []
        # Anything held from a previous delay is flushed (late, out of order).
        if self._held:
            deliveries.extend(self._held)
            self._held.clear()

        roll = self._rng.random()
        if roll < self._config.drop_cycle_prob:
            self.cycles_dropped += 1
            return deliveries
        if roll < self._config.drop_cycle_prob + self._config.delay_cycle_prob:
            self.cycles_delayed += 1
            self._held.append(cycle)
            return deliveries

        if self._config.corrupt_frame_prob and self._rng.random() < self._config.corrupt_frame_prob:
            cycle = self._corrupt(cycle)
        deliveries.append(cycle)
        return deliveries

    def flush(self) -> list[BusCycleData]:
        """Deliver anything still held (end of run)."""
        held, self._held = self._held, []
        return held

    def _corrupt(self, cycle: BusCycleData) -> BusCycleData:
        if not cycle.frames:
            return cycle
        index = self._rng.randrange(len(cycle.frames))
        bit = self._rng.randrange(max(1, len(cycle.frames[index].data) * 8))
        frames = list(cycle.frames)
        frames[index] = frames[index].corrupted(bit)
        self.frames_corrupted += 1
        return BusCycleData(
            cycle_no=cycle.cycle_no,
            timestamp_us=cycle.timestamp_us,
            frames=tuple(frames),
        )
