"""Node supervisor database (NSDB).

On the testbed every MVB component carries an NSDB file specifying which
signals it reads or writes.  Here the NSDB is the authoritative catalog of
signal definitions plus per-device read/write sets; the bus master polls
writers and the recorder nodes subscribe as readers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bus.signals import SignalDef, SignalKind
from repro.util.errors import ConfigError


@dataclass
class Nsdb:
    """Signal catalog with device port assignments."""

    signals: dict[str, SignalDef] = field(default_factory=dict)
    _ports: dict[int, str] = field(default_factory=dict)
    _writers: dict[str, set[str]] = field(default_factory=dict)
    _readers: dict[str, set[str]] = field(default_factory=dict)

    def add_signal(self, definition: SignalDef) -> None:
        if definition.name in self.signals:
            raise ConfigError(f"signal {definition.name!r} already defined")
        owner = self._ports.get(definition.port)
        if owner is not None:
            raise ConfigError(
                f"port {definition.port:#x} already assigned to {owner!r}"
            )
        self.signals[definition.name] = definition
        self._ports[definition.port] = definition.name

    def signal(self, name: str) -> SignalDef:
        try:
            return self.signals[name]
        except KeyError:
            raise ConfigError(f"unknown signal {name!r}") from None

    def by_port(self, port: int) -> SignalDef:
        name = self._ports.get(port)
        if name is None:
            raise ConfigError(f"no signal on port {port:#x}")
        return self.signals[name]

    def has_port(self, port: int) -> bool:
        return port in self._ports

    def assign_writer(self, device: str, signal_name: str) -> None:
        self.signal(signal_name)  # validates existence
        self._writers.setdefault(device, set()).add(signal_name)

    def assign_reader(self, device: str, signal_name: str) -> None:
        self.signal(signal_name)
        self._readers.setdefault(device, set()).add(signal_name)

    def written_by(self, device: str) -> list[SignalDef]:
        return sorted(
            (self.signals[name] for name in self._writers.get(device, ())),
            key=lambda sig: sig.port,
        )

    def read_by(self, device: str) -> list[SignalDef]:
        return sorted(
            (self.signals[name] for name in self._readers.get(device, ())),
            key=lambda sig: sig.port,
        )

    def all_signals(self) -> list[SignalDef]:
        return sorted(self.signals.values(), key=lambda sig: sig.port)

    def due_in_cycle(self, cycle_no: int) -> list[SignalDef]:
        """Signals scheduled for transmission in ``cycle_no``.

        The MVB master polls each signal every ``period_cycles`` cycles.
        """
        return [
            sig for sig in self.all_signals() if cycle_no % sig.period_cycles == 0
        ]


def standard_jru_catalog() -> Nsdb:
    """The IEC 62625-style default signal set used throughout the evaluation.

    Mirrors the classes of events a JRU must record: speed/location, brake
    system state, driver commands, ATP interventions, door activity, plus a
    vendor-encrypted diagnostic channel logged opaquely (§III-A: "Some data
    is received by the JRU in encrypted form and logged as is").
    """
    nsdb = Nsdb()
    definitions = [
        SignalDef("speed", port=0x100, width_bytes=2, kind=SignalKind.FIXED_POINT,
                  scale=0.1, unit="km/h", log_on_change_only=True),
        SignalDef("odometer", port=0x101, width_bytes=4, kind=SignalKind.FIXED_POINT,
                  scale=0.1, unit="m", log_on_change_only=True),
        SignalDef("brake_pipe_pressure", port=0x110, width_bytes=2,
                  kind=SignalKind.FIXED_POINT, scale=0.01, unit="bar",
                  log_on_change_only=True),
        SignalDef("emergency_brake", port=0x111, width_bytes=1, kind=SignalKind.BOOLEAN),
        SignalDef("service_brake_demand", port=0x112, width_bytes=1,
                  kind=SignalKind.FIXED_POINT, scale=1.0, unit="%",
                  log_on_change_only=True),
        SignalDef("driver_command", port=0x120, width_bytes=2, kind=SignalKind.BITFIELD),
        SignalDef("atp_intervention", port=0x130, width_bytes=1, kind=SignalKind.BOOLEAN),
        SignalDef("atp_mode", port=0x131, width_bytes=1, kind=SignalKind.UNSIGNED,
                  log_on_change_only=True, period_cycles=2),
        SignalDef("door_state", port=0x140, width_bytes=2, kind=SignalKind.BITFIELD,
                  log_on_change_only=True),
        SignalDef("traction_effort", port=0x150, width_bytes=2,
                  kind=SignalKind.FIXED_POINT, scale=0.1, unit="kN",
                  log_on_change_only=True, period_cycles=2),
        SignalDef("pantograph_state", port=0x151, width_bytes=1, kind=SignalKind.BITFIELD,
                  log_on_change_only=True, period_cycles=4),
        SignalDef("horn_active", port=0x152, width_bytes=1, kind=SignalKind.BOOLEAN),
        SignalDef("cab_active", port=0x153, width_bytes=1, kind=SignalKind.UNSIGNED,
                  log_on_change_only=True, period_cycles=4),
        SignalDef("vendor_diagnostics", port=0x1F0, width_bytes=16,
                  kind=SignalKind.OPAQUE, encrypted=True, period_cycles=4),
    ]
    for definition in definitions:
        nsdb.add_signal(definition)
    # Device assignments mirroring Fig. 1: ATP and control systems write,
    # the recorder nodes read everything.
    for name in ("speed", "odometer", "atp_intervention", "atp_mode"):
        nsdb.assign_writer("atp", name)
    for name in ("brake_pipe_pressure", "emergency_brake", "service_brake_demand"):
        nsdb.assign_writer("bcs", name)
    for name in ("traction_effort", "pantograph_state"):
        nsdb.assign_writer("acs", name)
    for name in ("driver_command", "horn_active", "cab_active", "door_state"):
        nsdb.assign_writer("cab", name)
    nsdb.assign_writer("vendor", "vendor_diagnostics")
    return nsdb
