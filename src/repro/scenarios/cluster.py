"""The simulated testbed (§V-A) as a reusable scenario.

Mirrors the hardware setup: four M-COM-class nodes (quad-core CPU model)
joined by 100 Mbit/s Ethernet for consensus, all reading an MVB whose
master emits one cycle every ``cycle_time_s`` with a configurable
consolidated payload size.  The same scenario builds either system under
test ("zugchain" or "baseline"), with optional per-node Byzantine specs
and bus reception faults.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.bft.config import BftConfig
from repro.bus.faults import ReceptionFaultConfig
from repro.bus.generator import GeneratorConfig, TrainDynamicsGenerator
from repro.bus.master import BusConfig, MvbMaster
from repro.bus.nsdb import standard_jru_catalog
from repro.bft.checkpoint import CheckpointCertificate
from repro.chain.blockchain import PruneCertificate
from repro.chain.store import MemoryBlockStore
from repro.core.baseline import BaselineNode
from repro.core.layer import ZugChainConfig
from repro.core.node import ZugChainNode
from repro.crypto.keys import KeyStore, default_scheme
from repro.faults.behaviors import ByzantineSpec, make_zugchain_node
from repro.obs.check import OracleReport, check_trace
from repro.obs.metrics import ClusterMetrics, MetricsRegistry
from repro.obs.spans import pair_request_spans
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.env import SimEnv
from repro.runtime.host import NodeHost
from repro.sim.kernel import Kernel
from repro.sim.monitor import LatencyRecorder, TimeSeries
from repro.sim.network import LinkSpec, Network
from repro.sim.resources import CostModel, CpuAccount, MemoryAccount
from repro.util.errors import ConfigError
from repro.util.rng import RngRegistry


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything a run needs; defaults reproduce the paper's main setting."""

    system: str = "zugchain"             # "zugchain" | "baseline"
    n: int = 4
    seed: int = 42
    cycle_time_s: float = 0.064
    payload_bytes: int = 1024
    block_size: int = 10
    soft_timeout_s: float = 0.250
    hard_timeout_s: float = 0.250
    view_change_timeout_s: float = 0.500
    retention_s: float = 45.0            # auto-prune window (export stand-in)
    sample_interval_s: float = 1.0
    preprepare_cancels_soft: bool = True
    filtering_enabled: bool = True
    max_open_per_node: int = 16
    bft_backend: str = "pbft"            # "pbft" | "linear"
    bus_faults: dict[str, ReceptionFaultConfig] = field(default_factory=dict)
    byzantine: dict[str, ByzantineSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.system not in ("zugchain", "baseline"):
            raise ConfigError(f"unknown system {self.system!r}")
        if self.bft_backend not in ("pbft", "linear"):
            raise ConfigError(f"unknown BFT backend {self.bft_backend!r}")
        if self.n < 4:
            raise ConfigError("the testbed requires n >= 4 (f >= 1)")


@dataclass
class ScenarioResult:
    """Measurements of one run, in the units the paper reports."""

    system: str
    cycle_time_s: float
    payload_bytes: int
    duration_s: float
    mean_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    requests_logged: int
    requests_expected: int
    network_utilization: float          # fraction of the 100 Mbit/s egress (mean over nodes)
    cpu_utilization: float              # fraction of total 4-core CPU (max over nodes)
    memory_mean_bytes: float
    memory_peak_bytes: float
    view_changes: int
    # Aggregated cluster counters (layer/bft/env prefixes) and, when the run
    # was traced, the per-phase latency decomposition from span pairing.
    metrics: dict[str, int] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    # Invariant-oracle findings (repro.obs.check) over the trace, as plain
    # dicts so results stay picklable across sweep workers.  Empty for
    # untraced runs and for traced runs where every invariant holds.
    findings: list[dict] = field(default_factory=list)

    def summary_row(self) -> str:
        return (
            f"{self.system:9s} cycle={self.cycle_time_s * 1000:6.1f}ms "
            f"payload={self.payload_bytes:5d}B "
            f"lat={self.mean_latency_s * 1000:8.2f}ms "
            f"net={self.network_utilization * 100:6.2f}% "
            f"cpu={self.cpu_utilization * 100:5.1f}% "
            f"mem={self.memory_mean_bytes / 1e6:6.2f}MB"
        )


class SimulatedCluster:
    """One assembled deployment, ready to run and measure."""

    def __init__(self, config: ScenarioConfig, tracer: Tracer | None = None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.kernel = Kernel()
        self.rng = RngRegistry(config.seed)
        self.model = CostModel()
        self.scheme = default_scheme(fast=True)
        self.network = Network(
            self.kernel, self.rng.stream("ethernet"), LinkSpec.train_ethernet()
        )
        self.nsdb = standard_jru_catalog()
        self.generator = TrainDynamicsGenerator(
            self.nsdb,
            GeneratorConfig(target_payload_bytes=config.payload_bytes),
            self.rng,
        )
        self.master = MvbMaster(
            self.kernel, self.generator, BusConfig(cycle_time_s=config.cycle_time_s),
            self.rng,
        )

        self.ids = [f"node-{i}" for i in range(config.n)]
        self.bft_config = BftConfig(
            replica_ids=tuple(self.ids),
            checkpoint_interval=config.block_size,
            view_change_timeout_s=config.view_change_timeout_s,
            max_open_per_node=config.max_open_per_node,
        )
        self.keystore = KeyStore(scheme=self.scheme)
        keypairs = {}
        for node_id in self.ids:
            pair = self.scheme.derive_keypair(node_id.encode())
            keypairs[node_id] = pair
            self.keystore.register(node_id, pair.public)
        self._keypairs = keypairs

        self.cpus: dict[str, CpuAccount] = {}
        self.nodes: dict[str, object] = {}
        self.hosts: dict[str, NodeHost] = {}
        self.envs: dict[str, SimEnv] = {}
        self.memory_series: dict[str, TimeSeries] = {}
        #: Per-node durable storage surviving fail-stop crashes (§V-B: the
        #: blockchain is persisted on disk; here an in-memory byte store).
        self.stores: dict[str, MemoryBlockStore] = {}
        #: Every node that was ever fail-stopped — the oracle must excuse
        #: them even after they recovered (they legitimately missed requests
        #: while down; StateSync backfills the chain, not the trace).
        self._ever_crashed: set[str] = set()
        self.crash_counts: dict[str, int] = {i: 0 for i in self.ids}
        self.recovery_counts: dict[str, int] = {i: 0 for i in self.ids}

        self._zug_config = ZugChainConfig(
            soft_timeout_s=config.soft_timeout_s,
            hard_timeout_s=config.hard_timeout_s,
            checkpoint_interval=config.block_size,
            max_open_per_node=config.max_open_per_node,
            preprepare_cancels_soft=config.preprepare_cancels_soft,
            filtering_enabled=config.filtering_enabled,
        )

        for node_id in self.ids:
            cpu = CpuAccount(self.kernel, self.model, name=node_id)
            self.cpus[node_id] = cpu
            env = SimEnv(node_id, self.kernel, self.network, cpu, self.model)
            self.envs[node_id] = env
            if self.tracer.enabled and hasattr(self.tracer, "bind_clock"):
                # Bind the env's causal clock so this node's events carry
                # per-node identity and cause edges.
                self.tracer.bind_clock(node_id, env.causal)
            self.stores[node_id] = MemoryBlockStore()
            node = self._build_node(node_id)
            host = NodeHost(node, self.network, cpu, self.model)
            host.attach_bus(self.master, config.bus_faults.get(node_id))
            self.nodes[node_id] = node
            self.hosts[node_id] = host
            self.memory_series[node_id] = TimeSeries(name=f"{node_id}.memory")
            spec = config.byzantine.get(node_id, ByzantineSpec())
            crash_at = spec.crash_at_s
            if crash_at is not None:
                self.kernel.schedule(crash_at, self._crash_hook(node_id))

        self._started = False

    # -- hooks ---------------------------------------------------------------------

    def _build_node(self, node_id: str):
        """Construct one node instance (initial build and crash recovery).

        Rebuilds use the same env, CPU account, keypair, and (crucially) the
        same cached per-node RNG streams, so a recovered node is the same
        *identity* with fresh in-memory state — exactly what restarting the
        recorder process on an M-COM would produce.
        """
        spec = self.config.byzantine.get(node_id, ByzantineSpec())
        env = self.envs[node_id]
        cpu = self.cpus[node_id]
        if self.config.system == "zugchain":
            from repro.bft.linear import LinearBftReplica
            from repro.bft.replica import PbftReplica

            replica_cls = (
                LinearBftReplica if self.config.bft_backend == "linear" else PbftReplica
            )
            return make_zugchain_node(
                spec,
                self.rng.stream(f"byzantine:{node_id}"),
                env=env,
                bft_config=self.bft_config,
                zug_config=self._zug_config,
                keypair=self._keypairs[node_id],
                keystore=self.keystore,
                nsdb=self.nsdb,
                on_block=self._block_hook(node_id, cpu),
                replica_cls=replica_cls,
                block_store=self.stores[node_id],
                tracer=self.tracer,
            )
        return BaselineNode(
            env=env,
            bft_config=self.bft_config,
            keypair=self._keypairs[node_id],
            keystore=self.keystore,
            nsdb=self.nsdb,
            on_block=self._block_hook(node_id, cpu),
            tracer=self.tracer,
        )

    def _block_hook(self, node_id: str, cpu: CpuAccount):
        def on_block(block) -> None:
            # Persisting the block to flash (paper: 5.03 ms for 80 kB blocks).
            cpu.charge_background(self.model.disk_write_cost(block.encoded_size()))
            # The stable checkpoint certificate is fsynced alongside the
            # block so a recovering replica can restore its watermarks
            # without waiting for a full state transfer.
            node = self.nodes[node_id]
            replica = getattr(node, "replica", None)
            store = self.stores.get(node_id)
            if replica is not None and store is not None:
                certificate = replica.latest_stable_checkpoint()
                if certificate is not None:
                    store.write_checkpoint(certificate.encode())
            self._auto_prune(node_id)
        return on_block

    def _crash_hook(self, node_id: str):
        def crash() -> None:
            self.crash_node(node_id)
        return crash

    def crash_node(self, node_id: str) -> None:
        """Fail-stop a node: all in-memory state is lost, storage survives.

        Beyond severing the network and bus, this tears down the dead
        incarnation completely: every armed timer dies with it and deferred
        CPU-pipeline work from before the crash is invalidated (epoch
        bump), so nothing the old incarnation scheduled can fire into the
        replacement built by :meth:`recover_node`.
        """
        self.network.crash(node_id)
        self.master.set_offline(node_id, True)
        self.envs[node_id].cancel_all_timers()
        self.hosts[node_id].advance_epoch()
        self._ever_crashed.add(node_id)
        self.crash_counts[node_id] += 1
        if self.tracer.enabled:
            self.tracer.emit("node.crashed", self.kernel.now, node_id,
                             count=self.crash_counts[node_id])

    def recover_node(self, node_id: str) -> None:
        """Restart a crashed node: fresh in-memory state, rehydrated chain.

        The replacement node replays its durable store (blocks appended
        with full verification, the persisted stable checkpoint fast-
        forwarding the replica's watermarks) and then rejoins the live
        protocol — StateSync closes whatever gap accumulated while it was
        down once f+1 peer checkpoints vouch for the missed progress.
        """
        node = self._build_node(node_id)
        store = self.stores.get(node_id)
        if store is not None and hasattr(node, "chain"):
            for block in store.load_all():
                if block.height == node.chain.height + 1:
                    node.chain.append(block)
                    # Replayed requests count as logged for duplicate
                    # filtering, exactly as on the state-transfer path.
                    if hasattr(node, "layer"):
                        for signed in block.requests:
                            node.layer.on_synced(signed, block.header.last_sn)
            encoded_cert = store.read_checkpoint()
            replica = getattr(node, "replica", None)
            if encoded_cert is not None and replica is not None:
                certificate = CheckpointCertificate.decode(encoded_cert)
                if certificate.block_height <= node.chain.height:
                    replica.fast_forward(certificate)
        self.nodes[node_id] = node
        self.hosts[node_id].node = node
        self.network.recover(node_id)
        self.master.set_offline(node_id, False)
        self.recovery_counts[node_id] += 1
        if self.tracer.enabled:
            self.tracer.emit("node.recovered", self.kernel.now, node_id,
                             count=self.recovery_counts[node_id],
                             height=getattr(getattr(node, "chain", None),
                                            "height", 0))

    def _auto_prune(self, node_id: str) -> None:
        """Stand-in for a completed export: drop blocks older than the retention window.

        The real export protocol (Table II) lives in :mod:`repro.export`;
        steady-state resource runs only need its effect — a bounded chain.
        """
        if self.config.retention_s <= 0:
            return
        node = self.nodes[node_id]
        chain = node.chain
        horizon_us = int((self.kernel.now - self.config.retention_s) * 1e6)
        target = chain.base_height
        for height in range(chain.base_height + 1, chain.height):
            if chain.block_at(height).header.timestamp_us < horizon_us:
                target = height
            else:
                break
        if target > chain.base_height:
            base = chain.block_at(target)
            certificate = PruneCertificate(
                base_height=target,
                base_block_hash=base.block_hash,
                delete_signatures={"dc-sim-a": b"\x01" * 64, "dc-sim-b": b"\x02" * 64},
            )
            chain.prune_below(target, certificate)
            if self.tracer.enabled:
                self.tracer.emit("chain.pruned", self.kernel.now, node_id,
                                 below_height=target,
                                 block_hash=base.block_hash.hex())

    # -- running -----------------------------------------------------------------------

    def run(self, duration_s: float, warmup_s: float = 0.0) -> ScenarioResult:
        """Drive the bus for ``duration_s`` and collect measurements.

        ``warmup_s`` excludes the initial transient from latency, network,
        and CPU figures (counters reset after the warmup).
        """
        if not self._started:
            self.master.start()
            self._started = True
        if warmup_s > 0:
            self.kernel.run_until(warmup_s)
            self.network.reset_window()
            for cpu in self.cpus.values():
                cpu.reset_window()
        measure_start = self.kernel.now
        next_sample = measure_start
        end = measure_start + duration_s
        while next_sample <= end:
            self.kernel.run_until(next_sample)
            for node_id, node in self.nodes.items():
                self.memory_series[node_id].record(
                    self.kernel.now,
                    MemoryAccount.FIXED_OVERHEAD_BYTES
                    + node.memory_bytes()
                    + self.hosts[node_id].inbox_bytes,
                )
            next_sample += self.config.sample_interval_s
        self.kernel.run_until(end)
        return self._collect(measure_start, duration_s)

    # -- measurement -----------------------------------------------------------------------

    def latency_recorder(self, node_id: str) -> LatencyRecorder:
        return self.nodes[node_id].latency

    def primary_id(self) -> str:
        views = [self.nodes[i].replica.view for i in self.ids]
        view = max(set(views), key=views.count)
        return self.bft_config.primary_of_view(view)

    def collect_metrics(self) -> ClusterMetrics:
        """Per-node registries built from the protocol stats objects.

        Populated at collection time from the counters the protocol already
        maintains (:class:`LayerStats`, :class:`ReplicaStats`), so metrics
        cost nothing on the hot path and exist for untraced runs too.
        """
        cluster = ClusterMetrics()
        for node_id in self.ids:
            node = self.nodes[node_id]
            registry = cluster.node(node_id)
            registry.inc_from(asdict(node.replica.stats), prefix="bft.")
            layer = getattr(node, "layer", None)
            if layer is not None:
                registry.inc_from(asdict(layer.stats), prefix="layer.")
            registry.gauge("chain.height").set(node.chain.height)
            registry.counter("requests.logged").inc(node.requests_logged)
            sync = getattr(node, "statesync", None)
            if sync is not None:
                registry.counter("sync.completed").inc(sync.syncs_completed)
                registry.counter("sync.rejected").inc(sync.syncs_rejected)
                registry.counter("sync.retried").inc(sync.syncs_retried)
            registry.counter("node.crashes").inc(self.crash_counts[node_id])
            registry.counter("node.recoveries").inc(self.recovery_counts[node_id])
        return cluster

    def aggregate_metrics(self) -> MetricsRegistry:
        """Cluster-level fold including every SimEnv's emission counters."""
        return self.collect_metrics().aggregate(envs=self.envs)

    def _collect(self, since: float, duration_s: float) -> ScenarioResult:
        primary = self.primary_id()
        latency = self.nodes[primary].latency.since(since)
        if len(latency) == 0:  # primary crashed scenarios: use another node
            for node_id in self.ids:
                candidate = self.nodes[node_id].latency.since(since)
                if len(candidate) > 0:
                    latency = candidate
                    break
        net_utils = [self.network.window_utilization(i) for i in self.ids
                     if not self.network.is_crashed(i)]
        cpu_utils = [self.cpus[i].window_utilization() for i in self.ids
                     if not self.network.is_crashed(i)]
        mem_values = [v for i in self.ids for v in self.memory_series[i].values]
        expected = int(duration_s / self.config.cycle_time_s)
        view_changes = max(
            self.nodes[i].replica.stats.view_changes_completed for i in self.ids
        )
        phases: dict[str, dict[str, float]] = {}
        findings: list[dict] = []
        if self.tracer.enabled and hasattr(self.tracer, "iter_events"):
            report = pair_request_spans(
                self.tracer.iter_events(), node=primary, since=since
            )
            phases = {
                name: stats.snapshot() for name, stats in report.phase_stats.items()
            }
            phases["end_to_end"] = report.end_to_end.snapshot()
            findings = self.check_invariants().to_dicts()
        return ScenarioResult(
            system=self.config.system,
            cycle_time_s=self.config.cycle_time_s,
            payload_bytes=self.config.payload_bytes,
            duration_s=duration_s,
            mean_latency_s=latency.mean(),
            p99_latency_s=latency.p99(),
            max_latency_s=latency.maximum(),
            requests_logged=len(latency),
            requests_expected=expected,
            network_utilization=(sum(net_utils) / len(net_utils)) if net_utils else 0.0,
            cpu_utilization=max(cpu_utils) if cpu_utils else 0.0,
            memory_mean_bytes=(sum(mem_values) / len(mem_values)) if mem_values else 0.0,
            memory_peak_bytes=max(mem_values) if mem_values else 0.0,
            view_changes=view_changes,
            metrics=self.aggregate_metrics().counter_values(),
            phases=phases,
            findings=findings,
        )

    def faulty_node_ids(self) -> tuple[str, ...]:
        """Nodes the oracle's agreement invariants must not quantify over:
        configured Byzantine or crash specs, plus every node that was
        fail-stopped at any point (recovered nodes legitimately missed
        requests while down — StateSync backfills the chain, not the
        trace, so omission checks must still excuse them)."""
        faulty = set(self._ever_crashed)
        for node_id in self.ids:
            spec = self.config.byzantine.get(node_id, ByzantineSpec())
            if spec.is_faulty:
                faulty.add(node_id)
            if self.network.is_crashed(node_id):
                faulty.add(node_id)
        return tuple(sorted(faulty))

    def check_invariants(self, vc_bound_s: float | None = None) -> "OracleReport":
        """Run the invariant oracle over this run's trace (library API).

        Requires a recording tracer; scenario and fault tests call this
        directly, and traced ``run()``s surface the findings on
        :attr:`ScenarioResult.findings`.
        """
        if not (self.tracer.enabled and hasattr(self.tracer, "iter_events")):
            raise ConfigError(
                "check_invariants() needs a RecordingTracer; pass one to "
                "SimulatedCluster(tracer=...)"
            )
        return check_trace(
            self.tracer.iter_events(),
            faulty=self.faulty_node_ids(),
            vc_bound_s=vc_bound_s,
        )
