"""Scenario builders: complete simulated deployments in one call.

:class:`~repro.scenarios.cluster.SimulatedCluster` assembles the testbed of
§V-A — four recorder nodes on a 100 Mbit/s consensus Ethernet, an MVB with
a train-dynamics signal source, and either the ZugChain stack or the
traditional-client baseline — and exposes the measurements the evaluation
reports (latency, network utilization, CPU, memory).
"""

from repro.scenarios.cluster import ScenarioConfig, SimulatedCluster, ScenarioResult

__all__ = ["ScenarioConfig", "SimulatedCluster", "ScenarioResult"]
