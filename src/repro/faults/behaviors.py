"""Concrete Byzantine behaviours evaluated in the paper.

Fig. 9 evaluates the two worst-case attacks against the communication
layer:

* a faulty backup **fabricating requests** for a fraction of bus cycles —
  data that never appeared on the bus, broadcast straight to the group;
* a faulty primary **delaying preprepares** just below the hard timeout,
  stalling ordering until soft timeouts fire and backups forward requests.

Additional behaviours cover the fault taxonomy of §III-C: proposing
duplicates (detected at DECIDE, triggering a view change) and false
suspicion (harmless below f+1 votes — exercised in tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bft.replica import PbftReplica
from repro.bus.frames import BusCycleData
from repro.core.layer import ZugChainLayer
from repro.core.messages import ZugBroadcast
from repro.core.node import ZugChainNode
from repro.wire.messages import Request, SignedRequest


@dataclass(frozen=True)
class ByzantineSpec:
    """Per-node fault configuration for scenario builders."""

    fabricate_per_cycle: float = 0.0     # probability of injecting a fabricated request
    preprepare_delay_s: float = 0.0      # primary-side proposal delay
    propose_duplicates: bool = False     # primary re-proposes logged requests
    crash_at_s: float | None = None      # fail-stop at a point in time

    @property
    def is_byzantine(self) -> bool:
        return (
            self.fabricate_per_cycle > 0
            or self.preprepare_delay_s > 0
            or self.propose_duplicates
        )

    @property
    def is_faulty(self) -> bool:
        """Byzantine *or* crash-faulty — the set the oracle must excuse.

        ``is_byzantine`` deliberately excludes fail-stop crashes (a crashed
        node sends nothing forgeable), but for ``faulty_node_ids()`` and the
        oracle's ``--faulty`` accounting a crash-only node is just as exempt
        from liveness expectations, so both kinds funnel through here.
        """
        return self.is_byzantine or self.crash_at_s is not None


class FabricatingNode(ZugChainNode):
    """A backup that injects fabricated requests for a fraction of bus cycles.

    The fabricated data is signed by the faulty node (it cannot forge other
    identities) and broadcast directly, skipping the soft timeout — the most
    aggressive load profile the layer's rate limiting must absorb.
    """

    def __init__(self, *args, fabricate_per_cycle: float, rng: random.Random, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fabricate_per_cycle = fabricate_per_cycle
        self._rng = rng
        self.fabricated = 0

    def on_bus_cycle(self, cycle: BusCycleData) -> None:
        super().on_bus_cycle(cycle)
        if self._rng.random() < self._fabricate_per_cycle:
            self._inject_fabricated(cycle)

    def _inject_fabricated(self, cycle: BusCycleData) -> None:
        self.fabricated += 1
        payload = self._rng.randbytes(max(32, cycle.data_size()))
        fabricated = Request(
            payload=payload,
            bus_cycle=cycle.cycle_no,
            recv_timestamp_us=int(self.env.now() * 1e6),
            source_link="fabricated",
        )
        signed = SignedRequest.create(fabricated, self.id, self.replica.keypair)
        self.env.broadcast(ZugBroadcast(request=signed))


class DelayingPrimaryReplica(PbftReplica):
    """A primary that delays its preprepares by a fixed amount.

    The paper's setting delays by 250 ms — exactly the soft timeout, so the
    delay "trigger[s] soft but not hard timeouts ... proposing it before a
    view change is triggered" (§V-B).
    """

    def __init__(self, *args, preprepare_delay_s: float, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._preprepare_delay_s = preprepare_delay_s
        self.delayed_proposals = 0

    def _broadcast_preprepare(self, preprepare) -> None:
        if self._preprepare_delay_s > 0 and self.is_primary:
            self.delayed_proposals += 1
            self.env.set_timer(
                self._preprepare_delay_s,
                lambda: self.env.broadcast(preprepare),
            )
        else:
            super()._broadcast_preprepare(preprepare)


class DuplicateProposingLayer(ZugChainLayer):
    """A faulty primary's layer that skips duplicate filtering when proposing.

    Correct replicas detect the duplicate at DECIDE (Alg. 1 ln. 17) and
    suspect the primary.
    """

    def receive(self, request: Request) -> None:
        if self.is_primary:
            # Propose unconditionally — no inLog check, no queue dedup.
            signed = SignedRequest.create(request, self.id, self.keypair)
            self.stats.proposed += 1
            self._propose(signed)
            return
        super().receive(request)


def make_zugchain_node(spec: ByzantineSpec, rng: random.Random, **node_kwargs) -> ZugChainNode:
    """Build a (possibly Byzantine) ZugChain node per ``spec``.

    Composition order: a fabricating node is a node subclass; a delaying
    primary swaps the replica; a duplicate-proposing primary swaps the
    layer.  Specs combining all three are possible but not used by the
    paper's experiments.
    """
    if spec.fabricate_per_cycle > 0:
        node = FabricatingNode(
            fabricate_per_cycle=spec.fabricate_per_cycle, rng=rng, **node_kwargs
        )
    else:
        node = ZugChainNode(**node_kwargs)

    if spec.preprepare_delay_s > 0:
        delaying = DelayingPrimaryReplica(
            env=node.env,
            config=node.replica.config,
            keypair=node.replica.keypair,
            keystore=node.replica.keystore,
            on_decide=node._decided,
            on_new_primary=node._new_primary,
            preprepare_delay_s=spec.preprepare_delay_s,
            tracer=node.tracer,
        )
        node.replica = delaying
        node.statesync.replica = delaying
        node.layer._propose = delaying.propose
        node.layer._suspect_bft = delaying.suspect
        node.builder._record_checkpoint = delaying.record_checkpoint

    if spec.propose_duplicates:
        faulty_layer = DuplicateProposingLayer(
            env=node.env,
            config=node.layer.config,
            keypair=node.layer.keypair,
            keystore=node.layer.keystore,
            propose=node.replica.propose,
            suspect=node.replica.suspect,
            on_log=node._log,
            initial_primary=node.layer.primary,
            tracer=node.tracer,
        )
        node.layer = faulty_layer

    return node
