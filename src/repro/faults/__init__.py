"""Byzantine behaviour library for fault-injection experiments (Fig. 8/9)."""

from repro.faults.behaviors import (
    ByzantineSpec,
    FabricatingNode,
    DelayingPrimaryReplica,
    DuplicateProposingLayer,
    make_zugchain_node,
)

__all__ = [
    "ByzantineSpec",
    "FabricatingNode",
    "DelayingPrimaryReplica",
    "DuplicateProposingLayer",
    "make_zugchain_node",
]
