"""Calibrated CPU and memory cost model.

The paper measures latency, CPU, and memory on Freescale i.MX6 quad
Cortex-A9 @800 MHz nodes.  We replace the hardware with explicit per-
operation charges.  Each constant below documents its rationale; the
*relative* results (baseline ≈4× ordering work, overload at 32 ms bus
cycles) follow from message counts, which the protocol code reproduces
exactly, while these constants set the absolute scale.

Calibration anchors from the paper (§V-B):

* ZugChain orders a 1 kB request in ≈14 ms at a 64 ms bus cycle.  With
  Ed25519 sign ≈0.6 ms / verify ≈1.6 ms on an 800 MHz Cortex-A9 (consistent
  with published ``ring``/donna benchmarks for that class of core), one PBFT
  instance costs ≈12–13 ms of sequential crypto on the critical path plus
  ≈1–2 ms of networking — matching the measured 14 ms without tuning.
* Writing a block of ten 8 kB requests to flash takes 5.03 ms → modeled as
  1.5 ms base + ~44 ns/byte.
* The protocol pipeline is sequential per node (ordering in BFT
  implementations is a serial pipeline); auxiliary work (bus parsing, disk,
  export) runs on the remaining cores and is charged to utilization but not
  to ordering latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.kernel import Kernel
from repro.sim.monitor import TimeSeries


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU charges (seconds) and sizing constants."""

    # Asymmetric crypto on an 800 MHz Cortex-A9 (see module docstring);
    # consistent with NEON-optimized Ed25519 (~0.4 Mcycle sign / 1 Mcycle verify).
    sign_s: float = 0.50e-3
    verify_s: float = 1.25e-3
    # SHA-256 on ARMv7 without crypto extensions: ~48 cycles/byte @800 MHz.
    hash_per_byte_s: float = 60e-9
    hash_base_s: float = 2e-6
    # Serialization / deserialization (Protobuf-class codec on this core).
    serialize_per_byte_s: float = 25e-9
    serialize_base_s: float = 5e-6
    # Generic per-message handling (dispatch, bookkeeping).
    message_overhead_s: float = 0.12e-3
    # Flash write: 5.03 ms for an 80 kB block (paper §V-B).
    disk_write_base_s: float = 1.5e-3
    disk_write_per_byte_s: float = 44e-9
    # Cores per node (quad-core i.MX6); utilization denominator.
    cores: int = 4
    core_hz: float = 800e6

    def sign_cost(self) -> float:
        return self.sign_s

    def verify_cost(self, count: int = 1) -> float:
        return self.verify_s * count

    def hash_cost(self, nbytes: int) -> float:
        return self.hash_base_s + self.hash_per_byte_s * nbytes

    def serialize_cost(self, nbytes: int) -> float:
        return self.serialize_base_s + self.serialize_per_byte_s * nbytes

    def disk_write_cost(self, nbytes: int) -> float:
        return self.disk_write_base_s + self.disk_write_per_byte_s * nbytes


class CpuAccount:
    """CPU model of one node: a sequential protocol pipeline plus background work.

    ``submit`` queues work on the ordering pipeline (single worker — the
    consensus critical path); ``charge_background`` accounts work done on the
    other cores (bus parsing, disk writes, export serving) that consumes CPU
    but does not delay ordering.  Utilization is measured against all cores.
    """

    def __init__(self, kernel: Kernel, model: CostModel, name: str = "node") -> None:
        self._kernel = kernel
        self._model = model
        self.name = name
        self._pipeline_busy_until = 0.0
        self._pipeline_busy_total = 0.0
        self._background_total = 0.0
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._window_start = 0.0
        self._window_busy = 0.0

    @property
    def model(self) -> CostModel:
        return self._model

    @property
    def queue_depth(self) -> int:
        return self._queue_depth

    @property
    def max_queue_depth(self) -> int:
        return self._max_queue_depth

    @property
    def pipeline_backlog(self) -> float:
        """Seconds of queued pipeline work not yet completed."""
        return max(0.0, self._pipeline_busy_until - self._kernel.now)

    def submit(self, duration: float, callback: Callable[[], None]) -> float:
        """Queue ``duration`` seconds of pipeline work; fire ``callback`` when done.

        Returns the completion time.  Work starts when the pipeline frees up,
        which is what makes an overloaded baseline's latency explode.
        """
        now = self._kernel.now
        start = max(now, self._pipeline_busy_until)
        end = start + duration
        self._pipeline_busy_until = end
        self._pipeline_busy_total += duration
        self._window_busy += duration
        self._queue_depth += 1
        self._max_queue_depth = max(self._max_queue_depth, self._queue_depth)

        def _complete() -> None:
            self._queue_depth -= 1
            callback()

        self._kernel.schedule_at(end, _complete)
        return end

    def charge_background(self, duration: float) -> None:
        """Account CPU work running off the ordering pipeline."""
        self._background_total += duration
        self._window_busy += duration

    def busy_total(self) -> float:
        return self._pipeline_busy_total + self._background_total

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of *total* node CPU used (1.0 == all cores busy).

        The paper reports CPU with 400 % meaning all four cores; our 1.0
        corresponds to their 400 %.
        """
        if elapsed is None:
            elapsed = self._kernel.now
        if elapsed <= 0:
            return 0.0
        return self.busy_total() / (elapsed * self._model.cores)

    def window_utilization(self) -> float:
        """Utilization since the last :meth:`reset_window` call."""
        elapsed = self._kernel.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._window_busy / (elapsed * self._model.cores)

    def reset_window(self) -> None:
        self._window_start = self._kernel.now
        self._window_busy = 0.0


class MemoryAccount:
    """Byte-accurate memory accounting by category.

    Categories mirror the data structures whose growth matters to the paper:
    request queues, consensus message logs, the unpruned blockchain, and a
    fixed process overhead.  ``peak`` captures the blow-up of an overloaded
    baseline (Fig. 7's 6.3× at 32 ms cycles).
    """

    #: Resident overhead of the recorder process itself (binary, runtime,
    #: buffers) — constant between ZugChain and baseline.
    FIXED_OVERHEAD_BYTES = 1024 * 1024

    def __init__(self, name: str = "node") -> None:
        self.name = name
        self._categories: dict[str, int] = {}
        self._peak = self.FIXED_OVERHEAD_BYTES
        self._series = TimeSeries(name=f"{name}.memory")

    def add(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("use release() to free memory")
        self._categories[category] = self._categories.get(category, 0) + nbytes
        self._peak = max(self._peak, self.current())

    def release(self, category: str, nbytes: int) -> None:
        held = self._categories.get(category, 0)
        if nbytes > held:
            raise ValueError(
                f"releasing {nbytes} from {category!r} but only {held} held"
            )
        self._categories[category] = held - nbytes

    def category(self, category: str) -> int:
        return self._categories.get(category, 0)

    def current(self) -> int:
        return self.FIXED_OVERHEAD_BYTES + sum(self._categories.values())

    @property
    def peak(self) -> int:
        return self._peak

    def sample(self, now: float) -> None:
        self._series.record(now, self.current())

    @property
    def series(self) -> TimeSeries:
        return self._series
