"""Byte-accurate network model for the consensus Ethernet and the LTE uplink.

Each node has one egress interface per network (the testbed's M-COMs use a
100 Mbit/s Ethernet for consensus; the export path is an 8.5 Mbit/s LTE
link).  A message occupies its sender's egress for ``size * 8 / bandwidth``
seconds (FIFO serialization — concurrent sends queue), then propagates for
``latency (+ jitter)``.  This queueing is what lets an overloaded baseline's
network behaviour emerge rather than being scripted.

The model also supports partitions, crashed nodes, and probabilistic loss
for fault-injection tests.  Per-node byte counters feed the network-
utilization results of Fig. 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.kernel import Kernel
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class LinkSpec:
    """Physical characteristics of a network link."""

    latency_s: float = 0.2e-3
    jitter_s: float = 0.05e-3
    bandwidth_bps: float = 100e6
    loss_prob: float = 0.0

    # Common presets used by scenarios.
    @staticmethod
    def train_ethernet() -> "LinkSpec":
        """The testbed's 100 Mbit/s on-train Ethernet."""
        return LinkSpec(latency_s=0.2e-3, jitter_s=0.05e-3, bandwidth_bps=100e6)

    @staticmethod
    def lte_uplink() -> "LinkSpec":
        """LTE to the data center: ~8.5 Mbit/s, tens of ms RTT (§V-B)."""
        return LinkSpec(latency_s=35e-3, jitter_s=8e-3, bandwidth_bps=8.5e6)


@dataclass
class NetworkStats:
    """Counters per node, reset-able for measurement windows."""

    bytes_sent: dict[str, int] = field(default_factory=dict)
    bytes_received: dict[str, int] = field(default_factory=dict)
    messages_sent: dict[str, int] = field(default_factory=dict)
    messages_dropped: int = 0

    def record_send(self, node: str, nbytes: int) -> None:
        self.bytes_sent[node] = self.bytes_sent.get(node, 0) + nbytes
        self.messages_sent[node] = self.messages_sent.get(node, 0) + 1

    def record_receive(self, node: str, nbytes: int) -> None:
        self.bytes_received[node] = self.bytes_received.get(node, 0) + nbytes

    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent.values())


class Network:
    """Message-passing fabric between named endpoints."""

    def __init__(
        self,
        kernel: Kernel,
        rng: random.Random,
        default_link: LinkSpec | None = None,
        name: str = "net",
    ) -> None:
        self._kernel = kernel
        self._rng = rng
        self.name = name
        self._default_link = default_link or LinkSpec.train_ethernet()
        self._links: dict[tuple[str, str], LinkSpec] = {}
        # Chaos-layer overrides: consulted before the permanent topology so
        # fault schedules can degrade links for a window and then restore the
        # original characteristics exactly.  Keys may use "*" as a wildcard
        # for either endpoint; the most specific match wins.
        self._link_overrides: dict[tuple[str, str], LinkSpec] = {}
        self._endpoints: dict[str, Callable[[str, Any, int], None]] = {}
        self._egress_busy_until: dict[str, float] = {}
        self._partitioned: set[frozenset[str]] = set()
        self._crashed: set[str] = set()
        self.stats = NetworkStats()
        self._window_start = 0.0
        self._window_bytes: dict[str, int] = {}
        #: Causal context of the delivery currently being dispatched, if
        #: any — set only for the duration of the endpoint callback so
        #: receivers (``NodeHost``) can pick it up synchronously.
        self.inbound_context: Any = None

    # -- topology -----------------------------------------------------------

    def register(self, node_id: str, receive: Callable[[str, Any, int], None]) -> None:
        """Attach an endpoint; ``receive(src, payload, size)`` is its inbox."""
        if node_id in self._endpoints:
            raise ConfigError(f"endpoint {node_id!r} already registered")
        self._endpoints[node_id] = receive
        self._egress_busy_until[node_id] = 0.0

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Override the link characteristics for a directed pair."""
        self._links[(src, dst)] = spec

    def set_link_override(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Temporarily supersede the link characteristics for a pair.

        Either endpoint may be ``"*"`` to degrade a whole node's ingress or
        egress (or, with both wild, the entire fabric).  Overrides shadow
        :meth:`set_link` until :meth:`clear_link_override` removes them,
        which restores the permanent topology untouched.
        """
        self._link_overrides[(src, dst)] = spec

    def clear_link_override(self, src: str, dst: str) -> None:
        self._link_overrides.pop((src, dst), None)

    def clear_all_link_overrides(self) -> None:
        self._link_overrides.clear()

    def link(self, src: str, dst: str) -> LinkSpec:
        if self._link_overrides:
            for key in ((src, dst), (src, "*"), ("*", dst), ("*", "*")):
                spec = self._link_overrides.get(key)
                if spec is not None:
                    return spec
        return self._links.get((src, dst), self._default_link)

    @property
    def default_link(self) -> LinkSpec:
        """The fabric-wide baseline link (fault schedules derive from it)."""
        return self._default_link

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    # -- fault control ------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Block traffic in both directions between ``a`` and ``b``."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def crash(self, node_id: str) -> None:
        """Silently drop all traffic to and from ``node_id``."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        return node_id in self._crashed

    # -- transmission -------------------------------------------------------

    def send(
        self, src: str, dst: str, payload: Any, size_bytes: int, ctx: Any = None
    ) -> bool:
        """Transmit ``payload`` of ``size_bytes`` from ``src`` to ``dst``.

        Returns ``True`` if the message was put on the wire.  The payload
        object itself is delivered by reference (the wire layer has already
        made sizes explicit; re-encoding on every simulated hop would only
        burn host CPU).  ``ctx`` is an opaque causal context carried in
        the delivery envelope and exposed via :attr:`inbound_context`
        while the destination endpoint callback runs.
        """
        if dst not in self._endpoints:
            raise ConfigError(f"unknown destination {dst!r}")
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            return False
        if frozenset((src, dst)) in self._partitioned:
            self.stats.messages_dropped += 1
            return False

        spec = self.link(src, dst)
        if spec.loss_prob > 0 and self._rng.random() < spec.loss_prob:
            self.stats.messages_dropped += 1
            return False

        self.stats.record_send(src, size_bytes)
        self._window_bytes[src] = self._window_bytes.get(src, 0) + size_bytes

        now = self._kernel.now
        transmit = size_bytes * 8.0 / spec.bandwidth_bps
        start = max(now, self._egress_busy_until.get(src, 0.0))
        self._egress_busy_until[src] = start + transmit
        jitter = self._rng.uniform(0.0, spec.jitter_s) if spec.jitter_s > 0 else 0.0
        arrival = start + transmit + spec.latency_s + jitter

        def _deliver() -> None:
            if dst in self._crashed or frozenset((src, dst)) in self._partitioned:
                self.stats.messages_dropped += 1
                return
            self.stats.record_receive(dst, size_bytes)
            self.inbound_context = ctx
            try:
                self._endpoints[dst](src, payload, size_bytes)
            finally:
                self.inbound_context = None

        self._kernel.schedule_at(arrival, _deliver)
        return True

    def broadcast(self, src: str, payload: Any, size_bytes: int, include_self: bool = False) -> int:
        """Send to every registered endpoint (optionally including ``src``).

        Each copy serializes separately on the sender's egress, as unicast
        fan-out over Ethernet does.  Returns the number of copies sent.
        """
        sent = 0
        for dst in self.endpoints():
            if dst == src and not include_self:
                continue
            if self.send(src, dst, payload, size_bytes):
                sent += 1
        return sent

    # -- measurement --------------------------------------------------------

    def egress_backlog(self, node_id: str) -> float:
        """Seconds of queued egress serialization at ``node_id``."""
        return max(0.0, self._egress_busy_until.get(node_id, 0.0) - self._kernel.now)

    def utilization(self, node_id: str, elapsed: float | None = None) -> float:
        """Fraction of ``node_id``'s egress bandwidth used since t=0."""
        if elapsed is None:
            elapsed = self._kernel.now
        if elapsed <= 0:
            return 0.0
        spec = self.link(node_id, node_id)
        sent = self.stats.bytes_sent.get(node_id, 0)
        return sent * 8.0 / (spec.bandwidth_bps * elapsed)

    def window_utilization(self, node_id: str) -> float:
        """Egress utilization since the last :meth:`reset_window`."""
        elapsed = self._kernel.now - self._window_start
        if elapsed <= 0:
            return 0.0
        spec = self.link(node_id, node_id)
        sent = self._window_bytes.get(node_id, 0)
        return sent * 8.0 / (spec.bandwidth_bps * elapsed)

    def reset_window(self) -> None:
        self._window_start = self._kernel.now
        self._window_bytes = {}
