"""Measurement helpers: time series and latency statistics.

Samples arrive in completion-time order (virtual time never runs
backwards), so the warmup-cutoff views (:meth:`TimeSeries.after`,
:meth:`LatencyRecorder.since`) locate the cutoff with ``bisect`` over the
sorted time list and slice — O(log n + k) instead of the full O(n) scan,
which previously made repeated per-sample collection quadratic.
"""

from __future__ import annotations

import statistics
from bisect import bisect_left
from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """Append-only (time, value) samples with summary statistics."""

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return statistics.fmean(self.values) if self.values else 0.0

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def after(self, time: float) -> "TimeSeries":
        """Sub-series of samples recorded at or after ``time``."""
        start = bisect_left(self.times, time)
        return TimeSeries(
            name=self.name, times=self.times[start:], values=self.values[start:]
        )


class LatencyRecorder:
    """Latency samples with percentile summaries.

    The paper reports request latency from bus reception to finalized
    commit; scenario code records each completed request here.
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: list[float] = []
        self._times: list[float] = []

    def record(self, completion_time: float, latency: float) -> None:
        self._times.append(completion_time)
        self._samples.append(latency)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    @property
    def times(self) -> list[float]:
        return list(self._times)

    def mean(self) -> float:
        return statistics.fmean(self._samples) if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def median(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def timeline(self) -> list[tuple[float, float]]:
        """(completion time, latency) pairs, e.g. for the Fig. 8 timeline."""
        return list(zip(self._times, self._samples))

    def since(self, time: float) -> "LatencyRecorder":
        """Samples completed at or after ``time``."""
        start = bisect_left(self._times, time)
        out = LatencyRecorder(name=self.name)
        out._times = self._times[start:]
        out._samples = self._samples[start:]
        return out
