"""Deterministic discrete-event simulation substrate.

Replaces the paper's physical testbed (four M-COM boxes on 100 Mbit/s
Ethernet plus an LTE uplink) with a virtual-time kernel, a byte-accurate
network model, and a calibrated CPU/memory cost model.  Protocol code runs
unchanged on top via the :class:`~repro.sim.kernel.Kernel` timer/event API.
"""

from repro.sim.kernel import Kernel, Timer
from repro.sim.network import Network, LinkSpec, NetworkStats
from repro.sim.resources import CostModel, CpuAccount, MemoryAccount
from repro.sim.monitor import LatencyRecorder, TimeSeries

__all__ = [
    "Kernel",
    "Timer",
    "Network",
    "LinkSpec",
    "NetworkStats",
    "CostModel",
    "CpuAccount",
    "MemoryAccount",
    "LatencyRecorder",
    "TimeSeries",
]
