"""Discrete-event kernel: virtual clock, event heap, cancellable timers.

Events at equal timestamps fire in scheduling order (a monotonically
increasing sequence number breaks heap ties), which makes every run with the
same seed bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.util.errors import ProtocolError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    ZugChain's communication layer leans heavily on cancellable timers
    (soft/hard timeouts, Alg. 1 lines 11/16/23/31), so cancellation is a
    first-class, O(1) operation here.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class RepeatingTimer:
    """Handle for a self-rescheduling callback; supports cancellation.

    Link flapping and other periodic fault processes need a timer that
    re-arms itself after every firing; cancellation must also reach the
    *next* underlying one-shot event, so the handle re-targets itself each
    period instead of exposing a single ``_Event``.
    """

    __slots__ = ("_kernel", "_interval", "_callback", "_timer", "_cancelled")

    def __init__(
        self, kernel: "Kernel", interval: float, callback: Callable[[], None]
    ) -> None:
        if interval <= 0:
            raise ProtocolError(f"repeating interval must be positive, got {interval}")
        self._kernel = kernel
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        self._timer = kernel.schedule(interval, self._fire)

    @property
    def active(self) -> bool:
        return not self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        self._timer.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        # Re-arm before the callback so a callback that cancels the handle
        # also kills the event armed here.
        self._timer = self._kernel.schedule(self._interval, self._fire)
        self._callback()


class Kernel:
    """Virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_Event] = []
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ProtocolError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_repeating(
        self, interval: float, callback: Callable[[], None]
    ) -> RepeatingTimer:
        """Run ``callback`` every ``interval`` seconds until cancelled."""
        return RepeatingTimer(self, interval, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ProtocolError(f"cannot schedule at {time} < now {self._now}")
        event = _Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return Timer(event)

    def step(self) -> bool:
        """Fire the next event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire all events with time <= ``deadline``; clock ends at deadline.

        Events scheduled exactly at the deadline do fire.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > deadline:
                break
            self.step()
        if deadline > self._now:
            self._now = deadline

    def run(self, max_events: int | None = None) -> None:
        """Drain the event heap (optionally bounded by ``max_events``)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return
