"""Command-line interface: run scenarios, sweeps, exports, and analyses.

Examples::

    python -m repro run --system zugchain --cycle-ms 64 --duration 60
    python -m repro run --system baseline --cycle-ms 32 --payload 1024
    python -m repro run --cycle-ms 32 64 128 256 --jobs 4 --duration 24
    python -m repro bench --jobs 4 --compare-serial
    python -m repro export --blocks 2000 --datacenters 2
    python -m repro reliability --destroy-prob 0.1 --target 1e-4
    python -m repro requirements --cycle-ms 64 --payload 8192

Passing more than one value to ``--cycle-ms`` / ``--payload`` (or more
than one ``--system``) turns ``run`` into a sweep over the cartesian
product of the axes, executed through :mod:`repro.sweep` — ``--jobs N``
shards the points across N worker processes and the merged output is
byte-identical to the serial run.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table
from repro.export.scenario import ExportScenario, ExportScenarioConfig
from repro.jru import check_requirements, required_nodes_for_target, survival_probability
from repro.obs.sinks import write_trace
from repro.obs.trace import RecordingTracer
from repro.runtime.wallclock import today_str, wall_timer
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.sweep import (
    BenchRecorder,
    cycle_sweep_spec,
    default_bench_path,
    grid_sweep_spec,
    payload_sweep_spec,
    run_sweep,
)


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser("run", help="run a recorder scenario and report metrics")
    parser.add_argument("--system", choices=("zugchain", "baseline"), default="zugchain")
    parser.add_argument("--runtime", choices=("sim", "tcp", "mp"), default="sim",
                        help="sim: deterministic simulator; tcp: real asyncio "
                             "sockets on localhost; mp: one OS process per "
                             "node over multiprocessing queues (both zugchain "
                             "only, wall-clock paced, trace timestamps are "
                             "debug-grade)")
    parser.add_argument("--cycle-ms", type=float, nargs="+", default=[64.0],
                        metavar="MS", help="bus cycle time(s); more than one "
                                           "value turns the run into a sweep")
    parser.add_argument("--payload", type=int, nargs="+", default=[1024],
                        metavar="BYTES", help="payload bytes per cycle; more "
                                              "than one value sweeps the axis")
    parser.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--warmup", type=float, default=3.0)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep mode (points are "
                             "seed-isolated; the merged output is byte-"
                             "identical to --jobs 1)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a JSONL trace (summarize with "
                             "'python -m repro.obs summary PATH'; "
                             "single-point runs only)")
    parser.add_argument("--record-bench", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="time the run and write a BENCH_<date>.json "
                             "artifact (default name when PATH is omitted)")


def _add_bench_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench", help="time the figure sweeps and write a BENCH_<date>.json artifact"
    )
    parser.add_argument("--suite",
                        choices=("cycles", "payloads", "obs", "lint", "chaos", "all"),
                        default="all", help="which figure sweeps to time "
                                            "(obs: observability hot-path "
                                            "micro-costs; lint: zuglint "
                                            "per-stage wall times, shared vs "
                                            "standalone call graph; chaos: "
                                            "campaign wall times and schedule-"
                                            "application overhead — neither "
                                            "lint nor chaos is part of 'all')")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per sweep")
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds per point (default: the "
                             "benchmark suite's smoke/full setting)")
    parser.add_argument("--warmup", type=float, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--compare-serial", action="store_true",
                        help="also run each sweep serially and record the "
                             "serial-vs-parallel speedup (checks the merged "
                             "outputs are byte-identical)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="artifact path (default: ./BENCH_<date>.json)")


def _add_chaos_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "chaos", help="run a seeded fault-injection campaign gated on the "
                      "invariant oracle"
    )
    parser.add_argument("--campaign", default=None, metavar="NAME",
                        help="campaign name (see --list)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--runs", type=int, default=1, metavar="K",
                        help="independent schedule draws (indices 0..K-1)")
    parser.add_argument("--replay", type=int, default=None, metavar="INDEX",
                        help="re-execute exactly one (campaign, seed, INDEX) "
                             "triple; the trace bytes, findings, and head "
                             "hashes must match the original run")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write one JSONL trace per run into DIR")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the full run records as JSON")
    parser.add_argument("--list", action="store_true",
                        help="list known campaigns and exit")


def _add_export_parser(subparsers) -> None:
    parser = subparsers.add_parser("export", help="run one export round over simulated LTE")
    parser.add_argument("--blocks", type=int, default=1000)
    parser.add_argument("--datacenters", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)


def _add_reliability_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "reliability", help="Braband-style survival analysis for a node count"
    )
    parser.add_argument("--destroy-prob", type=float, default=0.1,
                        help="per-node destruction probability in an incident")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--target", type=float, default=None,
                        help="target data-loss probability; prints required node count")
    parser.add_argument("--correlation", type=float, default=0.0)


def _add_requirements_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "requirements", help="run a scenario and check the JRU requirements"
    )
    parser.add_argument("--cycle-ms", type=float, default=64.0)
    parser.add_argument("--payload", type=int, default=8192)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=42)


def _write_bench(recorder: BenchRecorder, path_arg: str, out) -> str:
    date = today_str()
    path = path_arg or default_bench_path(date)
    recorder.preload(path)
    recorder.write(path, date)
    print(f"bench         : wrote {path}", file=out)
    return path


def _cmd_run(args, out) -> int:
    if len(args.cycle_ms) > 1 or len(args.payload) > 1:
        return _cmd_run_sweep(args, out)
    if args.runtime == "tcp":
        return _cmd_run_tcp(args, out)
    if args.runtime == "mp":
        return _cmd_run_mp(args, out)
    tracer = RecordingTracer() if args.trace else None
    cluster = SimulatedCluster(ScenarioConfig(
        system=args.system,
        n=args.nodes,
        seed=args.seed,
        cycle_time_s=args.cycle_ms[0] / 1000.0,
        payload_bytes=args.payload[0],
    ), tracer=tracer)
    recorder = (BenchRecorder(wall_timer())
                if args.record_bench is not None else None)
    if recorder is not None:
        elapsed, result = recorder.time_call(
            lambda: cluster.run(duration_s=args.duration, warmup_s=args.warmup))
        recorder.record_suite(f"cli:run:{args.system}", [elapsed], units=1,
                              sim_seconds=args.duration, jobs=1)
    else:
        result = cluster.run(duration_s=args.duration, warmup_s=args.warmup)
    print(result.summary_row(), file=out)
    print(f"p99 latency   : {result.p99_latency_s * 1000:.2f} ms", file=out)
    print(f"logged        : {result.requests_logged}/{result.requests_expected}", file=out)
    print(f"view changes  : {result.view_changes}", file=out)
    chain = cluster.nodes[cluster.ids[0]].chain
    print(f"chain         : height {chain.height}, base {chain.base_height}, "
          f"head {chain.head.block_hash.hex()[:16]}…", file=out)
    if tracer is not None:
        count = write_trace(tracer.iter_events(), args.trace)
        print(f"trace         : {count} events -> {args.trace}", file=out)
    if recorder is not None:
        _write_bench(recorder, args.record_bench, out)
    return 0


def _cmd_run_sweep(args, out) -> int:
    """Multi-value axes: run the cartesian product through repro.sweep."""
    if args.runtime != "sim":
        print("repro run: sweep mode supports --runtime sim only", file=sys.stderr)
        return 2
    if args.trace:
        print("repro run: --trace applies to single-point runs only", file=sys.stderr)
        return 2
    if args.nodes != 4:
        print("repro run: sweep mode runs the paper's 4-node cluster", file=sys.stderr)
        return 2
    spec = grid_sweep_spec(
        f"cli:{args.system}",
        (args.system,),
        [ms / 1000.0 for ms in args.cycle_ms],
        args.payload,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
    )
    recorder = (BenchRecorder(wall_timer())
                if args.record_bench is not None else None)
    if recorder is not None:
        elapsed, sweep = recorder.time_call(
            lambda: run_sweep(spec, jobs=args.jobs))
        recorder.record_suite(f"cli:sweep:{args.system}", [elapsed],
                              units=len(spec),
                              sim_seconds=sum(p.duration_s for p in spec),
                              jobs=args.jobs)
    else:
        sweep = run_sweep(spec, jobs=args.jobs)
    rows = []
    for point, result in zip(spec, sweep.results):
        rows.append([
            f"{point.cycle_time_s * 1000:.0f} ms",
            f"{point.payload_bytes} B",
            f"{result.mean_latency_s * 1000:.2f} ms",
            f"{result.p99_latency_s * 1000:.2f} ms",
            f"{result.network_utilization * 100:.3f} %",
            f"{result.requests_logged}/{result.requests_expected}",
            f"{result.view_changes}",
        ])
    print(format_table(
        ["cycle", "payload", "mean lat", "p99 lat", "net util", "logged", "vc"],
        rows,
        title=f"sweep {spec.name}: {len(spec)} points, jobs={args.jobs} "
              f"({sweep.stats.executed} executed, {sweep.stats.cached} cached)",
    ), file=out)
    print(f"spec hash     : {spec.spec_hash()[:16]}…", file=out)
    if recorder is not None:
        _write_bench(recorder, args.record_bench, out)
    return 0


def _cmd_bench(args, out) -> int:
    from repro.sweep import figures

    duration = args.duration if args.duration is not None else figures.DURATION_S
    warmup = args.warmup if args.warmup is not None else figures.WARMUP_S
    overload = figures.OVERLOAD_DURATION_S if args.duration is None else None
    specs = []
    if args.suite in ("cycles", "all"):
        specs += [
            cycle_sweep_spec(system, duration_s=duration, warmup_s=warmup,
                             seed=args.seed, overload_duration_s=overload)
            for system in ("zugchain", "baseline")
        ]
    if args.suite in ("payloads", "all"):
        specs += [
            payload_sweep_spec(system, duration_s=duration, warmup_s=warmup,
                               seed=args.seed)
            for system in ("zugchain", "baseline")
        ]
    recorder = BenchRecorder(wall_timer())
    rows = []
    if args.suite == "lint":
        from repro.lint.bench import measure_lint_stages

        report = measure_lint_stages(("src", "tests"), wall_timer())
        for stage, times in report["stages"].items():
            recorder.record_suite(
                f"lint:{stage}:standalone", [times["standalone_s"]],
                units=report["files"], jobs=1,
                extra={"findings": times["findings"]})
            recorder.record_suite(
                f"lint:{stage}:shared", [times["shared_s"]],
                units=report["files"], jobs=1)
            print(f"lint {stage:5s}    : standalone {times['standalone_s']:.3f} s, "
                  f"shared {times['shared_s']:.3f} s "
                  f"({report['files']} files)", file=out)
        sm = report["stages"]["sm"]
        recorder.record_speedup(
            "lint:sm:shared_vs_standalone",
            before_s=sm["standalone_s"], after_s=sm["shared_s"], jobs=1,
            extra={"files": report["files"], "parse_s": report["parse_s"]})
    if args.suite in ("obs", "all"):
        from repro.obs.overhead import measure_obs_overhead

        timer = wall_timer()
        elapsed, costs = recorder.time_call(lambda: measure_obs_overhead(timer))
        recorder.record_suite("obs:overhead", [elapsed],
                              units=int(costs["calls"]), jobs=1, extra=costs)
        print("obs overhead  : "
              f"guard {costs['null_guard_ns']:.0f} ns/site, "
              f"causal stamp {costs['causal_stamp_ns']:.0f} ns/emission, "
              f"recording emit {costs['recording_emit_ns']:.0f} ns/event",
              file=out)
    if args.suite == "chaos":
        from dataclasses import replace as _replace
        from random import Random

        from repro.chaos import CAMPAIGNS, ChaosInjector, derive_run_seed, run_one
        from repro.scenarios.cluster import SimulatedCluster

        install_times = []
        for name, campaign in sorted(CAMPAIGNS.items()):
            elapsed, record = recorder.time_call(
                lambda campaign=campaign: run_one(campaign, args.seed, 0))
            entry = recorder.record_suite(
                f"chaos:{name}", [elapsed], units=record.n_faults, jobs=1,
                sim_seconds=campaign.duration_s + campaign.settle_s,
                extra={"passed": record.passed,
                       "findings": len(record.findings),
                       "faults_applied": record.faults_applied,
                       "trace_events": record.trace_events})
            rows.append([f"chaos:{name}", f"{record.n_faults}",
                         f"{elapsed:.2f} s", f"{entry['sim_speedup']:.1f}x"])
            # Schedule-application overhead in isolation: DSL expansion plus
            # timer arming against a fresh cluster, without the run itself.
            run_seed = derive_run_seed(name, args.seed, 0)
            schedule = campaign.generate(Random(run_seed)).canonical()
            cluster = SimulatedCluster(_replace(campaign.config, seed=run_seed))
            install_s, _ = recorder.time_call(
                lambda cluster=cluster, schedule=schedule:
                    ChaosInjector(cluster, schedule).install())
            install_times.append(install_s)
        recorder.record_suite(
            "chaos:schedule_install", install_times,
            units=len(install_times), jobs=1)
        print("chaos install : "
              f"{sum(install_times) / len(install_times) * 1e3:.2f} ms mean "
              f"schedule application ({len(install_times)} campaigns)",
              file=out)
    for spec in specs:
        elapsed, sweep = recorder.time_call(
            lambda spec=spec: run_sweep(spec, jobs=args.jobs))
        entry = recorder.record_suite(
            spec.name, [elapsed], units=len(spec),
            sim_seconds=sum(p.duration_s for p in spec), jobs=args.jobs)
        if args.compare_serial:
            serial_s, serial = recorder.time_call(
                lambda spec=spec: run_sweep(spec, jobs=1))
            identical = serial.to_json() == sweep.to_json()
            recorder.record_speedup(
                f"{spec.name}:serial_vs_jobs{args.jobs}",
                before_s=serial_s, after_s=elapsed, jobs=args.jobs,
                extra={"byte_identical": identical})
            if not identical:
                print(f"repro bench: {spec.name}: parallel output diverged "
                      f"from serial", file=sys.stderr)
                return 1
        rows.append([spec.name, f"{len(spec)}", f"{elapsed:.2f} s",
                     f"{entry['sim_speedup']:.1f}x"])
    print(format_table(
        ["suite", "points", "wall", "sim-x"], rows,
        title=f"bench suites (jobs={args.jobs})",
    ), file=out)
    date = today_str()
    path = args.out or default_bench_path(date)
    recorder.preload(path)
    recorder.write(path, date)
    print(f"artifact      : {path}", file=out)
    return 0


def _cmd_chaos(args, out) -> int:
    import json

    from repro.chaos import CAMPAIGNS, replay_run, run_campaign

    if args.list:
        for name, campaign in sorted(CAMPAIGNS.items()):
            gate = "must-fail" if campaign.must_fail else "must-pass"
            print(f"{name:22s} {campaign.duration_s:g} s  {gate:9s} "
                  f"{campaign.description}", file=out)
        return 0
    if not args.campaign:
        print("repro chaos: --campaign is required (or --list)", file=sys.stderr)
        return 2
    if args.replay is not None:
        trace_path = None
        if args.trace_dir is not None:
            trace_path = (f"{args.trace_dir}/{args.campaign}-s{args.seed}"
                          f"-i{args.replay}.trace.jsonl")
        records = [replay_run(args.campaign, args.seed, args.replay,
                              trace_path=trace_path)]
    else:
        records = run_campaign(args.campaign, seed=args.seed, runs=args.runs,
                               trace_dir=args.trace_dir)
    for record in records:
        verdict = "PASS" if record.passed else "FAIL"
        print(f"{record.campaign} seed={record.seed} index={record.index}: "
              f"{verdict}  faults={record.n_faults} "
              f"findings={len(record.findings)} "
              f"converged={record.converged}", file=out)
        print(f"  schedule {record.schedule_hash[:16]}…  "
              f"trace {record.trace_sha256[:16]}… "
              f"({record.trace_events} events)", file=out)
        if not record.passed:
            for finding in record.findings[:5]:
                print(f"  {finding['code']}: {finding['message']}", file=out)
            print(f"  replay: python -m repro chaos --campaign {record.campaign} "
                  f"--seed {record.seed} --replay {record.index}", file=out)
    if args.out is not None:
        with open(args.out, "w") as handle:
            json.dump({"records": [r.to_dict() for r in records]}, handle,
                      indent=2, sort_keys=True)
        print(f"records       : {args.out}", file=out)
    return 0 if all(record.passed for record in records) else 1


def _cmd_run_tcp(args, out) -> int:
    from repro.runtime.tcp_scenario import TcpScenarioConfig, run_tcp_scenario

    if args.system != "zugchain":
        print("repro run: --runtime tcp supports --system zugchain only",
              file=sys.stderr)
        return 2
    cycle_time_s = args.cycle_ms[0] / 1000.0
    cycles = max(1, round(args.duration / cycle_time_s))
    tracer = RecordingTracer() if args.trace else None
    config = TcpScenarioConfig(
        n=args.nodes,
        cycles=cycles,
        cycle_time_s=cycle_time_s,
        payload_bytes=args.payload[0],
    )
    result = run_tcp_scenario(config, tracer=tracer)
    print(f"runtime       : tcp ({args.nodes} nodes, {cycles} bus cycles "
          f"@ {args.cycle_ms[0]:g} ms)", file=out)
    print(f"logged        : {result.requests_logged}/{result.requests_expected}"
          f"{'' if result.completed else '  (INCOMPLETE)'}", file=out)
    heights = sorted(set(result.chain_heights.values()))
    print(f"chain         : heights {heights}, heads "
          f"{'consistent' if result.heads_consistent else 'DIVERGED'}", file=out)
    if tracer is not None:
        count = write_trace(tracer.iter_events(), args.trace)
        print(f"trace         : {count} events -> {args.trace} "
              f"(relative per-node timestamps, debug-grade)", file=out)
    return 0 if result.completed and result.heads_consistent else 1


def _cmd_run_mp(args, out) -> int:
    from repro.runtime.multiprocess import (
        MultiprocessScenarioConfig,
        run_multiprocess_scenario,
    )

    if args.system != "zugchain":
        print("repro run: --runtime mp supports --system zugchain only",
              file=sys.stderr)
        return 2
    cycle_time_s = args.cycle_ms[0] / 1000.0
    cycles = max(1, round(args.duration / cycle_time_s))
    config = MultiprocessScenarioConfig(
        n=args.nodes,
        cycles=cycles,
        cycle_time_s=cycle_time_s,
        payload_bytes=args.payload[0],
        trace=bool(args.trace),
    )
    result = run_multiprocess_scenario(config)
    print(f"runtime       : mp ({args.nodes} node processes, {cycles} bus "
          f"cycles @ {args.cycle_ms[0]:g} ms)", file=out)
    print(f"logged        : {result.requests_logged}/{result.requests_expected}"
          f"{'' if result.completed else '  (INCOMPLETE)'}", file=out)
    heights = sorted(set(result.chain_heights.values()))
    print(f"chain         : heights {heights}, heads "
          f"{'consistent' if result.heads_consistent else 'DIVERGED'}", file=out)
    for node_id, error in sorted(result.errors.items()):
        print(f"worker error  : {node_id}: {error}", file=out)
    if args.trace:
        count = write_trace(result.trace_events, args.trace)
        print(f"trace         : {count} events -> {args.trace} "
              f"(merged worker shards, per-node relative timestamps)", file=out)
    ok = result.completed and result.heads_consistent and not result.errors
    return 0 if ok else 1


def _cmd_export(args, out) -> int:
    scenario = ExportScenario(ExportScenarioConfig(
        n_blocks=args.blocks,
        n_datacenters=args.datacenters,
        seed=args.seed,
    ))
    round_ = scenario.run_export()
    print(f"exported {round_.blocks_exported} blocks from replica {round_.full_from}", file=out)
    print(f"read   : {round_.read_s:.2f} s ({round_.read_s / round_.total_s * 100:.0f} %)", file=out)
    print(f"verify : {round_.verify_s:.3f} s", file=out)
    print(f"delete : {round_.delete_s:.2f} s", file=out)
    print(f"total  : {round_.total_s:.2f} s", file=out)
    return 0


def _cmd_reliability(args, out) -> int:
    if args.target is not None:
        needed = required_nodes_for_target(args.destroy_prob, args.target, args.correlation)
        if needed is None:
            print("target unreachable (common-cause floor or node cap)", file=out)
            return 1
        print(f"nodes required for loss probability <= {args.target:g}: {needed}", file=out)
        return 0
    survive = survival_probability([args.destroy_prob] * args.nodes,
                                   correlation=args.correlation)
    print(f"P(at least one record survives) with {args.nodes} nodes: {survive:.6f}", file=out)
    print(f"P(total data loss): {1 - survive:.2e}", file=out)
    return 0


def _cmd_requirements(args, out) -> int:
    cluster = SimulatedCluster(ScenarioConfig(
        system="zugchain",
        seed=args.seed,
        cycle_time_s=args.cycle_ms / 1000.0,
        payload_bytes=args.payload,
    ))
    result = cluster.run(duration_s=args.duration, warmup_s=3.0)
    report = check_requirements(result, persist_payload_bytes=args.payload)
    for line in report.lines():
        print(line, file=out)
    return 0 if report.all_passed else 1


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZugChain reproduction: blockchain-based juridical recording",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_bench_parser(subparsers)
    _add_chaos_parser(subparsers)
    _add_export_parser(subparsers)
    _add_reliability_parser(subparsers)
    _add_requirements_parser(subparsers)
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "bench": _cmd_bench,
        "chaos": _cmd_chaos,
        "export": _cmd_export,
        "reliability": _cmd_reliability,
        "requirements": _cmd_requirements,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
