"""Command-line interface: run scenarios, exports, and analyses.

Examples::

    python -m repro run --system zugchain --cycle-ms 64 --duration 60
    python -m repro run --system baseline --cycle-ms 32 --payload 1024
    python -m repro export --blocks 2000 --datacenters 2
    python -m repro reliability --destroy-prob 0.1 --target 1e-4
    python -m repro requirements --cycle-ms 64 --payload 8192
"""

from __future__ import annotations

import argparse
import sys

from repro.export.scenario import ExportScenario, ExportScenarioConfig
from repro.jru import check_requirements, required_nodes_for_target, survival_probability
from repro.obs.sinks import write_trace
from repro.obs.trace import RecordingTracer
from repro.scenarios import ScenarioConfig, SimulatedCluster


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser("run", help="run a recorder scenario and report metrics")
    parser.add_argument("--system", choices=("zugchain", "baseline"), default="zugchain")
    parser.add_argument("--runtime", choices=("sim", "tcp"), default="sim",
                        help="sim: deterministic simulator; tcp: real asyncio "
                             "sockets on localhost (zugchain only, wall-clock "
                             "paced, trace timestamps are debug-grade)")
    parser.add_argument("--cycle-ms", type=float, default=64.0, help="bus cycle time")
    parser.add_argument("--payload", type=int, default=1024, help="payload bytes per cycle")
    parser.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--warmup", type=float, default=3.0)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a JSONL trace (summarize with "
                             "'python -m repro.obs summary PATH')")


def _add_export_parser(subparsers) -> None:
    parser = subparsers.add_parser("export", help="run one export round over simulated LTE")
    parser.add_argument("--blocks", type=int, default=1000)
    parser.add_argument("--datacenters", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)


def _add_reliability_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "reliability", help="Braband-style survival analysis for a node count"
    )
    parser.add_argument("--destroy-prob", type=float, default=0.1,
                        help="per-node destruction probability in an incident")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--target", type=float, default=None,
                        help="target data-loss probability; prints required node count")
    parser.add_argument("--correlation", type=float, default=0.0)


def _add_requirements_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "requirements", help="run a scenario and check the JRU requirements"
    )
    parser.add_argument("--cycle-ms", type=float, default=64.0)
    parser.add_argument("--payload", type=int, default=8192)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=42)


def _cmd_run(args, out) -> int:
    if args.runtime == "tcp":
        return _cmd_run_tcp(args, out)
    tracer = RecordingTracer() if args.trace else None
    cluster = SimulatedCluster(ScenarioConfig(
        system=args.system,
        n=args.nodes,
        seed=args.seed,
        cycle_time_s=args.cycle_ms / 1000.0,
        payload_bytes=args.payload,
    ), tracer=tracer)
    result = cluster.run(duration_s=args.duration, warmup_s=args.warmup)
    print(result.summary_row(), file=out)
    print(f"p99 latency   : {result.p99_latency_s * 1000:.2f} ms", file=out)
    print(f"logged        : {result.requests_logged}/{result.requests_expected}", file=out)
    print(f"view changes  : {result.view_changes}", file=out)
    chain = cluster.nodes[cluster.ids[0]].chain
    print(f"chain         : height {chain.height}, base {chain.base_height}, "
          f"head {chain.head.block_hash.hex()[:16]}…", file=out)
    if tracer is not None:
        count = write_trace(tracer.iter_events(), args.trace)
        print(f"trace         : {count} events -> {args.trace}", file=out)
    return 0


def _cmd_run_tcp(args, out) -> int:
    from repro.runtime.tcp_scenario import TcpScenarioConfig, run_tcp_scenario

    if args.system != "zugchain":
        print("repro run: --runtime tcp supports --system zugchain only",
              file=sys.stderr)
        return 2
    cycle_time_s = args.cycle_ms / 1000.0
    cycles = max(1, round(args.duration / cycle_time_s))
    tracer = RecordingTracer() if args.trace else None
    config = TcpScenarioConfig(
        n=args.nodes,
        cycles=cycles,
        cycle_time_s=cycle_time_s,
        payload_bytes=args.payload,
    )
    result = run_tcp_scenario(config, tracer=tracer)
    print(f"runtime       : tcp ({args.nodes} nodes, {cycles} bus cycles "
          f"@ {args.cycle_ms:g} ms)", file=out)
    print(f"logged        : {result.requests_logged}/{result.requests_expected}"
          f"{'' if result.completed else '  (INCOMPLETE)'}", file=out)
    heights = sorted(set(result.chain_heights.values()))
    print(f"chain         : heights {heights}, heads "
          f"{'consistent' if result.heads_consistent else 'DIVERGED'}", file=out)
    if tracer is not None:
        count = write_trace(tracer.iter_events(), args.trace)
        print(f"trace         : {count} events -> {args.trace} "
              f"(relative per-node timestamps, debug-grade)", file=out)
    return 0 if result.completed and result.heads_consistent else 1


def _cmd_export(args, out) -> int:
    scenario = ExportScenario(ExportScenarioConfig(
        n_blocks=args.blocks,
        n_datacenters=args.datacenters,
        seed=args.seed,
    ))
    round_ = scenario.run_export()
    print(f"exported {round_.blocks_exported} blocks from replica {round_.full_from}", file=out)
    print(f"read   : {round_.read_s:.2f} s ({round_.read_s / round_.total_s * 100:.0f} %)", file=out)
    print(f"verify : {round_.verify_s:.3f} s", file=out)
    print(f"delete : {round_.delete_s:.2f} s", file=out)
    print(f"total  : {round_.total_s:.2f} s", file=out)
    return 0


def _cmd_reliability(args, out) -> int:
    if args.target is not None:
        needed = required_nodes_for_target(args.destroy_prob, args.target, args.correlation)
        if needed is None:
            print("target unreachable (common-cause floor or node cap)", file=out)
            return 1
        print(f"nodes required for loss probability <= {args.target:g}: {needed}", file=out)
        return 0
    survive = survival_probability([args.destroy_prob] * args.nodes,
                                   correlation=args.correlation)
    print(f"P(at least one record survives) with {args.nodes} nodes: {survive:.6f}", file=out)
    print(f"P(total data loss): {1 - survive:.2e}", file=out)
    return 0


def _cmd_requirements(args, out) -> int:
    cluster = SimulatedCluster(ScenarioConfig(
        system="zugchain",
        seed=args.seed,
        cycle_time_s=args.cycle_ms / 1000.0,
        payload_bytes=args.payload,
    ))
    result = cluster.run(duration_s=args.duration, warmup_s=3.0)
    report = check_requirements(result, persist_payload_bytes=args.payload)
    for line in report.lines():
        print(line, file=out)
    return 0 if report.all_passed else 1


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZugChain reproduction: blockchain-based juridical recording",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_export_parser(subparsers)
    _add_reliability_parser(subparsers)
    _add_requirements_parser(subparsers)
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "export": _cmd_export,
        "reliability": _cmd_reliability,
        "requirements": _cmd_requirements,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
