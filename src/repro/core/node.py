"""Full ZugChain node assembly.

One node hosts (Fig. 3): the bus receiver, the ZugChain communication
layer, the PBFT replica, the block builder writing the local blockchain,
and (optionally) the replica-side export handler.  The class is runtime-
agnostic — it is driven through ``on_bus_cycle`` and ``handle_message``
and performs all side effects through its :class:`~repro.bft.env.Env`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.bft.config import BftConfig
from repro.bft.messages import Checkpoint, Commit, NewView, PrePrepare, Prepare, ViewChange
from repro.bft.replica import PbftReplica
from repro.bft.env import Env
from repro.bus.frames import BusCycleData
from repro.bus.nsdb import Nsdb
from repro.bus.reception import BusReceiver
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.core.layer import ZugChainConfig, ZugChainLayer
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.statesync import StateRequest, StateReply, StateSync
from repro.crypto.keys import KeyPair, KeyStore
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.monitor import LatencyRecorder
from repro.wire.messages import Request, SignedRequest

_BFT_MESSAGE_TYPES = (PrePrepare, Prepare, Commit, Checkpoint, ViewChange, NewView)


class ZugChainNode:
    """A recorder node running the ZugChain stack."""

    def __init__(
        self,
        env: Env,
        bft_config: BftConfig,
        zug_config: ZugChainConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        nsdb: Nsdb,
        chain_id: str = "zugchain",
        on_block: Callable[[Block], None] | None = None,
        replica_cls: type = PbftReplica,
        block_store=None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.id = env.node_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._nsdb = nsdb
        self.receiver = BusReceiver(nsdb)
        self._extra_receivers: dict[str, BusReceiver] = {}
        self.chain = Blockchain(chain_id=chain_id)
        self.latency = LatencyRecorder(name=f"{self.id}.latency")
        self._recv_times: OrderedDict[bytes, float] = OrderedDict()
        self._on_block_cb = on_block or (lambda block: None)

        self.replica = replica_cls(
            env=env,
            config=bft_config,
            keypair=keypair,
            keystore=keystore,
            on_decide=self._decided,
            on_new_primary=self._new_primary,
            on_stable_checkpoint=self._stable_checkpoint,
            on_preprepare_accepted=self._preprepare_accepted,
            tracer=self.tracer,
        )
        self.layer = ZugChainLayer(
            env=env,
            config=zug_config,
            keypair=keypair,
            keystore=keystore,
            propose=self.replica.propose,
            suspect=self.replica.suspect,
            on_log=self._log,
            initial_primary=bft_config.primary_of_view(0),
            tracer=self.tracer,
        )
        from repro.core.blockbuilder import BlockBuilder  # avoid import cycle

        self.builder = BlockBuilder(
            chain=self.chain,
            block_size=bft_config.checkpoint_interval,
            on_block=self._block_built,
            record_checkpoint=self.replica.record_checkpoint,
            now_us=lambda: int(env.now() * 1e6),
        )
        self.export_handler: Any = None  # attached by repro.export
        self.block_store = block_store   # optional on-disk persistence
        self.statesync = StateSync(
            env=env,
            bft_config=bft_config,
            keypair=keypair,
            keystore=keystore,
            chain=self.chain,
            replica=self.replica,
            on_fast_forward=self._reset_block_assembly,
            tracer=self.tracer,
        )
        self.requests_logged = 0

    # -- bus side -----------------------------------------------------------------

    def add_input_source(self, link_name: str, nsdb: Nsdb | None = None) -> BusReceiver:
        """Attach an additional bus link (§III-C "Multiple Input Sources").

        Each link gets its own receiver (and thus its own relevance-filter
        state and request queue identity: the link name is part of every
        request's content digest, so identical data on different buses is
        logged per source).  Returns the receiver; wire its ``on_cycle``
        into the extra bus via :meth:`on_bus_cycle_from`.
        """
        if link_name in self._extra_receivers or link_name == self.receiver.source_link:
            raise ValueError(f"input source {link_name!r} already attached")
        receiver = BusReceiver(nsdb or self._nsdb, source_link=link_name)
        self._extra_receivers[link_name] = receiver
        return receiver

    def on_bus_cycle(self, cycle: BusCycleData) -> None:
        self.on_bus_cycle_from(self.receiver, cycle)

    def on_bus_cycle_from(self, receiver: BusReceiver, cycle: BusCycleData) -> None:
        now_us = int(self.env.now() * 1e6)
        request = receiver.on_cycle(cycle, now_us)
        if request is None:
            return
        self._note_reception(request)
        self.layer.receive(request)

    def inject_request(self, request: Request) -> None:
        """Feed a pre-parsed request directly (tests, secondary links)."""
        self._note_reception(request)
        self.layer.receive(request)

    def _note_reception(self, request: Request) -> None:
        digest = request.digest
        if digest not in self._recv_times:
            self._recv_times[digest] = self.env.now()
            if self.tracer.enabled:
                self.tracer.emit("bus.rx", self.env.now(), self.id,
                                 digest=digest.hex(), link=request.source_link)
            while len(self._recv_times) > 10_000:
                self._recv_times.popitem(last=False)

    # -- network side ---------------------------------------------------------------

    def handle_message(self, src: str, message: Any) -> None:
        """Dispatch one incoming consensus-network message."""
        if isinstance(message, ZugBroadcast):
            self.layer.on_broadcast(src, message)
        elif isinstance(message, ZugForward):
            self.layer.on_forward(src, message)
        elif isinstance(message, StateRequest):
            self.statesync.handle_request(src, message)
        elif isinstance(message, StateReply):
            self.statesync.handle_reply(src, message)
        elif isinstance(message, self.replica.MESSAGE_TYPES):
            if isinstance(message, Checkpoint):
                # Lag detection: peers checkpointing far beyond our state.
                self.statesync.observe_checkpoint(src, message)
            self.replica.on_message(src, message)
        elif self.export_handler is not None:
            self.export_handler.handle_message(src, message)

    # -- internal upcalls -------------------------------------------------------------

    def _decided(self, signed: SignedRequest, seq: int) -> None:
        self.layer.on_decide(signed, seq)

    def _preprepare_accepted(self, digest: bytes) -> None:
        # §III-C optimization: a preprepare indicates the request will be
        # ordered; cancel its soft timeout early.  The replica invokes this
        # only after the preprepare's signatures checked out — an attacker
        # must not be able to suppress forwarding with a forged preprepare.
        self.layer.on_preprepare_observed(digest)

    def _log(self, signed: SignedRequest, seq: int) -> None:
        received = self._recv_times.pop(signed.digest, None)
        if received is not None:
            self.latency.record(self.env.now(), self.env.now() - received)
        self.requests_logged += 1
        if self.tracer.enabled:
            self.tracer.emit("req.logged", self.env.now(), self.id,
                             digest=signed.digest.hex(), seq=seq)
        self.builder.add(signed, seq)

    def _new_primary(self, primary_id: str) -> None:
        self.layer.on_new_primary(primary_id)

    def _reset_block_assembly(self, adopted_blocks) -> None:
        # Adopted checkpoints sit on block boundaries: requests the builder
        # accumulated before the transfer are already inside synced blocks.
        self.builder._pending.clear()
        # The adopted requests count as logged for duplicate filtering —
        # otherwise this node would log a later re-proposal that every live
        # peer skips, and the next block it cuts would diverge.
        for block in adopted_blocks:
            for signed in block.requests:
                self.layer.on_synced(signed, block.header.last_sn)

    def _stable_checkpoint(self, certificate) -> None:
        # A checkpoint stabilized by peer votes while our execution still
        # has a gap below it: GC just deleted the missing instances, so
        # only a state transfer can resynchronize us.
        if certificate.seq >= self.replica._next_exec:
            self.statesync.sync_from_certificate(certificate)

    def _block_built(self, block: Block) -> None:
        if self.block_store is not None:
            # Persist before acknowledging: data must survive power loss
            # ("we persist the blockchain on disk", §V-B).
            self.block_store.write(block)
        if self.export_handler is not None:
            self.export_handler.on_block_created(block)
        self._on_block_cb(block)

    # -- accounting --------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Dynamic memory footprint of the recorder's data structures."""
        return (
            self.layer.queue_size_bytes()
            + self.replica.log_size_bytes()
            + self.chain.total_size_bytes()
            + self.builder.pending_size_bytes()
        )
