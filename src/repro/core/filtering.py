"""Content-based duplicate filtering over a sliding checkpoint window.

"In practice, a check of the complete blockchain for every request is not
feasible; instead, we check against the recent history.  This is done
efficiently with a hashmap over the requests of a sliding window of past
checkpoints as well as open requests in R" (§III-C).

The index maps request digests to the sequence number that logged them.
Entries slide out once they fall more than ``window_checkpoints``
checkpoint intervals behind the latest stable checkpoint — a duplicate of
a request older than the window is *recorded rather than suspected*
(§III-C, Faulty Primary), so false positives are impossible by design.
"""

from __future__ import annotations

from collections import OrderedDict


class DedupIndex:
    """Hashmap of recently logged request digests with sliding eviction."""

    def __init__(self, checkpoint_interval: int = 10, window_checkpoints: int = 16) -> None:
        if checkpoint_interval < 1 or window_checkpoints < 1:
            raise ValueError("checkpoint interval and window must be >= 1")
        self._window_seqs = checkpoint_interval * window_checkpoints
        self._logged: OrderedDict[bytes, int] = OrderedDict()
        self._max_seq = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._logged)

    @property
    def window_seqs(self) -> int:
        return self._window_seqs

    def record(self, digest: bytes, seq: int) -> None:
        """Record a decided request; evicts entries that left the window."""
        self._logged[digest] = seq
        self._max_seq = max(self._max_seq, seq)
        low = self._max_seq - self._window_seqs
        while self._logged:
            oldest_digest = next(iter(self._logged))
            if self._logged[oldest_digest] > low:
                break
            del self._logged[oldest_digest]
            self.evicted += 1

    def in_log(self, digest: bytes) -> bool:
        return digest in self._logged

    def logged_seq(self, digest: bytes) -> int | None:
        return self._logged.get(digest)

    def size_bytes(self) -> int:
        """Approximate memory footprint (32-byte digest + int per entry)."""
        return len(self._logged) * 48
